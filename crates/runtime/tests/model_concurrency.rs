//! Model-checked concurrency invariants of the runtime's protocol layer.
//!
//! Compiled only under the model backend:
//!
//! ```sh
//! RUSTFLAGS="--cfg llhj_model" cargo test -p llhj-runtime --test model_concurrency
//! ```
//!
//! Each test wraps a protocol scenario in [`llhj_sync::model::explore`],
//! which reruns it under every schedule within the exploration budget
//! (DFS over yield points, preemption-bounded, state-hash pruned).  The
//! scenarios use the *real* runtime types — `WaitSet`, frame channels,
//! `CancelToken`, `MetricsBus`, `HighWaterMarks` — at model scale (a
//! couple of tuples, two or three tasks), because the checker's
//! guarantee is per-schedule exhaustiveness, not per-volume stress.
//! Every loop parks on a `WaitSet` exactly like the real workers do;
//! busy-waiting would (correctly) be reported as a livelock.
//!
//! Six invariant families, per the concurrency and durability chapters
//! in ARCHITECTURE.md:
//!
//! 1. no lost wakeups in the epoch-snapshot `WaitSet` protocol;
//! 2. punctuation high-water marks never pass enqueued results — with
//!    the two historical orderings (the PR 4 vacuum-before-marks
//!    collector, and the forward-before-results node fixed in this PR)
//!    encoded buggy-side, so the checker provably catches both;
//! 3. exactly-once tuple residence across a fence+handoff retire with a
//!    concurrent cancel;
//! 4. torn-read/lost-update freedom on the `MetricsBus` atomics;
//! 5. the checkpoint capture fence: a blob taken after quiescence covers
//!    every consumed frame, and skipping the fence provably loses one;
//! 6. the lock-free SPSC ring transport: in-order, loss-free delivery
//!    with no lost wakeups across the empty-park and full-park legs —
//!    with a re-broken twin (sequence word published before the payload)
//!    that the checker provably catches.
#![cfg(llhj_model)]

use llhj_core::punctuation::{verify_punctuated_stream, HighWaterMarks, OutputItem, Punctuation};
use llhj_core::time::{TimeDelta, Timestamp};
use llhj_runtime::channel::{unbounded, CancelToken, Receiver, TryRecvError, WaitSet};
use llhj_runtime::metrics::{MetricsBus, LATENCY_EWMA_ALPHA};
use llhj_sync::model::{explore, explore_expect_violation, ModelOptions, Report};
use llhj_sync::sync::{Arc, Mutex};
use llhj_sync::thread;
use llhj_sync::time::Duration;

/// Every scenario here must exhaust its schedule tree — a budget-capped
/// search would weaken "the race is unreachable" to "we did not look
/// hard enough".
fn assert_exhaustive(report: &Report) {
    assert!(
        report.complete,
        "exploration hit the execution budget ({} runs) before exhausting \
         the tree; raise the budget or shrink the scenario",
        report.executions
    );
}

fn opts() -> ModelOptions {
    ModelOptions {
        max_preemptions: 2,
        max_executions: 200_000,
        max_steps: 20_000,
        state_pruning: true,
    }
}

/// The runtime's worker discipline for draining a channel: snapshot the
/// epoch, poll, park on the snapshot only if the poll came up empty.
fn recv_parked<T>(rx: &Receiver<T>, ws: &WaitSet) -> Option<T> {
    loop {
        let seen = ws.epoch();
        match rx.try_recv() {
            Ok(v) => return Some(v),
            Err(TryRecvError::Empty) => {
                ws.wait(seen, Duration::from_millis(10));
            }
            Err(TryRecvError::Disconnected) => return None,
        }
    }
}

// ---------------------------------------------------------------------------
// 1. WaitSet: epoch-snapshot-before-poll has no lost wakeups
// ---------------------------------------------------------------------------

/// Under every interleaving the consumer drains both frames without ever
/// needing the safety-net timeout.
#[test]
fn waitset_snapshot_before_poll_never_loses_wakeups() {
    let report = explore(opts(), || {
        let ws = WaitSet::new();
        let (tx, rx) = unbounded::<u32>();
        rx.set_waiter(&ws);
        let producer = thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        let mut got = 0;
        while got < 2 {
            // Snapshot BEFORE polling: a send landing between the poll
            // and the park bumps the epoch past `seen`, so the wait
            // returns immediately.
            let seen = ws.epoch();
            match rx.try_recv() {
                Ok(_) => got += 1,
                Err(TryRecvError::Empty) => {
                    ws.wait(seen, Duration::from_millis(10));
                }
                Err(TryRecvError::Disconnected) => {
                    panic!("producer disconnected with frames missing")
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(
            llhj_sync::model::forced_timeouts(),
            0,
            "a parked worker needed the safety-net timeout: lost wakeup"
        );
    });
    assert_exhaustive(&report);
}

/// The buggy inversion — poll first, snapshot afterwards.  A send landing
/// between the poll and the snapshot is invisible: the consumer parks on
/// an epoch that already includes the notification and nothing but the
/// safety-net timer ever wakes it.  The checker must find the schedule.
#[test]
fn waitset_snapshot_after_poll_loses_a_wakeup() {
    let report = explore_expect_violation(opts(), || {
        let ws = WaitSet::new();
        let (tx, rx) = unbounded::<u32>();
        rx.set_waiter(&ws);
        let producer = thread::spawn(move || {
            tx.send(1).unwrap();
        });
        let mut got = 0;
        while got < 1 {
            match rx.try_recv() {
                Ok(_) => got += 1,
                Err(TryRecvError::Empty) => {
                    // BUG: epoch read after the poll — the producer's
                    // send can land in between, and its notification is
                    // already folded into `seen`.
                    let seen = ws.epoch();
                    ws.wait(seen, Duration::from_millis(10));
                }
                Err(TryRecvError::Disconnected) => unreachable!(),
            }
        }
        producer.join().unwrap();
        assert_eq!(llhj_sync::model::forced_timeouts(), 0, "lost wakeup");
    });
    // The violation must be the lost wakeup itself, not some incidental
    // deadlock or livelock of the encoding.
    let message = &report.violation.as_ref().unwrap().message;
    assert!(
        message.contains("lost wakeup"),
        "wrong violation: {message}"
    );
}

// ---------------------------------------------------------------------------
// 2. Punctuation: high-water marks never pass enqueued results
// ---------------------------------------------------------------------------

/// Model-scale replica of the worker/collector punctuation protocol on a
/// two-node chain (`exec.rs::handle_frame` + the collector loop).  One
/// frame carries two tuples (5 s and 6 s) — the high-water mark a
/// completed frame advances is the frame's *latest* tuple, while the
/// frame's results include the *earlier* one, which is exactly the gap a
/// reordering bug falls into.
///
/// * node 0 (middle) enqueues the frame's results FIRST, then forwards
///   the frame rightward (`enqueue_before_forward`);
/// * node 1 (rightmost) marks the tuples' traversal as complete;
/// * the collector reads the marks BEFORE vacuuming the result queue
///   (`marks_before_vacuum`) and emits the punctuation after the drained
///   results.
///
/// Flipping either boolean re-creates a shipped bug: `marks_before_vacuum
/// = false` is the pre-PR-4 collector ordering, `enqueue_before_forward
/// = false` the forward-before-results node race fixed in this PR.  The
/// output stream is checked with the same `verify_punctuated_stream`
/// oracle the integration tests use.
fn punctuation_scenario(enqueue_before_forward: bool, marks_before_vacuum: bool) {
    const TS_EARLY: u64 = 5_000_000; // 5 s, in micros
    const TS_LATE: u64 = 6_000_000; // 6 s

    let hwm = HighWaterMarks::new();
    // The S side sits far ahead so min(r, s) tracks the R mark.
    hwm.observe_s(Timestamp::from_secs(1_000));
    let ws = WaitSet::new();
    let (res_tx, res_rx) = unbounded::<u64>(); // result timestamps (micros)
    let (fwd_tx, fwd_rx) = unbounded::<(u64, u64)>(); // the frame, travelling right
    res_rx.set_waiter(&ws);

    // Node 0: results for both tuples, then the forwarded frame.
    let node0 = thread::spawn(move || {
        if enqueue_before_forward {
            res_tx.send(TS_EARLY).unwrap();
            res_tx.send(TS_LATE).unwrap();
            fwd_tx.send((TS_EARLY, TS_LATE)).unwrap();
        } else {
            // BUG: the frame races ahead of its own results.
            fwd_tx.send((TS_EARLY, TS_LATE)).unwrap();
            res_tx.send(TS_EARLY).unwrap();
            res_tx.send(TS_LATE).unwrap();
        }
    });

    // Node 1 (rightmost): the frame completed its traversal — advance
    // the R mark to the frame's latest tuple.
    let node1 = {
        let hwm = Arc::clone(&hwm);
        let ws = ws.clone();
        let fwd_ws = WaitSet::new();
        fwd_rx.set_waiter(&fwd_ws);
        thread::spawn(move || {
            let (_early, late) =
                recv_parked(&fwd_rx, &fwd_ws).expect("frame lost before the chain end");
            hwm.observe_r(Timestamp::from_micros(late));
            ws.notify();
        })
    };

    // Collector (this task): read marks, then vacuum, then punctuate
    // (Section 6.1.3) — or the other way round, when modelling the bug.
    let mut out: Vec<OutputItem<u64>> = Vec::new();
    let mut results = 0;
    while results < 2 {
        let seen = ws.epoch();
        let mut drained = Vec::new();
        let p;
        if marks_before_vacuum {
            p = hwm.safe_punctuation();
            while let Ok(ts) = res_rx.try_recv() {
                drained.push(ts);
            }
        } else {
            // BUG (pre-PR-4): vacuum first.  A mark advancing between
            // the vacuum and the read covers results still enqueued.
            while let Ok(ts) = res_rx.try_recv() {
                drained.push(ts);
            }
            p = hwm.safe_punctuation();
        }
        let progressed = !drained.is_empty();
        results += drained.len();
        out.extend(drained.into_iter().map(OutputItem::Result));
        out.push(OutputItem::Punctuation(Punctuation { ts: p }));
        if !progressed {
            ws.wait(seen, Duration::from_millis(10));
        }
    }
    node0.join().unwrap();
    node1.join().unwrap();

    assert_eq!(
        verify_punctuated_stream(&out, |&us| Timestamp::from_micros(us)),
        Ok(()),
        "a punctuation overtook a result: {out:?}"
    );
}

/// Current code: both orderings correct — no schedule violates the
/// punctuation guarantee.
#[test]
fn punctuation_never_passes_results() {
    let report = explore(opts(), || punctuation_scenario(true, true));
    assert_exhaustive(&report);
}

/// Reverting the PR 4 fix (vacuum before reading the marks) must fail
/// the checker deterministically.
#[test]
fn punctuation_pre_pr4_ordering_is_caught() {
    let report = explore_expect_violation(opts(), || punctuation_scenario(true, false));
    let message = &report.violation.as_ref().unwrap().message;
    assert!(
        message.contains("punctuation overtook a result"),
        "wrong violation: {message}"
    );
}

/// Reverting this PR's fix (forward the frame before enqueueing its
/// results) must fail the checker deterministically.
#[test]
fn punctuation_forward_before_results_is_caught() {
    let report = explore_expect_violation(opts(), || punctuation_scenario(false, true));
    let message = &report.violation.as_ref().unwrap().message;
    assert!(
        message.contains("punctuation overtook a result"),
        "wrong violation: {message}"
    );
}

// ---------------------------------------------------------------------------
// 3. Fence + handoff retire vs. concurrent cancel: exactly-once residence
// ---------------------------------------------------------------------------

/// Model-scale replica of the retire leg of the resize protocol: the
/// retiree sheds its segment to the absorber over a handoff channel and
/// may exit only after the absorber's ack; a cancel fires concurrently
/// at every possible point.  Checked invariants, under every schedule:
///
/// * every tuple resides in exactly one store afterwards (nothing lost,
///   nothing duplicated);
/// * the retiree observes the ack before exiting, cancelled or not;
/// * nobody needs the safety-net timeout to make progress.
#[test]
fn handoff_retire_is_exactly_once_under_cancel() {
    let report = explore(opts(), || {
        let cancel = CancelToken::new();
        let (seg_tx, seg_rx) = unbounded::<Vec<u64>>();
        let (ack_tx, ack_rx) = unbounded::<()>();
        let seg_ws = WaitSet::new();
        let ack_ws = WaitSet::new();
        seg_rx.set_waiter(&seg_ws);
        ack_rx.set_waiter(&ack_ws);
        let absorber_store = Arc::new(Mutex::new(vec![40u64, 50]));

        // Absorber: drains the handoff channel even when cancelled (the
        // real worker keeps consuming its mailbox until Retire).
        let absorber = {
            let store = Arc::clone(&absorber_store);
            thread::spawn(move || {
                let segment = recv_parked(&seg_rx, &seg_ws).expect("segment lost in handoff");
                store.lock().unwrap().extend(segment);
                ack_tx.send(()).unwrap();
            })
        };

        // A cancel can land at any point relative to the handoff.
        let canceller = {
            let cancel = cancel.clone();
            thread::spawn(move || cancel.cancel())
        };

        // Retiree (this task): shed the segment, then hold position until
        // the ack — cancellation must not short-circuit the wait, or the
        // segment could still be in flight when the chain is torn down.
        seg_tx.send(vec![10u64, 20, 30]).unwrap();
        let acked = recv_parked(&ack_rx, &ack_ws).is_some();
        assert!(acked, "retiree exited before its ack");

        canceller.join().unwrap();
        absorber.join().unwrap();
        let mut store = absorber_store.lock().unwrap().clone();
        store.sort_unstable();
        assert_eq!(
            store,
            vec![10, 20, 30, 40, 50],
            "tuple residence not exactly-once after handoff under cancel"
        );
        assert_eq!(
            llhj_sync::model::forced_timeouts(),
            0,
            "handoff needed the safety-net timeout"
        );
    });
    assert_exhaustive(&report);
}

/// The buggy retiree that treats cancel as permission to exit early:
/// some schedule tears it down with the segment unacknowledged, which
/// the exit assertion must catch.
#[test]
fn handoff_retire_exiting_on_cancel_is_caught() {
    let report = explore_expect_violation(opts(), || {
        let cancel = CancelToken::new();
        let (seg_tx, seg_rx) = unbounded::<Vec<u64>>();
        let (ack_tx, ack_rx) = unbounded::<()>();
        let seg_ws = WaitSet::new();
        let ack_ws = WaitSet::new();
        seg_rx.set_waiter(&seg_ws);
        ack_rx.set_waiter(&ack_ws);

        let absorber = thread::spawn(move || {
            let seg = recv_parked(&seg_rx, &seg_ws).expect("segment lost");
            assert_eq!(seg, vec![10u64, 20, 30]);
            let _ = ack_tx.send(());
        });
        let canceller = {
            let cancel = cancel.clone();
            thread::spawn(move || cancel.cancel())
        };

        seg_tx.send(vec![10u64, 20, 30]).unwrap();
        let mut acked = false;
        // BUG: bails out on cancel instead of holding for the ack.
        while !cancel.is_cancelled() {
            let seen = ack_ws.epoch();
            match ack_rx.try_recv() {
                Ok(()) => {
                    acked = true;
                    break;
                }
                Err(TryRecvError::Empty) => {
                    ack_ws.wait(seen, Duration::from_millis(10));
                }
                Err(TryRecvError::Disconnected) => break,
            }
        }
        assert!(
            acked,
            "retiree exited on cancel with its segment unacknowledged"
        );
        canceller.join().unwrap();
        absorber.join().unwrap();
    });
    let message = &report.violation.as_ref().unwrap().message;
    assert!(
        message.contains("unacknowledged"),
        "wrong violation: {message}"
    );
}

// ---------------------------------------------------------------------------
// 4. MetricsBus: torn-read / lost-update freedom
// ---------------------------------------------------------------------------

/// Two collectors fold latencies concurrently: the CAS loop must lose no
/// observation, and the final EWMA must equal one of the two serial
/// orders (sequential consistency of the fold, no torn f64).
#[test]
fn metrics_latency_cas_loses_no_update() {
    let report = explore(opts(), || {
        let bus = Arc::new(MetricsBus::new());
        let a = {
            let bus = Arc::clone(&bus);
            thread::spawn(move || bus.observe_latency(TimeDelta::from_millis(10)))
        };
        let b = {
            let bus = Arc::clone(&bus);
            thread::spawn(move || bus.observe_latency(TimeDelta::from_millis(30)))
        };
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(bus.results(), 2, "result counter lost an update");

        let ewma = |first: f64, second: f64| first + LATENCY_EWMA_ALPHA * (second - first);
        let got = bus.latency_ewma().as_micros() as f64;
        let order_ab = ewma(10_000.0, 30_000.0);
        let order_ba = ewma(30_000.0, 10_000.0);
        assert!(
            (got - order_ab).abs() <= 1.0 || (got - order_ba).abs() <= 1.0,
            "EWMA {got} matches neither serial order ({order_ab} / {order_ba}): \
             torn or lost CAS"
        );
    });
    assert_exhaustive(&report);
}

// ---------------------------------------------------------------------------
// 5. Checkpoint capture fence: the blob covers every consumed frame
// ---------------------------------------------------------------------------

/// Model-scale replica of `capture_checkpoint`'s fence leg.  The driver
/// has already *consumed* a frame (handed it to the worker's entry
/// channel and counted it in `events_consumed`); the checkpoint it then
/// takes must include that frame's tuples, because recovery replays only
/// the events *after* the recorded consumed count — a blob missing a
/// consumed frame loses its tuples forever.
///
/// The protocol under test: quiesce (parked wait until the in-flight
/// count drops to zero) → export (the worker sheds its whole window) →
/// clone the blob → silent reinstall.  Checked under every schedule:
///
/// * the blob holds the pre-frame rows *and* the consumed frame;
/// * the reinstall is transparent — the worker's post-checkpoint window
///   equals the blob exactly (recovery sees the same state a live run
///   kept);
/// * nobody needs the safety-net timeout.
///
/// `fence_before_export = false` re-breaks it: the export command and
/// the frame travel on different channels, so some schedule captures
/// the window before the frame lands — exactly the torn cut the fence
/// exists to rule out.
fn checkpoint_fence_scenario(fence_before_export: bool) {
    use llhj_sync::sync::atomic::{AtomicUsize, Ordering};

    let store = Arc::new(Mutex::new(vec![10u64, 20]));
    let in_flight = Arc::new(AtomicUsize::new(0));
    let quiesce_ws = WaitSet::new();

    let worker_ws = WaitSet::new();
    let (frame_tx, frame_rx) = unbounded::<Vec<u64>>();
    let (export_tx, export_rx) = unbounded::<()>();
    let (seg_tx, seg_rx) = unbounded::<Vec<u64>>();
    let (install_tx, install_rx) = unbounded::<Vec<u64>>();
    frame_rx.set_waiter(&worker_ws);
    export_rx.set_waiter(&worker_ws);
    install_rx.set_waiter(&worker_ws);
    let driver_ws = WaitSet::new();
    seg_rx.set_waiter(&driver_ws);

    // Worker: applies entry frames; on Export it sheds its whole window
    // and silently reinstalls whatever comes back (the real worker's
    // `ExportAll` + `Install` command pair).
    let worker = {
        let store = Arc::clone(&store);
        let in_flight = Arc::clone(&in_flight);
        let quiesce_ws = quiesce_ws.clone();
        let worker_ws = worker_ws.clone();
        thread::spawn(move || loop {
            let seen = worker_ws.epoch();
            if let Ok(frame) = frame_rx.try_recv() {
                store.lock().unwrap().extend(frame);
                in_flight.fetch_sub(1, Ordering::SeqCst);
                quiesce_ws.notify();
                continue;
            }
            match export_rx.try_recv() {
                Ok(()) => {
                    let segment = std::mem::take(&mut *store.lock().unwrap());
                    seg_tx.send(segment).unwrap();
                    let back =
                        recv_parked(&install_rx, &worker_ws).expect("reinstall lost after export");
                    *store.lock().unwrap() = back;
                    return;
                }
                Err(TryRecvError::Empty) => {
                    worker_ws.wait(seen, Duration::from_millis(10));
                }
                Err(TryRecvError::Disconnected) => return,
            }
        })
    };

    // Driver (this task): consume one frame, then checkpoint.
    in_flight.fetch_add(1, Ordering::SeqCst);
    frame_tx.send(vec![30u64]).unwrap();

    if fence_before_export {
        // The fence: park until the consumed frame has been applied.
        loop {
            let seen = quiesce_ws.epoch();
            if in_flight.load(Ordering::SeqCst) == 0 {
                break;
            }
            quiesce_ws.wait(seen, Duration::from_millis(10));
        }
    }
    export_tx.send(()).unwrap();
    let blob = recv_parked(&seg_rx, &driver_ws).expect("export lost");
    install_tx.send(blob.clone()).unwrap();
    worker.join().unwrap();

    let mut captured = blob.clone();
    captured.sort_unstable();
    assert_eq!(
        captured,
        vec![10, 20, 30],
        "checkpoint missed a consumed frame: torn cut"
    );
    let mut resident = store.lock().unwrap().clone();
    resident.sort_unstable();
    assert_eq!(
        resident, captured,
        "silent reinstall diverged from the captured blob"
    );
    assert_eq!(
        llhj_sync::model::forced_timeouts(),
        0,
        "the fence needed the safety-net timeout"
    );
}

/// Current code: fence before export — every schedule captures a
/// consistent cut and reinstalls it transparently.
#[test]
fn checkpoint_fence_captures_a_consistent_cut() {
    let report = explore(opts(), || checkpoint_fence_scenario(true));
    assert_exhaustive(&report);
}

/// Dropping the fence (export racing the consumed frame) must fail the
/// checker deterministically: some schedule exports before the frame
/// lands and the blob misses its tuples.
#[test]
fn checkpoint_without_the_fence_tears_the_cut() {
    let report = explore_expect_violation(opts(), || checkpoint_fence_scenario(false));
    let message = &report.violation.as_ref().unwrap().message;
    assert!(message.contains("torn cut"), "wrong violation: {message}");
}

// ---------------------------------------------------------------------------
// 6. Ring transport: in-order delivery, park handoff, re-broken twin
// ---------------------------------------------------------------------------

/// The unbounded ring flavour at spillway-forcing capacity: a ring of 2
/// slots carrying 4 frames must overflow into the spillway, and the
/// consumer must still see strict FIFO order across the ring/spillway
/// boundary, under every schedule, with no lost wakeups.  This is the
/// inner-chain-edge configuration (`Transport::Ring` between workers).
#[test]
fn ring_spsc_delivers_in_order_without_lost_wakeups() {
    let report = explore(opts(), || {
        let ws = WaitSet::new();
        let (tx, rx) = llhj_runtime::channel::spsc_unbounded::<u32>(2, Some(&ws));
        let producer = thread::spawn(move || {
            for i in 0..4u32 {
                tx.send(i).unwrap();
            }
        });
        for expect in 0..4u32 {
            let got = recv_parked(&rx, &ws).expect("frame lost in the ring");
            assert_eq!(got, expect, "ring reordered frames");
        }
        producer.join().unwrap();
        assert_eq!(
            llhj_sync::model::forced_timeouts(),
            0,
            "a parked task needed the safety-net timeout: lost wakeup"
        );
    });
    assert_exhaustive(&report);
}

/// The bounded ring flavour (the driver entry edges): a producer filling
/// a 2-slot ring with 3 frames must park on the ring's `space` event-
/// count and be woken by the consumer's pop — under every schedule the
/// handoff completes without the safety-net timeout, i.e. the
/// snapshot-before-repoll discipline of the full-park leg loses no
/// wakeups either.
#[test]
fn ring_bounded_full_park_handoff_never_strands_the_producer() {
    let report = explore(opts(), || {
        let ws = WaitSet::new();
        let (tx, rx) = llhj_runtime::channel::spsc_bounded::<u32>(2, Some(&ws));
        let producer = thread::spawn(move || {
            for i in 0..3u32 {
                // The third send finds the ring full and parks until the
                // consumer's pop bumps the space eventcount.
                tx.send(i).unwrap();
            }
        });
        for expect in 0..3u32 {
            let got = recv_parked(&rx, &ws).expect("frame lost in the ring");
            assert_eq!(got, expect, "bounded ring reordered frames");
        }
        producer.join().unwrap();
        assert_eq!(
            llhj_sync::model::forced_timeouts(),
            0,
            "the full-park handoff needed the safety-net timeout: lost wakeup"
        );
    });
    assert_exhaustive(&report);
}

/// The re-broken twin: a ring whose producer publishes the slot's
/// sequence word *before* writing the payload.  The checker must find
/// the schedule where the consumer runs between those two steps and
/// observes a published-but-empty slot — the torn publication the real
/// ring's Release-store-after-write discipline rules out.
#[test]
fn broken_ring_torn_publication_is_caught() {
    use llhj_runtime::ring::broken::BrokenRing;
    let report = explore_expect_violation(opts(), || {
        let ws = WaitSet::new();
        let ring = BrokenRing::<u32>::new(2, &ws);
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.push(7).expect("ring full in a 1-frame scenario");
            })
        };
        loop {
            let seen = ws.epoch();
            match ring.pop() {
                Ok(Some(v)) => {
                    assert_eq!(v, 7);
                    break;
                }
                Ok(None) => {
                    ws.wait(seen, Duration::from_millis(10));
                }
                Err(()) => panic!("torn publication: slot published before its payload"),
            }
        }
        producer.join().unwrap();
    });
    let message = &report.violation.as_ref().unwrap().message;
    assert!(
        message.contains("torn publication"),
        "wrong violation: {message}"
    );
}

/// The published chain width: a sampler racing the control plane's
/// store sees either the old or the new width, never garbage, and the
/// final value is the last store.
#[test]
fn metrics_width_is_never_torn() {
    let report = explore(opts(), || {
        let bus = Arc::new(MetricsBus::new());
        bus.set_nodes(2);
        let control = {
            let bus = Arc::clone(&bus);
            thread::spawn(move || bus.set_nodes(3))
        };
        let sampler = {
            let bus = Arc::clone(&bus);
            thread::spawn(move || {
                let w = bus.nodes();
                assert!(w == 2 || w == 3, "torn width read: {w}");
            })
        };
        control.join().unwrap();
        sampler.join().unwrap();
        assert_eq!(bus.nodes(), 3);
    });
    assert_exhaustive(&report);
}
