/root/repo/target/release/deps/batching-b96139576f109f8a.d: crates/bench/benches/batching.rs

/root/repo/target/release/deps/batching-b96139576f109f8a: crates/bench/benches/batching.rs

crates/bench/benches/batching.rs:
