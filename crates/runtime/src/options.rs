//! Runtime configuration options.

use llhj_core::time::TimeDelta;
use std::time::Duration;

/// How the driver paces the replay of a schedule against the wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pacing {
    /// Inject events as fast as the pipeline accepts them.  This is a
    /// stress/throughput mode: because stream time then advances much
    /// faster than processing time, expiry messages can overtake tuples
    /// that are still travelling, so the produced result set may differ
    /// slightly from the window semantics of a real-time run.  Use
    /// [`Pacing::RealTime`] whenever exact window semantics matter.
    Unpaced,
    /// Replay the schedule in (scaled) real time: one second of stream time
    /// takes `1 / speedup` seconds of wall-clock time.  Latencies are
    /// measured against the scaled stream clock.
    RealTime {
        /// Stream-seconds per wall-clock second.
        speedup: f64,
    },
}

/// Which transport carries frames over the chain's SPSC data edges
/// (driver→node₀, nodeᵢ→nodeᵢ₊₁, node→collector).
///
/// The genuinely multi-producer edges — the elastic result channel and
/// the worker command mailboxes — always use the mutex transport
/// regardless of this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Lock-free SPSC ring buffers ([`crate::ring`]): the default, and
    /// the fast path on real multicore.
    #[default]
    Ring,
    /// The `Mutex<VecDeque>` + condvar channel: the reference transport,
    /// kept selectable so conformance tests can assert the two produce
    /// byte-identical streams.
    Mutex,
}

/// Options for running a threaded pipeline.
///
/// ## Batching knobs
///
/// The runtime moves [`llhj_core::message::MessageBatch`] frames between
/// workers, so message granularity is a configuration property rather than
/// a structural one:
///
/// * [`batch_size`](Self::batch_size) — how many tuple arrivals the driver
///   groups into one entry frame.  `1` reproduces the per-tuple transport
///   of the paper's low-latency configuration exactly (every message is its
///   own frame); larger values amortise channel and wake-up overhead over
///   the whole frame at the price of up to `batch_size / rate` of added
///   latency, which is the trade-off Figure 20 of the paper varies.
/// * [`flush_interval`](Self::flush_interval) — optional stream-time bound
///   on how long a partial entry batch may wait for more tuples.  `None`
///   (the default) keeps the seed semantics: partial batches flush only
///   when the stream ends.  `Some(d)` caps the batching delay at `d`, so a
///   trickling stream still achieves low latency under a large
///   `batch_size`.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Pacing mode.
    pub pacing: Pacing,
    /// Driver batch size in tuples (64 in the paper's setup).
    pub batch_size: usize,
    /// Maximum stream time a partial entry batch may wait before it is
    /// flushed regardless of its size.  `None` disables the timer.
    pub flush_interval: Option<TimeDelta>,
    /// Capacity of the bounded FIFO channels between neighbouring workers,
    /// in frames.
    pub channel_capacity: usize,
    /// Whether the collector emits punctuations into the output stream.
    pub punctuate: bool,
    /// How often the collector vacuums the per-worker result queues.
    pub collect_interval: Duration,
    /// Bucket size for the latency time series.
    pub latency_bucket: u64,
    /// Optional cooperative cancellation handle.  When set, the driver's
    /// real-time pacing waits park on the token instead of sleeping, so an
    /// external [`CancelToken::cancel`](crate::channel::CancelToken::cancel)
    /// interrupts even a long gap between schedule events: the run stops
    /// injecting, drains the pipeline and returns the partial outcome with
    /// [`RunOutcome::cancelled`](crate::RunOutcome) set.
    pub cancel: Option<crate::channel::CancelToken>,
    /// Which transport carries the chain's SPSC data edges.
    pub transport: Transport,
    /// Lock-free fast-path depth (in frames, rounded up to a power of
    /// two) of the *unbounded* ring links between workers; bursts beyond
    /// it spill into the ring's mutex spillway.  Entry rings use
    /// [`channel_capacity`](Self::channel_capacity) instead, preserving
    /// the driver's backpressure point.  Irrelevant under
    /// [`Transport::Mutex`].
    pub ring_capacity: usize,
    /// Pin worker, driver and collector threads to distinct cores
    /// (`sched_setaffinity`).  Off by default; silently a no-op when the
    /// host has fewer cores than the pipeline has threads, on non-Linux
    /// targets, and under the model-checker backend.
    pub pin_cores: bool,
    /// First core slot the pipeline's threads are assigned from (the
    /// shard mesh staggers its chains with this so two shards' workers do
    /// not stack on the same cores).  Ignored unless
    /// [`pin_cores`](Self::pin_cores) is set.
    pub pin_core_offset: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            pacing: Pacing::Unpaced,
            batch_size: 64,
            flush_interval: None,
            channel_capacity: 1024,
            punctuate: false,
            collect_interval: Duration::from_millis(1),
            latency_bucket: 10_000,
            cancel: None,
            transport: Transport::Ring,
            ring_capacity: 256,
            pin_cores: false,
            pin_core_offset: 0,
        }
    }
}

impl PipelineOptions {
    /// Checks the options for values the runtime cannot execute sensibly.
    ///
    /// Called by [`crate::run_pipeline`] before any thread is spawned.  A
    /// non-finite `speedup` is rejected here because it would otherwise
    /// disappear into a float→integer cast inside the stream clock (NaN
    /// and −∞ silently freeze the clock at 0, +∞ pins it at the maximum) —
    /// a mis-configuration that should fail loudly, not warp time.
    /// Negative and zero speedups remain accepted: they are documented
    /// degenerate cases (the clock clamps them to "frozen", and
    /// [`Self::stream_to_wall`] replays without waiting).
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if self.channel_capacity == 0 {
            return Err("channel_capacity must be positive".into());
        }
        if self.ring_capacity == 0 {
            return Err("ring_capacity must be positive".into());
        }
        if let Pacing::RealTime { speedup } = self.pacing {
            if !speedup.is_finite() {
                return Err(format!("RealTime speedup must be finite, got {speedup}"));
            }
        }
        Ok(())
    }

    /// Converts a stream-time delta into the wall-clock duration it takes
    /// under the configured pacing.
    pub fn stream_to_wall(&self, delta: TimeDelta) -> Duration {
        match self.pacing {
            Pacing::Unpaced => Duration::ZERO,
            Pacing::RealTime { speedup } => {
                if speedup <= 0.0 {
                    Duration::ZERO
                } else {
                    Duration::from_secs_f64(delta.as_secs_f64() / speedup)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpaced_never_waits() {
        let opts = PipelineOptions::default();
        assert_eq!(
            opts.stream_to_wall(TimeDelta::from_secs(100)),
            Duration::ZERO
        );
    }

    #[test]
    fn real_time_scales_by_speedup() {
        let opts = PipelineOptions {
            pacing: Pacing::RealTime { speedup: 10.0 },
            ..Default::default()
        };
        assert_eq!(
            opts.stream_to_wall(TimeDelta::from_secs(5)),
            Duration::from_millis(500)
        );
        let degenerate = PipelineOptions {
            pacing: Pacing::RealTime { speedup: 0.0 },
            ..Default::default()
        };
        assert_eq!(
            degenerate.stream_to_wall(TimeDelta::from_secs(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn validation_rejects_non_finite_speedup_and_zero_sizes() {
        assert!(PipelineOptions::default().validate().is_ok());
        for speedup in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let opts = PipelineOptions {
                pacing: Pacing::RealTime { speedup },
                ..Default::default()
            };
            assert!(
                opts.validate().is_err(),
                "speedup {speedup} must be rejected"
            );
        }
        // Degenerate but well-defined: negative/zero speedups freeze the
        // clock instead of failing.
        for speedup in [0.0, -1.0] {
            let opts = PipelineOptions {
                pacing: Pacing::RealTime { speedup },
                ..Default::default()
            };
            assert!(opts.validate().is_ok());
        }
        let opts = PipelineOptions {
            batch_size: 0,
            ..Default::default()
        };
        assert!(opts.validate().is_err());
        let opts = PipelineOptions {
            channel_capacity: 0,
            ..Default::default()
        };
        assert!(opts.validate().is_err());
        let opts = PipelineOptions {
            ring_capacity: 0,
            ..Default::default()
        };
        assert!(opts.validate().is_err());
    }
}
