//! # llhj-sync — the concurrency facade of the handshake-join workspace
//!
//! Every concurrency-bearing crate in this workspace (`llhj-runtime`'s
//! channels, wait sets and worker threads; `llhj-core`'s high-water-mark
//! atomics) imports its primitives from this crate instead of from
//! `std::sync` / `std::thread` / `std::time::Instant` — a rule enforced
//! by the house lint (`crates/lint`).  The facade has two backends:
//!
//! * **std** (default): zero-cost re-exports of the standard library
//!   types.  Compiled code is byte-for-byte what a direct `std::sync`
//!   import would produce.
//! * **model** (`--cfg llhj_model`, usually via
//!   `RUSTFLAGS="--cfg llhj_model"`): every primitive becomes a puppet of
//!   a deterministic scheduler (the `model` module) that runs "threads" as
//!   cooperative tasks and *explores interleavings* — depth-first over
//!   the scheduling choice points, with a preemption bound and
//!   visited-state-hash pruning, in the spirit of loom/shuttle but
//!   self-contained (this environment has no registry access).  A test
//!   wraps its scenario in `model::explore` and the checker reruns it
//!   under every schedule the budget allows, turning "this race is
//!   unlikely" into "this race is unreachable (within the bound)".
//!
//! ## What the model backend checks — and what it does not
//!
//! The scheduler serializes execution: exactly one task runs between two
//! yield points, and every facade operation (atomic access, mutex
//! acquisition, condvar park/notify, spawn/join) is a yield point.  The
//! exploration therefore covers every *interleaving* of those operations
//! (up to the preemption bound), which is what the runtime's protocol
//! bugs — lost wakeups, punctuation overtaking results, double-resting
//! segments — live in.  It does **not** model weak-memory reordering:
//! execution is sequentially consistent regardless of the `Ordering`
//! arguments, which are accepted and ignored.  Memory-ordering
//! correctness is covered separately: the orderings are audited and
//! documented at each use site, the house lint rejects `Relaxed` outside
//! an explicit whitelist, and CI runs ThreadSanitizer over the runtime
//! tests.
//!
//! ## Time under the model
//!
//! The model clock is *logical* and frozen: `time::Instant::now` does
//! not advance on its own, so code that computes deadlines never reaches
//! them spontaneously.  Timeouts fire only through the scheduler's
//! deadlock-breaker: when every task is blocked, the clock jumps to the
//! earliest pending deadline and that wait returns "timed out" — and the
//! event is counted (`model::forced_timeouts`).  A protocol whose
//! liveness silently leans on a safety-net timeout (a lost wakeup!) is
//! thus *visible*: the run completes, but the forced-timeout count is
//! non-zero, and the model test asserts it is zero.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[cfg(llhj_model)]
pub mod model;

#[cfg(llhj_model)]
mod model_backend;

/// Synchronization primitives: `Arc`, `Mutex`, `Condvar`, `RwLock` and
/// the `atomic` module.  Std re-exports by default; scheduler-controlled
/// replicas under `--cfg llhj_model`.
pub mod sync {
    pub use std::sync::Arc;

    /// `std::sync::mpsc`, re-exported for test plumbing only.  Not
    /// modeled: code checked under the model backend must use
    /// `llhj-runtime`'s frame channels (which are built on the facade's
    /// `Mutex`/`Condvar`) instead.
    pub use std::sync::mpsc;

    #[cfg(not(llhj_model))]
    pub use std::sync::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };

    #[cfg(llhj_model)]
    pub use crate::model_backend::sync::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };

    /// Atomic integer and boolean types plus [`Ordering`](atomic::Ordering).
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        #[cfg(not(llhj_model))]
        pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize};

        #[cfg(llhj_model)]
        pub use crate::model_backend::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize};
    }
}

/// Thread spawning and sleeping.  Under the model backend, `spawn`
/// registers a cooperative task with the active exploration (and panics
/// outside one), and `sleep` parks on the logical clock.
pub mod thread {
    #[cfg(not(llhj_model))]
    pub use std::thread::{available_parallelism, sleep, spawn, yield_now, JoinHandle};

    #[cfg(llhj_model)]
    pub use crate::model_backend::thread::{
        available_parallelism, sleep, spawn, yield_now, JoinHandle,
    };
}

/// Time: `Duration` is always `std`'s; `Instant` is logical (frozen)
/// under the model backend.
pub mod time {
    pub use std::time::Duration;

    #[cfg(not(llhj_model))]
    pub use std::time::Instant;

    #[cfg(llhj_model)]
    pub use crate::model_backend::time::Instant;
}
