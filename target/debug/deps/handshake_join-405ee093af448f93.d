/root/repo/target/debug/deps/handshake_join-405ee093af448f93.d: src/lib.rs

/root/repo/target/debug/deps/libhandshake_join-405ee093af448f93.rmeta: src/lib.rs

src/lib.rs:
