/root/repo/target/debug/deps/fig05-7175a8a4423ad400.d: crates/bench/src/bin/fig05.rs Cargo.toml

/root/repo/target/debug/deps/libfig05-7175a8a4423ad400.rmeta: crates/bench/src/bin/fig05.rs Cargo.toml

crates/bench/src/bin/fig05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
