/root/repo/target/release/deps/bench_batching-16050e0733f7a2e0.d: crates/bench/src/bin/bench_batching.rs

/root/repo/target/release/deps/bench_batching-16050e0733f7a2e0: crates/bench/src/bin/bench_batching.rs

crates/bench/src/bin/bench_batching.rs:
