/root/repo/target/release/deps/experiments_smoke-20c946d3060c17b3.d: tests/experiments_smoke.rs

/root/repo/target/release/deps/experiments_smoke-20c946d3060c17b3: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
