//! Messages exchanged between neighbouring pipeline nodes.
//!
//! Both join algorithms restrict communication to point-to-point FIFO
//! channels between neighbouring cores.  Messages travelling *left to right*
//! carry R arrivals plus control traffic about S tuples; messages travelling
//! *right to left* carry S arrivals plus control traffic about R tuples
//! (Figures 13 and 14 of the paper).

use crate::tuple::{NodeId, PipelineTuple, SeqNo, StreamTuple};

/// A message travelling left-to-right (towards higher node indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeftToRight<R> {
    /// Arrival (new or forwarded) of an R tuple.
    ArrivalR(PipelineTuple<R>),
    /// Acknowledgement that a forwarded S tuple has been received by the
    /// left neighbour; removes it from the sender's `IWS` buffer.
    AckS(SeqNo),
    /// Expiry of an S tuple: the window driver decided that the S tuple with
    /// this sequence number has left its sliding window.  Expiry messages
    /// for S enter at the *left* end (the opposite end of S arrivals).
    ExpiryS(SeqNo),
}

/// A message travelling right-to-left (towards lower node indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RightToLeft<S> {
    /// Arrival (new or forwarded) of an S tuple.
    ArrivalS(PipelineTuple<S>),
    /// Expedition-end marker for an R tuple: generated at the rightmost node
    /// when the R tuple finished rushing through the pipeline; clears the
    /// expedition flag in the tuple's home-node window (Section 4.2.3).
    ExpeditionEndR(SeqNo),
    /// Expiry of an R tuple; enters at the *right* end.
    ExpiryR(SeqNo),
}

impl<R> LeftToRight<R> {
    /// True if this is a tuple arrival (as opposed to control traffic).
    pub fn is_arrival(&self) -> bool {
        matches!(self, LeftToRight::ArrivalR(_))
    }
}

impl<S> RightToLeft<S> {
    /// True if this is a tuple arrival (as opposed to control traffic).
    pub fn is_arrival(&self) -> bool {
        matches!(self, RightToLeft::ArrivalS(_))
    }
}

/// Which neighbour a message, segment or transfer involves, from the
/// owning node's point of view.
///
/// Elastic state handoffs are direction-sensitive: the original handshake
/// join matches a migrated segment against the receiver's opposite window
/// depending on which way the segment travelled (see
/// [`crate::node::PipelineNode::import_segment`]), and the redistribution
/// planner ([`crate::rebalance`]) selects which window slice a node sheds
/// by the direction of the transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Towards lower node indices.
    Left,
    /// Towards higher node indices.
    Right,
}

impl Direction {
    /// The opposite direction.
    pub fn opposite(&self) -> Direction {
        match self {
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
        }
    }
}

/// The stored tuples a node hands to its neighbour during an elastic
/// reconfiguration.
///
/// Elasticity moves node-local window state between neighbours while the
/// pipeline is fenced (no data frame anywhere in flight).  At that point a
/// low-latency handshake join node holds only *settled* state: window
/// tuples whose expeditions have finished and whose acknowledgements have
/// all been delivered, so a segment is just the two windows — no
/// expedition flags, no `IWS` entries.  Correctness of the move rests on
/// the algorithm's own matching rules: a stored tuple is matched by every
/// traversing arrival of the opposite stream and found by its traversing
/// expiry message *wherever* it rests, as long as it rests exactly once.
/// The handoff protocol (segment, then ack) preserves that exactly-once
/// residence.
///
/// The original handshake join migrates under the additional
/// stream-monotone rules of [`crate::rebalance`]: its imports *match* the
/// still-unmet direction of the segment, reproducing the meets the hop
/// carries past each other.
///
/// Segments are produced and consumed through the
/// [`crate::node::PipelineNode::export_segment`] /
/// [`crate::node::PipelineNode::import_segment`] contract; node types
/// without migration support refuse both with a typed
/// [`crate::node::ElasticError`] instead of panicking.
///
/// Segments deliberately stay in sorted **row** form even though the
/// windows themselves are columnar: the wire format is
/// layout-independent, and the importer rebuilds everything derived —
/// the attribute column, the valid/expedition bitsets and the hash
/// index — as it merges (see
/// [`crate::store::ColumnarWindow::merge_sorted`]), so elastic resize
/// and rebalance were untouched by the columnar layout change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSegment<R, S> {
    /// Stored R tuples, in increasing sequence order.
    pub wr: Vec<StreamTuple<R>>,
    /// Stored S tuples, in increasing sequence order.
    pub ws: Vec<StreamTuple<S>>,
}

impl<R, S> WindowSegment<R, S> {
    /// An empty segment.
    pub fn empty() -> Self {
        WindowSegment {
            wr: Vec::new(),
            ws: Vec::new(),
        }
    }

    /// Total number of tuples carried.
    pub fn len(&self) -> usize {
        self.wr.len() + self.ws.len()
    }

    /// True if the segment carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.wr.is_empty() && self.ws.is_empty()
    }
}

impl<R, S> Default for WindowSegment<R, S> {
    fn default() -> Self {
        Self::empty()
    }
}

/// State-handoff traffic exchanged between neighbouring nodes during an
/// elastic reconfiguration.
///
/// A retiring node sends its (possibly merged) [`WindowSegment`] towards
/// the surviving side of the chain and may only exit once the receiver has
/// installed the segment and answered with an ack — otherwise a crash of
/// the scheduler between the two steps could drop the segment and with it
/// every pending match against those tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Handoff<R, S> {
    /// "Install these tuples; they now rest with you."
    Segment {
        /// The node that sent the segment (for the matching ack).
        from: NodeId,
        /// The migrated window state.
        segment: WindowSegment<R, S>,
    },
    /// "Segment installed; it is safe to retire."
    Ack {
        /// The node whose segment was installed.
        to: NodeId,
    },
}

/// A frame of same-direction messages travelling between two neighbouring
/// nodes (or between the driver and a pipeline end).
///
/// The paper's central trade-off is message granularity: forwarding every
/// tuple eagerly minimises latency but pays one channel operation (and one
/// core-to-core hop) per message, while coarse batches amortise that cost
/// at the price of delay.  `MessageBatch` makes the granularity a run-time
/// property instead of a structural one: the execution substrates move
/// *frames* — runs of messages that preserve the per-direction FIFO order —
/// and a frame of length 1 reproduces the fine-grained behaviour exactly.
///
/// A frame never mixes directions; the enum tags which way it travels, so a
/// single inbox can carry both kinds without losing type information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MessageBatch<R, S> {
    /// A run of left-to-right messages (R arrivals, S acks, S expiries).
    Left(Vec<LeftToRight<R>>),
    /// A run of right-to-left messages (S arrivals, R expedition ends, R
    /// expiries).
    Right(Vec<RightToLeft<S>>),
    /// State-handoff traffic of an elastic reconfiguration.  Handoff frames
    /// only travel while the pipeline is fenced, so they never interleave
    /// with data frames; they are excluded from the in-flight frame
    /// accounting that detects quiescence.
    Handoff(Handoff<R, S>),
}

impl<R, S> MessageBatch<R, S> {
    /// A frame holding a single left-to-right message.
    pub fn single_left(msg: LeftToRight<R>) -> Self {
        MessageBatch::Left(vec![msg])
    }

    /// A frame holding a single right-to-left message.
    pub fn single_right(msg: RightToLeft<S>) -> Self {
        MessageBatch::Right(vec![msg])
    }

    /// Number of messages in the frame.  A handoff frame counts as one
    /// message regardless of how many tuples it migrates.
    pub fn len(&self) -> usize {
        match self {
            MessageBatch::Left(msgs) => msgs.len(),
            MessageBatch::Right(msgs) => msgs.len(),
            MessageBatch::Handoff(_) => 1,
        }
    }

    /// True if the frame carries no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tuple arrivals (as opposed to control traffic) carried.
    pub fn arrivals(&self) -> usize {
        match self {
            MessageBatch::Left(msgs) => msgs.iter().filter(|m| m.is_arrival()).count(),
            MessageBatch::Right(msgs) => msgs.iter().filter(|m| m.is_arrival()).count(),
            MessageBatch::Handoff(_) => 0,
        }
    }

    /// True for frames travelling left-to-right.
    pub fn is_left_to_right(&self) -> bool {
        matches!(self, MessageBatch::Left(_))
    }
}

impl<R, S> From<Vec<LeftToRight<R>>> for MessageBatch<R, S> {
    fn from(msgs: Vec<LeftToRight<R>>) -> Self {
        MessageBatch::Left(msgs)
    }
}

impl<R, S> From<Vec<RightToLeft<S>>> for MessageBatch<R, S> {
    fn from(msgs: Vec<RightToLeft<S>>) -> Self {
        MessageBatch::Right(msgs)
    }
}

/// Everything a node emits while handling one incoming message.
///
/// The node state machines are engine agnostic: they never touch channels or
/// clocks themselves.  Instead they append to a `NodeOutput`, and the
/// execution substrate (threaded runtime or discrete-event simulator)
/// decides how to deliver the messages and where to put the results.
#[derive(Debug)]
pub struct NodeOutput<R, S, Res> {
    /// Messages to forward to the left neighbour (or to drop at node 0).
    pub to_left: Vec<RightToLeft<S>>,
    /// Messages to forward to the right neighbour (or to drop at node n-1).
    pub to_right: Vec<LeftToRight<R>>,
    /// Join results produced while handling the message.
    pub results: Vec<Res>,
    /// Number of predicate evaluations (or index probes) performed; used by
    /// the simulator's cost model and by the statistics collectors.
    pub comparisons: u64,
}

impl<R, S, Res> Default for NodeOutput<R, S, Res> {
    fn default() -> Self {
        NodeOutput {
            to_left: Vec::new(),
            to_right: Vec::new(),
            results: Vec::new(),
            comparisons: 0,
        }
    }
}

impl<R, S, Res> NodeOutput<R, S, Res> {
    /// A fresh, empty output buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all buffers, keeping allocations (workhorse-buffer pattern).
    pub fn clear(&mut self) {
        self.to_left.clear();
        self.to_right.clear();
        self.results.clear();
        self.comparisons = 0;
    }

    /// Total number of emitted messages in both directions.
    pub fn message_count(&self) -> usize {
        self.to_left.len() + self.to_right.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.to_left.is_empty() && self.to_right.is_empty() && self.results.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use crate::tuple::StreamTuple;

    #[test]
    fn arrival_classification() {
        let t = PipelineTuple::fresh(StreamTuple::new(SeqNo(1), Timestamp::ZERO, 5u32), 0);
        assert!(LeftToRight::ArrivalR(t.clone()).is_arrival());
        assert!(!LeftToRight::<u32>::AckS(SeqNo(1)).is_arrival());
        assert!(!LeftToRight::<u32>::ExpiryS(SeqNo(1)).is_arrival());
        assert!(RightToLeft::ArrivalS(t).is_arrival());
        assert!(!RightToLeft::<u32>::ExpeditionEndR(SeqNo(2)).is_arrival());
        assert!(!RightToLeft::<u32>::ExpiryR(SeqNo(2)).is_arrival());
    }

    #[test]
    fn message_batch_reports_direction_and_contents() {
        let t = PipelineTuple::fresh(StreamTuple::new(SeqNo(3), Timestamp::ZERO, 5u32), 0);
        let left: MessageBatch<u32, u32> = MessageBatch::Left(vec![
            LeftToRight::ArrivalR(t.clone()),
            LeftToRight::AckS(SeqNo(1)),
            LeftToRight::ExpiryS(SeqNo(2)),
        ]);
        assert_eq!(left.len(), 3);
        assert_eq!(left.arrivals(), 1);
        assert!(left.is_left_to_right());
        assert!(!left.is_empty());

        let right: MessageBatch<u32, u32> = MessageBatch::single_right(RightToLeft::ArrivalS(t));
        assert_eq!(right.len(), 1);
        assert_eq!(right.arrivals(), 1);
        assert!(!right.is_left_to_right());

        let empty: MessageBatch<u32, u32> = MessageBatch::Left(Vec::new());
        assert!(empty.is_empty());

        let from_vec: MessageBatch<u32, u32> = vec![LeftToRight::<u32>::AckS(SeqNo(9))].into();
        assert!(from_vec.is_left_to_right());
        assert_eq!(from_vec.arrivals(), 0);
    }

    #[test]
    fn handoff_frames_carry_segments_without_counting_as_arrivals() {
        let seg: WindowSegment<u32, u32> = WindowSegment {
            wr: vec![StreamTuple::new(SeqNo(1), Timestamp::ZERO, 5u32)],
            ws: Vec::new(),
        };
        assert_eq!(seg.len(), 1);
        assert!(!seg.is_empty());
        assert!(WindowSegment::<u32, u32>::empty().is_empty());

        let frame: MessageBatch<u32, u32> = MessageBatch::Handoff(Handoff::Segment {
            from: 3,
            segment: seg,
        });
        assert_eq!(frame.len(), 1);
        assert_eq!(frame.arrivals(), 0);
        assert!(!frame.is_left_to_right());
        assert!(!frame.is_empty());

        let ack: MessageBatch<u32, u32> = MessageBatch::Handoff(Handoff::Ack { to: 3 });
        assert_eq!(ack.arrivals(), 0);
    }

    #[test]
    fn node_output_clear_keeps_capacity() {
        let mut out: NodeOutput<u32, u32, (u32, u32)> = NodeOutput::new();
        out.to_left.push(RightToLeft::ExpiryR(SeqNo(0)));
        out.to_right.push(LeftToRight::AckS(SeqNo(0)));
        out.results.push((1, 2));
        out.comparisons = 10;
        assert_eq!(out.message_count(), 2);
        assert!(!out.is_empty());
        let cap = out.to_left.capacity();
        out.clear();
        assert!(out.is_empty());
        assert_eq!(out.comparisons, 0);
        assert_eq!(out.to_left.capacity(), cap);
    }
}
