/root/repo/target/debug/deps/batching_equivalence-ec82306ed4ef88b5.d: tests/batching_equivalence.rs

/root/repo/target/debug/deps/libbatching_equivalence-ec82306ed4ef88b5.rmeta: tests/batching_equivalence.rs

tests/batching_equivalence.rs:
