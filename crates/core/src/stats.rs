//! Runtime statistics: per-node counters and latency recording.

use crate::time::{TimeDelta, Timestamp};

/// Work counters maintained by a pipeline node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// Tuple arrivals handled (from both directions).
    pub arrivals: u64,
    /// Arrivals forwarded to a neighbour.
    pub forwards: u64,
    /// Tuples stored into a node-local window.
    pub stored: u64,
    /// Predicate evaluations / index-probe verifications.
    pub comparisons: u64,
    /// Result tuples emitted by this node.
    pub results: u64,
    /// Acknowledgement messages handled.
    pub acks: u64,
    /// Expedition-end messages handled.
    pub expedition_ends: u64,
    /// Expiry messages handled.
    pub expiries: u64,
    /// Peak size of the node-local R window.
    pub wr_peak: usize,
    /// Peak size of the node-local S window.
    pub ws_peak: usize,
    /// Peak size of the unacknowledged buffer.
    pub iws_peak: usize,
}

impl NodeCounters {
    /// Records current store sizes, updating the peaks.
    pub fn observe_sizes(&mut self, wr: usize, ws: usize, iws: usize) {
        self.wr_peak = self.wr_peak.max(wr);
        self.ws_peak = self.ws_peak.max(ws);
        self.iws_peak = self.iws_peak.max(iws);
    }

    /// Adds another node's counters into this one (for pipeline totals).
    pub fn merge(&mut self, other: &NodeCounters) {
        self.arrivals += other.arrivals;
        self.forwards += other.forwards;
        self.stored += other.stored;
        self.comparisons += other.comparisons;
        self.results += other.results;
        self.acks += other.acks;
        self.expedition_ends += other.expedition_ends;
        self.expiries += other.expiries;
        self.wr_peak = self.wr_peak.max(other.wr_peak);
        self.ws_peak = self.ws_peak.max(other.ws_peak);
        self.iws_peak = self.iws_peak.max(other.iws_peak);
    }
}

/// Streaming latency statistics over a set of observations.
///
/// Latency is always measured the way the paper does: detection time minus
/// the arrival timestamp of the later input tuple.  The recorder keeps the
/// running average, the maximum, and an exact running variance (Welford),
/// which is what Figure 5 / 19 / 20 plot.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    count: u64,
    mean_us: f64,
    m2: f64,
    max_us: u64,
    min_us: u64,
    sum_us: u128,
}

impl LatencySummary {
    /// An empty summary.
    pub fn new() -> Self {
        LatencySummary {
            min_us: u64::MAX,
            ..Default::default()
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: TimeDelta) {
        let us = latency.as_micros();
        self.count += 1;
        self.sum_us += us as u128;
        self.max_us = self.max_us.max(us);
        self.min_us = self.min_us.min(us);
        // Welford's online algorithm for the variance.
        let delta = us as f64 - self.mean_us;
        self.mean_us += delta / self.count as f64;
        self.m2 += delta * (us as f64 - self.mean_us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Average latency.
    pub fn mean(&self) -> TimeDelta {
        TimeDelta::from_micros(self.mean_us.round() as u64)
    }

    /// Maximum latency.
    pub fn max(&self) -> TimeDelta {
        TimeDelta::from_micros(self.max_us)
    }

    /// Minimum latency (zero when empty).
    pub fn min(&self) -> TimeDelta {
        if self.count == 0 {
            TimeDelta::ZERO
        } else {
            TimeDelta::from_micros(self.min_us)
        }
    }

    /// Standard deviation of the observations.
    pub fn stddev(&self) -> TimeDelta {
        if self.count < 2 {
            return TimeDelta::ZERO;
        }
        TimeDelta::from_secs_f64((self.m2 / self.count as f64).sqrt() / 1e6)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &LatencySummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean_us - self.mean_us;
        let total = n1 + n2;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.mean_us += delta * n2 / total;
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
        self.min_us = self.min_us.min(other.min_us);
    }
}

/// A latency time series bucketed by output-tuple count, mirroring the
/// figures in the paper where "each data point represents 200,000 output
/// tuples" (Figures 5, 19 and 20).
#[derive(Debug, Clone)]
pub struct LatencySeries {
    bucket_size: u64,
    current: LatencySummary,
    current_start: Option<Timestamp>,
    last_detection: Option<Timestamp>,
    points: Vec<LatencyPoint>,
}

/// One aggregated point of a [`LatencySeries`].
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Wall-clock (stream) time at which the bucket started.
    pub at: Timestamp,
    /// Aggregated latencies of the bucket.
    pub summary: LatencySummary,
}

impl LatencySeries {
    /// Creates a series that aggregates `bucket_size` observations per point.
    pub fn new(bucket_size: u64) -> Self {
        assert!(bucket_size > 0, "bucket size must be positive");
        LatencySeries {
            bucket_size,
            current: LatencySummary::new(),
            current_start: None,
            last_detection: None,
            points: Vec::new(),
        }
    }

    /// Records one result produced at `detected_at` with the given latency.
    pub fn record(&mut self, detected_at: Timestamp, latency: TimeDelta) {
        if self.current_start.is_none() {
            self.current_start = Some(detected_at);
        }
        self.last_detection = Some(detected_at);
        self.current.record(latency);
        if self.current.count() >= self.bucket_size {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.current.count() == 0 {
            return;
        }
        self.points.push(LatencyPoint {
            at: self.current_start.take().unwrap_or(Timestamp::ZERO),
            summary: std::mem::replace(&mut self.current, LatencySummary::new()),
        });
    }

    /// Finishes the series, flushing a final partial bucket.
    pub fn finish(mut self) -> Vec<LatencyPoint> {
        self.flush();
        self.points
    }

    /// Points completed so far.
    pub fn points(&self) -> &[LatencyPoint] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn counters_merge_sums_and_maxes() {
        let mut a = NodeCounters {
            arrivals: 2,
            comparisons: 10,
            wr_peak: 5,
            ..Default::default()
        };
        let b = NodeCounters {
            arrivals: 3,
            comparisons: 1,
            wr_peak: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.arrivals, 5);
        assert_eq!(a.comparisons, 11);
        assert_eq!(a.wr_peak, 9);
    }

    #[test]
    fn observe_sizes_tracks_peaks() {
        let mut c = NodeCounters::default();
        c.observe_sizes(1, 5, 2);
        c.observe_sizes(3, 2, 1);
        assert_eq!((c.wr_peak, c.ws_peak, c.iws_peak), (3, 5, 2));
    }

    #[test]
    fn summary_mean_max_stddev() {
        let mut s = LatencySummary::new();
        for v in [10u64, 20, 30] {
            s.record(ms(v));
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), ms(20));
        assert_eq!(s.max(), ms(30));
        assert_eq!(s.min(), ms(10));
        // Population standard deviation of {10,20,30} ms = 8.165 ms.
        let sd = s.stddev().as_millis_f64();
        assert!((sd - 8.165).abs() < 0.01, "stddev was {sd}");
    }

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = LatencySummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), TimeDelta::ZERO);
        assert_eq!(s.max(), TimeDelta::ZERO);
        assert_eq!(s.min(), TimeDelta::ZERO);
        assert_eq!(s.stddev(), TimeDelta::ZERO);
    }

    #[test]
    fn summary_merge_matches_single_pass() {
        let values_a = [5u64, 7, 9, 100];
        let values_b = [1u64, 2, 3];
        let mut merged = LatencySummary::new();
        let mut a = LatencySummary::new();
        let mut b = LatencySummary::new();
        for v in values_a {
            a.record(ms(v));
            merged.record(ms(v));
        }
        for v in values_b {
            b.record(ms(v));
            merged.record(ms(v));
        }
        a.merge(&b);
        assert_eq!(a.count(), merged.count());
        assert_eq!(a.max(), merged.max());
        assert_eq!(a.min(), merged.min());
        assert!((a.mean().as_millis_f64() - merged.mean().as_millis_f64()).abs() < 0.001);
        assert!((a.stddev().as_millis_f64() - merged.stddev().as_millis_f64()).abs() < 0.001);
    }

    #[test]
    fn series_buckets_by_count() {
        let mut series = LatencySeries::new(2);
        series.record(Timestamp::from_secs(1), ms(10));
        series.record(Timestamp::from_secs(2), ms(20));
        series.record(Timestamp::from_secs(3), ms(30));
        assert_eq!(series.points().len(), 1);
        let points = series.finish();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].at, Timestamp::from_secs(1));
        assert_eq!(points[0].summary.count(), 2);
        assert_eq!(points[1].summary.count(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn zero_bucket_size_is_rejected() {
        let _ = LatencySeries::new(0);
    }
}
