//! Regenerates every figure and table of the paper's evaluation in one go
//! (the source of the measured numbers recorded in EXPERIMENTS.md).
//! Run with --release; takes on the order of a minute on a laptop.
fn main() {
    let scale = llhj_bench::Scale::default();
    println!("{}", llhj_bench::experiments::fig05::run(&scale).text);
    println!("{}", llhj_bench::experiments::fig17::run(&scale).text);
    println!("{}", llhj_bench::experiments::fig18::run(&scale).text);
    println!("{}", llhj_bench::experiments::fig19::run(&scale).text);
    println!("{}", llhj_bench::experiments::fig20::run(&scale).text);
    println!("{}", llhj_bench::experiments::fig21::run(&scale).text);
    println!("{}", llhj_bench::experiments::table2::run(&scale).text);
}
