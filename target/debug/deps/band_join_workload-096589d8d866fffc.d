/root/repo/target/debug/deps/band_join_workload-096589d8d866fffc.d: tests/band_join_workload.rs Cargo.toml

/root/repo/target/debug/deps/libband_join_workload-096589d8d866fffc.rmeta: tests/band_join_workload.rs Cargo.toml

tests/band_join_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
