/root/repo/target/debug/deps/fig05-1cf7a8874eb979d4.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-1cf7a8874eb979d4: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
