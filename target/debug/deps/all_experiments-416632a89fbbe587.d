/root/repo/target/debug/deps/all_experiments-416632a89fbbe587.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-416632a89fbbe587: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
