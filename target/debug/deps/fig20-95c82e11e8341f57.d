/root/repo/target/debug/deps/fig20-95c82e11e8341f57.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/libfig20-95c82e11e8341f57.rmeta: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
