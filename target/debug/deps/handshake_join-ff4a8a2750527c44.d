/root/repo/target/debug/deps/handshake_join-ff4a8a2750527c44.d: src/lib.rs

/root/repo/target/debug/deps/libhandshake_join-ff4a8a2750527c44.rlib: src/lib.rs

/root/repo/target/debug/deps/libhandshake_join-ff4a8a2750527c44.rmeta: src/lib.rs

src/lib.rs:
