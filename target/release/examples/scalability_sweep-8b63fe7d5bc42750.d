/root/repo/target/release/examples/scalability_sweep-8b63fe7d5bc42750.d: examples/scalability_sweep.rs

/root/repo/target/release/examples/scalability_sweep-8b63fe7d5bc42750: examples/scalability_sweep.rs

examples/scalability_sweep.rs:
