/root/repo/target/release/deps/dbg_batching-5cd430a284621e8d.d: crates/bench/src/bin/dbg_batching.rs

/root/repo/target/release/deps/dbg_batching-5cd430a284621e8d: crates/bench/src/bin/dbg_batching.rs

crates/bench/src/bin/dbg_batching.rs:
