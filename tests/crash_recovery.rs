//! Seeded fault-injection conformance sweep for the durability layer.
//!
//! A crash is only survivable if three artifacts agree: the persisted
//! checkpoint blobs, the driver-side replay log, and the recovery path
//! that welds them back into a running chain or mesh.  These sweeps kill
//! real threaded pipelines **mid-migration** — the migration-stall hook
//! holds a fenced handoff open for a known wall-time window and a timer
//! thread lands the cancel inside it, the worst instant the fence
//! protocol offers — then rebuild from the latest checkpoint, replay the
//! in-flight suffix, and assert for every seeded case, workload and
//! shard count:
//!
//! * the spliced stream (crashed prefix + recovered suffix, overlap
//!   deduplicated) is **byte-identical** to the Kang oracle;
//! * **no duplicates** anywhere — not in the crashed prefix, not across
//!   the splice seam;
//! * **punctuation stays monotone** across the seam — a recovered
//!   punctuation below the crashed stream's high-water mark never
//!   surfaces;
//! * the discrete-event substrate agrees: the simulator crashes at a
//!   *seeded random event index* (virtual time has no races to stall)
//!   and its checkpoint/recovery mirror reproduces the oracle the same
//!   way.
//!
//! The band workload rides fragment-replicate routing, the Zipf-skewed
//! equi workload rides co-partitioning — both over 1, 2 and 4 shards
//! (one shard is the plain elastic chain; the mesh wraps it above that).

mod common;

use common::{assert_sound, cancel_after, with_deadline};
use handshake_join::prelude::*;
use llhj_core::punctuation::verify_punctuated_stream;
use llhj_core::tuple::SeqNo;
use llhj_sync::sync::Arc;
use llhj_sync::time::Duration;
use llhj_workload::WorkloadRng;

fn band_schedule(rate: f64, duration_ms: u64, seed: u64) -> DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(rate, TimeDelta::from_millis(duration_ms), 220, seed);
    band_join_schedule(
        &workload,
        WindowSpec::Time(TimeDelta::from_millis(150)),
        WindowSpec::Time(TimeDelta::from_millis(150)),
    )
}

fn zipf_schedule(rate: f64, duration_ms: u64, seed: u64) -> DriverSchedule<RTuple, STuple> {
    let workload = ZipfEquiJoinWorkload {
        rate_per_sec: rate,
        duration: TimeDelta::from_millis(duration_ms),
        domain: 60,
        theta: 1.0,
        seed,
    };
    zipf_equi_join_schedule(
        &workload,
        WindowSpec::Time(TimeDelta::from_millis(150)),
        WindowSpec::Time(TimeDelta::from_millis(150)),
    )
}

fn paced_options() -> PipelineOptions {
    PipelineOptions {
        batch_size: 4,
        punctuate: true,
        pacing: Pacing::RealTime { speedup: 1.0 },
        ..Default::default()
    }
}

fn stream_keys<R, S>(output: &[OutputItem<TimedResult<R, S>>]) -> Vec<(SeqNo, SeqNo)> {
    let mut keys: Vec<_> = output
        .iter()
        .filter_map(|item| match item {
            OutputItem::Result(t) => Some(t.result.key()),
            OutputItem::Punctuation(_) => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// Kills one checkpointed threaded run mid-migration, recovers it from
/// the store plus replay log, and asserts the spliced stream reproduces
/// the oracle exactly.
fn crash_and_recover_runtime<P>(
    label: &str,
    schedule: DriverSchedule<RTuple, STuple>,
    predicate: P,
    make_factory: fn(P) -> NodeFactory<RTuple, STuple>,
    mode: RouteMode,
    shards: usize,
) where
    P: llhj_core::predicate::JoinPredicate<RTuple, STuple> + Clone + Send + Sync + 'static,
{
    let oracle = handshake_join::baselines::run_kang(predicate.clone(), &schedule);
    let oracle_keys = oracle.result_keys();
    assert!(
        oracle_keys.len() > 10,
        "{label}: workload must produce a meaningful number of matches"
    );
    let events = schedule.events().len();
    let store = Arc::new(MemoryStore::new());
    let cfg = CheckpointConfig::new(Arc::clone(&store) as _, 50);

    // Kill the run while a stalled migration holds the fence open: the
    // reshape fires at ~25% of the paced replay (~0.5 s), every handoff
    // inside it stalls for 300 ms, and the cancel lands at 0.7 s.
    let cancel = CancelToken::new();
    let canceller = cancel_after(&cancel, Duration::from_millis(700));
    let mut crash_opts = paced_options();
    crash_opts.cancel = Some(cancel);
    let (crashed_output, log, cancelled) = {
        let schedule = schedule.clone();
        let predicate = predicate.clone();
        let cfg = cfg.clone();
        with_deadline(Duration::from_secs(60), move || {
            if shards == 1 {
                let mut pipeline = ElasticPipeline::new(
                    4,
                    make_factory(predicate.clone()),
                    predicate,
                    RoundRobin,
                    crash_opts,
                );
                pipeline.set_migration_stall(Duration::from_millis(300));
                let plan = ScalePlan::new(vec![ScaleStep {
                    after_events: events / 4,
                    target_nodes: 2,
                }]);
                let (cancelled, log) = pipeline.run_schedule_checkpointed(&schedule, &plan, &cfg);
                let outcome = pipeline.finish();
                (outcome.output, log, cancelled)
            } else {
                let mut mesh = MeshPipeline::new(
                    shards,
                    2,
                    make_factory(predicate.clone()),
                    predicate,
                    RoundRobin,
                    mode,
                    crash_opts,
                );
                mesh.set_migration_stall(Duration::from_millis(300));
                let plan = MeshPlan::from_steps(&[(events / 4, shards * 2, 2)]);
                let (cancelled, log) = mesh.run_schedule_checkpointed(&schedule, &plan, &cfg);
                let outcome = mesh.finish();
                (outcome.output, log, cancelled)
            }
        })
    };
    canceller.join().unwrap();
    assert!(cancelled, "{label}: the kill must land mid-run");
    let crashed_keys = stream_keys(&crashed_output);
    assert!(
        crashed_keys.len() < oracle_keys.len(),
        "{label}: the crash must interrupt the run before completion"
    );
    assert_sound(&crashed_keys, &oracle_keys, label);

    // The surviving driver-side artifacts: the store, plus the replay
    // log extended with everything the crashed run never consumed.
    let consumed = log.oldest() + log.len();
    let mut full_log = log;
    for event in &schedule.events()[consumed..] {
        full_log.record(event.clone());
    }
    let recovered_output = {
        let store = Arc::clone(&store);
        let opts = paced_options();
        with_deadline(Duration::from_secs(60), move || {
            if shards == 1 {
                recover_elastic_pipeline(
                    store.as_ref(),
                    0,
                    4,
                    make_factory(predicate.clone()),
                    predicate,
                    RoundRobin,
                    &opts,
                    &full_log,
                )
                .expect("chain recovery must succeed")
                .output
            } else {
                recover_mesh_pipeline(
                    store.as_ref(),
                    shards,
                    2,
                    make_factory(predicate.clone()),
                    predicate,
                    RoundRobin,
                    mode,
                    &opts,
                    &full_log,
                )
                .expect("mesh recovery must succeed")
                .output
            }
        })
    };

    let spliced = splice_recovered_stream(crashed_output, recovered_output, |t| t.result.key());
    assert_eq!(
        stream_keys(&spliced),
        oracle_keys,
        "{label}: crashed prefix + recovered suffix must be byte-identical to the oracle"
    );
    verify_punctuated_stream(&spliced, |t| t.result.ts()).unwrap_or_else(|i| {
        panic!("{label}: spliced stream loses punctuation monotonicity at item {i}")
    });
}

/// Band join (fragment-replicate) killed mid-migration over 1, 2 and 4
/// shards, then recovered from the checkpoint store.
#[test]
fn band_runtime_survives_a_kill_mid_migration_across_shard_counts() {
    let mut rng = WorkloadRng::seed_from_u64(0x5A4D_4001);
    for shards in [1usize, 2, 4] {
        let seed = rng.gen_range_u32(0, 9_999) as u64;
        crash_and_recover_runtime(
            &format!("band crash (seed {seed}, {shards} shards)"),
            band_schedule(200.0, 2_000, seed),
            BandPredicate::default(),
            llhj_factory,
            RouteMode::FragmentReplicate,
            shards,
        );
    }
}

/// Zipf-skewed equi join (co-partitioned) killed mid-migration over 1, 2
/// and 4 shards, then recovered from the checkpoint store.
#[test]
fn zipf_equi_runtime_survives_a_kill_mid_migration_across_shard_counts() {
    let mut rng = WorkloadRng::seed_from_u64(0x5A4D_4101);
    for shards in [1usize, 2, 4] {
        let seed = rng.gen_range_u32(0, 9_999) as u64;
        crash_and_recover_runtime(
            &format!("zipf crash (seed {seed}, {shards} shards)"),
            zipf_schedule(200.0, 2_000, seed),
            EquiXaPredicate,
            llhj_indexed_factory,
            RouteMode::CoPartition,
            shards,
        );
    }
}

/// One simulated crash/recovery case: checkpointed mesh run crashed at a
/// seeded random event index, recovered from the last coordinated
/// checkpoint, spliced and compared to the oracle.
fn crash_and_recover_sim<P>(
    label: &str,
    schedule: &DriverSchedule<RTuple, STuple>,
    predicate: P,
    algorithm: Algorithm,
    mode: RouteMode,
    shards: usize,
    crash_at: usize,
) where
    P: llhj_core::predicate::JoinPredicate<RTuple, STuple> + Clone + Send + Sync + 'static,
{
    let oracle = handshake_join::baselines::run_kang(predicate.clone(), schedule);
    let oracle_keys = oracle.result_keys();
    let events = schedule.events().len();
    let mut cfg = SimConfig::new(2, algorithm);
    cfg.batch_size = 4;
    cfg.punctuate = true;
    cfg.window_r = WindowSpec::Time(TimeDelta::from_millis(150));
    cfg.window_s = WindowSpec::Time(TimeDelta::from_millis(150));
    cfg.expected_rate_per_sec = 400.0;
    cfg.latency_bucket = 1_000_000;
    let plan = MeshPlan::from_steps(&[(events / 4, shards * 2, 2)]);
    let (crashed, _ckpts, latest) = run_checkpointed_mesh_simulation(
        &cfg,
        predicate.clone(),
        RoundRobin,
        mode,
        shards,
        schedule,
        &plan,
        50,
        Some(crash_at),
    );
    let crashed_keys = crashed.result_keys();
    assert_sound(&crashed_keys, &oracle_keys, label);
    let recovered = recover_mesh_simulation(
        &cfg,
        predicate,
        RoundRobin,
        mode,
        shards,
        schedule,
        latest.as_ref(),
    );
    let spliced = splice_recovered_stream(crashed.output, recovered.output, |t| t.result.key());
    assert_eq!(
        stream_keys(&spliced),
        oracle_keys,
        "{label}: simulated crash/recovery must reproduce the oracle"
    );
    verify_punctuated_stream(&spliced, |t| t.result.ts()).unwrap_or_else(|i| {
        panic!("{label}: simulated spliced stream loses monotonicity at item {i}")
    });
}

/// The discrete-event mirror of the kill sweep: both workloads, 1, 2 and
/// 4 shards, each crashed at a seeded random index in the middle 10–90%
/// of the schedule.
#[test]
fn sim_mesh_survives_seeded_random_crashes_across_shard_counts() {
    let mut rng = WorkloadRng::seed_from_u64(0x5A4D_4201);
    for shards in [1usize, 2, 4] {
        let band_seed = rng.gen_range_u32(0, 9_999) as u64;
        let sched = band_schedule(400.0, 400, band_seed);
        let events = sched.events().len();
        let lo = events / 10;
        let crash_at = lo + rng.gen_range_u32(0, (events * 9 / 10 - lo) as u32) as usize;
        crash_and_recover_sim(
            &format!("band sim crash (seed {band_seed}, {shards} shards, crash@{crash_at})"),
            &sched,
            BandPredicate::default(),
            Algorithm::Llhj,
            RouteMode::FragmentReplicate,
            shards,
            crash_at,
        );

        let zipf_seed = rng.gen_range_u32(0, 9_999) as u64;
        let sched = zipf_schedule(400.0, 400, zipf_seed);
        let events = sched.events().len();
        let lo = events / 10;
        let crash_at = lo + rng.gen_range_u32(0, (events * 9 / 10 - lo) as u32) as usize;
        crash_and_recover_sim(
            &format!("zipf sim crash (seed {zipf_seed}, {shards} shards, crash@{crash_at})"),
            &sched,
            EquiXaPredicate,
            Algorithm::LlhjIndexed,
            RouteMode::CoPartition,
            shards,
            crash_at,
        );
    }
}
