//! The benchmark schema of Section 7.1.
//!
//! The paper reuses the CellJoin benchmark: two streams
//!
//! ```text
//! R = ⟨ x: int, y: float, z: char[20] ⟩
//! S = ⟨ a: int, b: float, c: double, d: bool ⟩
//! ```
//!
//! joined by the two-dimensional band join
//!
//! ```text
//! WHERE r.x BETWEEN s.a - 10 AND s.a + 10
//!   AND r.y BETWEEN s.b - 10. AND s.b + 10.
//! ```
//!
//! with both join attributes drawn uniformly from 1–10,000, which yields a
//! join hit rate of about 1 : 250,000.  For the index-acceleration
//! experiment (Table 2) the predicate is changed to an equi-join on
//! `r.x = s.a` so that hash indexes apply.

use llhj_core::checkpoint::{ByteReader, CheckpointError, CheckpointPayload};
use llhj_core::predicate::{BandSpec, JoinPredicate};
use llhj_core::store::ColumnarPayload;

/// A tuple of stream R: `⟨ x: int, y: float, z: char[20] ⟩`.
#[derive(Debug, Clone, PartialEq)]
pub struct RTuple {
    /// First (integer) join attribute.
    pub x: i32,
    /// Second (floating point) join attribute.
    pub y: f32,
    /// Carried payload column, never inspected by the join.
    pub z: [u8; 20],
}

impl RTuple {
    /// Creates an R tuple with a zeroed payload column.
    pub fn new(x: i32, y: f32) -> Self {
        RTuple { x, y, z: [0; 20] }
    }
}

/// A tuple of stream S: `⟨ a: int, b: float, c: double, d: bool ⟩`.
#[derive(Debug, Clone, PartialEq)]
pub struct STuple {
    /// First (integer) join attribute.
    pub a: i32,
    /// Second (floating point) join attribute.
    pub b: f32,
    /// Carried payload column.
    pub c: f64,
    /// Carried payload column.
    pub d: bool,
}

impl STuple {
    /// Creates an S tuple with default payload columns.
    pub fn new(a: i32, b: f32) -> Self {
        STuple {
            a,
            b,
            c: 0.0,
            d: false,
        }
    }
}

/// The integer join attribute `x`, mirrored into the columnar attribute
/// column so band scans over R windows run branch-free.
impl ColumnarPayload for RTuple {
    #[inline]
    fn join_attr(&self) -> i64 {
        self.x as i64
    }
}

/// The integer join attribute `a`; see the [`RTuple`] impl.
impl ColumnarPayload for STuple {
    #[inline]
    fn join_attr(&self) -> i64 {
        self.a as i64
    }
}

/// Field-by-field little-endian encoding (`x`, `y`, `z`) so R windows can
/// ride in checkpoint blobs.
impl CheckpointPayload for RTuple {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.x.encode(buf);
        self.y.encode(buf);
        self.z.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        Ok(RTuple {
            x: i32::decode(r)?,
            y: f32::decode(r)?,
            z: <[u8; 20]>::decode(r)?,
        })
    }
}

/// Field-by-field little-endian encoding (`a`, `b`, `c`, `d`); see the
/// [`RTuple`] impl.
impl CheckpointPayload for STuple {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.a.encode(buf);
        self.b.encode(buf);
        self.c.encode(buf);
        self.d.encode(buf);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        Ok(STuple {
            a: i32::decode(r)?,
            b: f32::decode(r)?,
            c: f64::decode(r)?,
            d: bool::decode(r)?,
        })
    }
}

/// The paper's two-dimensional band join predicate.
///
/// `band` is the half-width of the band (10 in the paper).  The predicate
/// does not expose equi-keys, so no hash index applies — but it does expose
/// a *band form* over the integer attribute (`x` / `a`): window scans
/// evaluate `|r.x - s.a| <= band_x` as a branch-free compare-and-mask loop
/// over the columnar attribute vector and only re-check the float residual
/// `|r.y - s.b| <= band_y` on the (rare) integer-band hits.
#[derive(Debug, Clone, Copy)]
pub struct BandPredicate {
    /// Half-width of the integer band on `x` / `a`.
    pub band_x: i32,
    /// Half-width of the float band on `y` / `b`.
    pub band_y: f32,
}

impl Default for BandPredicate {
    fn default() -> Self {
        BandPredicate {
            band_x: 10,
            band_y: 10.0,
        }
    }
}

impl JoinPredicate<RTuple, STuple> for BandPredicate {
    #[inline]
    fn matches(&self, r: &RTuple, s: &STuple) -> bool {
        (r.x - s.a).abs() <= self.band_x && (r.y - s.b).abs() <= self.band_y
    }
    #[inline]
    fn r_attr(&self, r: &RTuple) -> Option<i64> {
        Some(r.join_attr())
    }
    #[inline]
    fn s_attr(&self, s: &STuple) -> Option<i64> {
        Some(s.join_attr())
    }
    #[inline]
    fn s_band(&self, r: &RTuple) -> Option<BandSpec> {
        Some(BandSpec::around(r.join_attr(), self.band_x as i64))
    }
    #[inline]
    fn r_band(&self, s: &STuple) -> Option<BandSpec> {
        Some(BandSpec::around(s.join_attr(), self.band_x as i64))
    }
    // band_exact stays false: the float band on `y` / `b` is the residual
    // check applied to every integer-band hit.
}

/// Equi-join variant `r.x = s.a` used for the index-acceleration experiment
/// (Section 7.6 / Table 2).  Exposes both keys so node-local hash indexes
/// can be built.
#[derive(Debug, Clone, Copy, Default)]
pub struct EquiXaPredicate;

impl JoinPredicate<RTuple, STuple> for EquiXaPredicate {
    #[inline]
    fn matches(&self, r: &RTuple, s: &STuple) -> bool {
        r.x == s.a
    }
    #[inline]
    fn r_key(&self, r: &RTuple) -> Option<u64> {
        Some(r.x as u64)
    }
    #[inline]
    fn s_key(&self, s: &STuple) -> Option<u64> {
        Some(s.a as u64)
    }
    fn supports_index(&self) -> bool {
        true
    }
    #[inline]
    fn r_attr(&self, r: &RTuple) -> Option<i64> {
        Some(r.join_attr())
    }
    #[inline]
    fn s_attr(&self, s: &STuple) -> Option<i64> {
        Some(s.join_attr())
    }
    #[inline]
    fn s_band(&self, r: &RTuple) -> Option<BandSpec> {
        Some(BandSpec::point(r.join_attr()))
    }
    #[inline]
    fn r_band(&self, s: &STuple) -> Option<BandSpec> {
        Some(BandSpec::point(s.join_attr()))
    }
    fn band_exact(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_predicate_matches_inside_band() {
        let p = BandPredicate::default();
        let r = RTuple::new(100, 50.0);
        assert!(p.matches(&r, &STuple::new(110, 55.0)));
        assert!(p.matches(&r, &STuple::new(90, 45.0)));
        assert!(!p.matches(&r, &STuple::new(111, 50.0)), "x band exceeded");
        assert!(!p.matches(&r, &STuple::new(100, 61.0)), "y band exceeded");
    }

    #[test]
    fn band_predicate_has_no_keys() {
        let p = BandPredicate::default();
        assert!(!JoinPredicate::<RTuple, STuple>::supports_index(&p));
        assert_eq!(p.r_key(&RTuple::new(1, 1.0)), None);
        assert_eq!(p.s_key(&STuple::new(1, 1.0)), None);
    }

    #[test]
    fn band_predicate_band_form_is_sound_but_not_exact() {
        // Soundness: every matching pair lies inside the band; the band
        // alone is NOT exact because of the float residual on y/b.
        let p = BandPredicate::default();
        assert!(!JoinPredicate::<RTuple, STuple>::band_exact(&p));
        let r = RTuple::new(100, 50.0);
        let band = p.s_band(&r).unwrap();
        assert_eq!(band, BandSpec { lo: 90, hi: 110 });
        for a in [90, 100, 110] {
            let s = STuple::new(a, 50.0);
            assert!(p.matches(&r, &s));
            assert!(band.contains(p.s_attr(&s).unwrap()));
        }
        // Inside the integer band, outside the float band: a band hit the
        // residual must reject.
        let s = STuple::new(100, 61.0);
        assert!(band.contains(p.s_attr(&s).unwrap()) && !p.matches(&r, &s));
        // Outside the integer band: never a hit.
        assert!(!band.contains(p.s_attr(&STuple::new(111, 50.0)).unwrap()));
        // The mirror direction.
        let rb = p.r_band(&STuple::new(100, 50.0)).unwrap();
        assert_eq!(rb, BandSpec { lo: 90, hi: 110 });
        assert!(rb.contains(p.r_attr(&r).unwrap()));
    }

    #[test]
    fn equi_predicate_band_form_is_exact_points() {
        let p = EquiXaPredicate;
        assert!(JoinPredicate::<RTuple, STuple>::band_exact(&p));
        assert_eq!(p.s_band(&RTuple::new(7, 0.0)), Some(BandSpec::point(7)));
        assert_eq!(p.r_band(&STuple::new(9, 0.0)), Some(BandSpec::point(9)));
        assert_eq!(p.r_attr(&RTuple::new(7, 0.0)), Some(7));
        assert_eq!(p.s_attr(&STuple::new(9, 0.0)), Some(9));
    }

    #[test]
    fn columnar_payloads_mirror_the_integer_attribute() {
        assert_eq!(RTuple::new(42, 9.9).join_attr(), 42);
        assert_eq!(STuple::new(-3, 0.0).join_attr(), -3);
    }

    #[test]
    fn equi_predicate_matches_on_x_a_only() {
        let p = EquiXaPredicate;
        assert!(p.matches(&RTuple::new(7, 1.0), &STuple::new(7, 999.0)));
        assert!(!p.matches(&RTuple::new(7, 1.0), &STuple::new(8, 1.0)));
        assert_eq!(p.r_key(&RTuple::new(7, 1.0)), Some(7));
        assert_eq!(p.s_key(&STuple::new(9, 1.0)), Some(9));
        assert!(JoinPredicate::<RTuple, STuple>::supports_index(&p));
    }

    #[test]
    fn checkpoint_payloads_round_trip() {
        let mut r = RTuple::new(-42, 3.25);
        r.z = *b"twenty bytes of pay!";
        let s = STuple {
            a: 7,
            b: -1.5,
            c: 2.75,
            d: true,
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        s.encode(&mut buf);
        let mut reader = ByteReader::new(&buf);
        assert_eq!(RTuple::decode(&mut reader).unwrap(), r);
        assert_eq!(STuple::decode(&mut reader).unwrap(), s);
        assert!(reader.is_empty());
        // A short buffer surfaces the typed truncation error.
        let mut short = ByteReader::new(&buf[..3]);
        assert_eq!(
            RTuple::decode(&mut short).unwrap_err(),
            CheckpointError::Truncated
        );
    }

    #[test]
    fn tuple_constructors() {
        let r = RTuple::new(3, 4.5);
        assert_eq!(r.x, 3);
        assert_eq!(r.z, [0u8; 20]);
        let s = STuple::new(1, 2.0);
        assert!(!s.d);
        assert_eq!(s.c, 0.0);
    }
}
