//! The threaded shard mesh: one router, `N` elastic chains.
//!
//! A single [`crate::elastic::ElasticPipeline`] scales by adding nodes,
//! but every tuple still traverses one chain, so its throughput ceiling
//! is the chain's frame rate.  The mesh adds the second axis from
//! ROADMAP's sharding item: the key space is hashed over `N` independent
//! elastic chains by a [`ShardRouter`], each chain keeps its own
//! collector, and the per-shard punctuated outputs are merged by
//! [`merge_punctuated_streams`] into one global stream whose punctuation
//! frontier is the minimum over shards.
//!
//! ## Routing
//!
//! Equi-joins co-partition: both streams hash by join key, so matching
//! tuples meet inside one shard and shards share nothing.  Keyless
//! predicates (bands) fragment-and-replicate: R is partitioned by a hash
//! of its sequence number and S (with its expiries) is broadcast, so each
//! `(r, s)` pair is examined in exactly the shard owning `r`.  Either
//! way the union of shard outputs equals the single-chain result set with
//! no duplicates — the conformance suite checks byte-identity against
//! the Kang oracle.
//!
//! ## Resharding
//!
//! A shard split doubles the chain count.  It reuses the chain-internal
//! fence discipline end to end: every chain fences (drains to
//! quiescence), the router adds one mask bit, and each parent chain's
//! nodes run `ExportAll` → hash-partition → silent `Install`: node `k`'s
//! rows split between the parent's node `k` and the (same-width) child
//! chain's node `k`.  Re-installing at the *same pipeline position* is
//! what keeps stream-monotone node types correct — the positional
//! met-invariant carries over verbatim, so no migration-hop matching is
//! due (and on a fragment-replicate merge, matching again would duplicate
//! results; hence the installs are silent).  Each chain then runs the
//! ordinary census → [`llhj_core::rebalance::RedistributionPlan`] →
//! multi-hop acked handoff pass to level its windows, and the mesh
//! resumes.  A merge is the inverse: the child chain is first scaled to
//! the parent's width, then exports node by node into the parent.

use crate::channel::CancelToken;
use crate::elastic::{
    CheckpointConfig, ElasticOutcome, ElasticPipeline, NodeFactory, ScalePipeline,
};
use crate::options::PipelineOptions;
use llhj_core::checkpoint::{
    load_latest_mesh, ChainCheckpointer, CheckpointError, CheckpointPayload, CheckpointStore,
    ReplayLog,
};
use llhj_core::driver::{DriverEvent, DriverSchedule};
use llhj_core::homing::HomePolicy;
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::OutputItem;
use llhj_core::result::TimedResult;
use llhj_core::shard::{merge_punctuated_streams, MeshPlan, RouteMode, ShardRouter};
use llhj_core::time::Timestamp;
use llhj_core::tuple::SeqNo;
use llhj_sync::time::{Duration, Instant};

/// One completed mesh reshaping, for the outcome's reshard log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardEvent {
    /// Schedule events consumed when the reshaping fired.
    pub after_events: usize,
    /// Shard count before.
    pub from_shards: usize,
    /// Shard count after.
    pub to_shards: usize,
    /// Per-shard chain width after the reshaping.
    pub width: usize,
    /// Window tuples that crossed a shard boundary (split halves moving
    /// to a child, or child windows folding back into a parent).
    pub moved_tuples: usize,
}

/// Everything measured during one mesh run.
#[derive(Debug)]
pub struct MeshOutcome<R, S> {
    /// All results from every shard (collection order within a shard,
    /// shards concatenated; use [`MeshOutcome::result_keys`] to compare
    /// with an oracle).
    pub results: Vec<TimedResult<R, S>>,
    /// The merged punctuated output stream (empty unless `punctuate`).
    pub output: Vec<OutputItem<TimedResult<R, S>>>,
    /// Every reshaping the mesh went through, in order.
    pub reshard_log: Vec<ReshardEvent>,
    /// Final shard count.
    pub shards: usize,
    /// Final per-shard chain widths.
    pub widths: Vec<usize>,
    /// True if the run was interrupted by [`PipelineOptions::cancel`].
    pub cancelled: bool,
}

impl<R, S> MeshOutcome<R, S> {
    /// Sorted `(r_seq, s_seq)` result keys for comparison with the oracle.
    pub fn result_keys(&self) -> Vec<(SeqNo, SeqNo)> {
        let mut keys: Vec<_> = self.results.iter().map(|t| t.result.key()).collect();
        keys.sort_unstable();
        keys
    }
}

/// A live mesh of elastic chains behind one key-partitioning router.
pub struct MeshPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    router: ShardRouter<R, S, P>,
    chains: Vec<ElasticPipeline<R, S, P, H>>,
    factory: NodeFactory<R, S>,
    predicate: P,
    policy: H,
    options: PipelineOptions,
    /// Outcomes of chains retired by shard merges; their output streams
    /// join the final frontier merge.
    retired: Vec<ElasticOutcome<R, S>>,
    reshard_log: Vec<ReshardEvent>,
    started: Instant,
    migration_stall: Option<Duration>,
    cancelled: bool,
}

impl<R, S, P, H> MeshPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    /// Deploys `shards` chains (a non-zero power of two) of `width` nodes
    /// each.  `mode` must be a routing the predicate supports — use
    /// [`RouteMode::for_predicate`] unless a test wants to force the
    /// fragment-replicate fallback onto an equi-join.
    pub fn new(
        shards: usize,
        width: usize,
        factory: NodeFactory<R, S>,
        predicate: P,
        policy: H,
        mode: RouteMode,
        options: PipelineOptions,
    ) -> Self {
        assert!(
            mode == RouteMode::FragmentReplicate || predicate.supports_index(),
            "co-partitioning requires a predicate with both equi-key extractors"
        );
        let router = ShardRouter::new(predicate.clone(), mode, shards);
        let chains = (0..shards)
            .map(|p| {
                // Stagger each chain's core slots so two shards' workers do
                // not stack on the same cores (a no-op unless `pin_cores`).
                let mut chain_options = options.clone();
                chain_options.pin_core_offset = options.pin_core_offset + p * (width + 1);
                ElasticPipeline::new(
                    width,
                    factory.clone(),
                    predicate.clone(),
                    policy.clone(),
                    chain_options,
                )
            })
            .collect();
        MeshPipeline {
            router,
            chains,
            factory,
            predicate,
            policy,
            options,
            retired: Vec::new(),
            reshard_log: Vec::new(),
            started: Instant::now(),
            migration_stall: None,
            cancelled: false,
        }
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.chains.len()
    }

    /// The reshard log so far.
    pub fn reshard_log(&self) -> &[ReshardEvent] {
        &self.reshard_log
    }

    /// Real-time pacing before injecting an event scheduled at `at`; a
    /// plain cancellable wait (the mesh driver has no flush-slicing or
    /// controller).  Returns `true` if the wait was cancelled.
    fn pace(&self, at: Timestamp, cancel: &CancelToken) -> bool {
        let target = self
            .options
            .stream_to_wall(at.saturating_since(Timestamp::ZERO));
        if target.is_zero() {
            return cancel.is_cancelled();
        }
        let deadline = self.started + target;
        if Instant::now() < deadline {
            return cancel.wait_until(deadline);
        }
        cancel.is_cancelled()
    }

    /// Makes every window migration (chain resize or shard reshape) stall
    /// for `stall` per absorbed batch — the fault-injection hook the crash
    /// recovery suite uses to land a cancellation mid-migration.  Applies
    /// to the current chains and to every chain a later split creates.
    pub fn set_migration_stall(&mut self, stall: Duration) {
        self.migration_stall = Some(stall);
        for chain in &mut self.chains {
            chain.set_migration_stall(stall);
        }
    }

    /// One shard split: every chain doubles into itself plus a same-width
    /// child.  Returns the tuples moved across shard boundaries.
    fn split_once(&mut self) -> usize {
        let n = self.chains.len();
        for chain in &mut self.chains {
            chain.fence_for_reshard();
        }
        self.router.split();
        let mut moved = 0;
        for p in 0..n {
            let width = self.chains[p].nodes();
            // The child starts at the SAME width as its parent: node `k`'s
            // moving rows re-enter at position `k`, preserving positional
            // invariants; the per-chain rebalance below levels both chains
            // afterwards.
            let mut child = ElasticPipeline::new(
                width,
                self.factory.clone(),
                self.predicate.clone(),
                self.policy.clone(),
                {
                    // New shards keep staggering past the existing chains.
                    let mut child_options = self.options.clone();
                    child_options.pin_core_offset =
                        self.options.pin_core_offset + self.chains.len() * (width + 1);
                    child_options
                },
            );
            if let Some(stall) = self.migration_stall {
                child.set_migration_stall(stall);
            }
            let segments = self.chains[p].export_all_segments();
            for (k, segment) in segments.into_iter().enumerate() {
                let (keep, moving) = self.router.split_segment(p, segment);
                moved += moving.len();
                self.chains[p].install_segment(k, keep);
                child.install_segment(k, moving);
            }
            self.chains[p].rebalance_fenced();
            child.rebalance_fenced();
            // Shard ids: child of parent `p` is `p + n` — pushing parents'
            // children in order lands each at exactly that index.
            self.chains.push(child);
        }
        moved
    }

    /// One shard merge: each child chain folds back into its parent.
    /// Returns the tuples moved across shard boundaries.
    fn merge_once(&mut self) -> usize {
        let n = self.chains.len() / 2;
        // Equalize widths first (scale_to fences internally): the child's
        // node `k` must land on an existing parent node `k`.
        for p in 0..n {
            let width = self.chains[p].nodes();
            self.chains[n + p].scale_to(width);
        }
        for chain in &mut self.chains {
            chain.fence_for_reshard();
        }
        self.router.merge();
        let mut moved = 0;
        let children = self.chains.split_off(n);
        for (p, mut child) in children.into_iter().enumerate() {
            let segments = child.export_all_segments();
            for (k, segment) in segments.into_iter().enumerate() {
                // Under fragment-replicate the child's S rows are broadcast
                // copies of the parent's own — the router drops them here
                // (installing them would double the S window and duplicate
                // results).
                let segment = self.router.merge_segment(segment);
                moved += segment.len();
                self.chains[p].install_segment(k, segment);
            }
            self.chains[p].rebalance_fenced();
            self.retired.push(child.finish());
        }
        moved
    }

    /// Reshapes the mesh to `target_shards` shards of `width` nodes each,
    /// by repeated splits or merges plus per-chain resizes.
    fn reshape(&mut self, target_shards: usize, width: usize, at_event: usize) {
        assert!(
            target_shards.is_power_of_two(),
            "shard count must be a power of two, got {target_shards}"
        );
        let from = self.chains.len();
        let mut moved = 0;
        while self.chains.len() < target_shards {
            moved += self.split_once();
        }
        while self.chains.len() > target_shards {
            moved += self.merge_once();
        }
        let mut width_changed = false;
        for chain in &mut self.chains {
            if chain.nodes() != width {
                chain.scale_to(width);
                width_changed = true;
            }
        }
        if from != target_shards || width_changed {
            self.reshard_log.push(ReshardEvent {
                after_events: at_event,
                from_shards: from,
                to_shards: target_shards,
                width,
                moved_tuples: moved,
            });
        }
    }

    /// Replays a driver schedule through the mesh, firing the plan's
    /// reshapings at their event indexes.  Call once; then
    /// [`MeshPipeline::finish`].
    pub fn run_schedule(&mut self, schedule: &DriverSchedule<R, S>, plan: &MeshPlan) {
        let cancel = self.options.cancel.clone().unwrap_or_default();
        let mut steps = plan.steps.iter().peekable();
        for (idx, event) in schedule.events().iter().enumerate() {
            while let Some(step) = steps.next_if(|s| s.after_events <= idx) {
                self.reshape(step.shards, step.width, idx);
            }
            if cancel.is_cancelled() || self.pace(event.at, &cancel) {
                self.cancelled = true;
                break;
            }
            let route = self.router.route(&event.event);
            for shard in route.targets(self.chains.len()) {
                self.chains[shard].inject_routed(event);
            }
        }
        if !self.cancelled {
            // Trailing steps (at or past the schedule end) still run,
            // exactly like a chain-level ScalePlan's.
            let trailing: Vec<_> = steps.copied().collect();
            for step in trailing {
                self.reshape(step.shards, step.width, schedule.events().len());
            }
        }
    }

    /// Drains every chain and returns the merged outcome.
    pub fn finish(mut self) -> MeshOutcome<R, S> {
        let mut outcomes = std::mem::take(&mut self.retired);
        let mut widths = Vec::with_capacity(self.chains.len());
        for chain in self.chains.drain(..) {
            widths.push(chain.nodes());
            outcomes.push(chain.finish());
        }
        let shards = widths.len();
        let mut results = Vec::new();
        let mut streams = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            results.extend(outcome.results);
            streams.push(outcome.output);
        }
        MeshOutcome {
            results,
            output: merge_punctuated_streams(streams),
            reshard_log: self.reshard_log,
            shards,
            widths,
            cancelled: self.cancelled,
        }
    }
}

impl<R, S, P, H> MeshPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + CheckpointPayload + 'static,
    S: Clone + Send + Sync + CheckpointPayload + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    /// Realigns the per-shard checkpointers after a reshape: every live
    /// shard must write the *same* global checkpoint sequence number, or
    /// [`load_latest_mesh`] would refuse the set as torn.  Split-created
    /// shards join the sequence via [`ChainCheckpointer::starting_at`];
    /// merged-away shards simply stop writing (their stale higher-index
    /// blobs are ignored because the anchor's `shards` field shrinks).
    fn sync_checkpointers(
        &self,
        checkpointers: &mut Vec<ChainCheckpointer<R, S>>,
        full_interval: u64,
    ) {
        let seq = checkpointers.first().map_or(0, |c| c.next_seq());
        while checkpointers.len() < self.chains.len() {
            let shard = checkpointers.len();
            checkpointers.push(ChainCheckpointer::starting_at(shard, full_interval, seq));
        }
        checkpointers.truncate(self.chains.len());
    }

    /// [`MeshPipeline::run_schedule`] with durability: every consumed
    /// `cfg.every_events`-th event the driver takes one *coordinated*
    /// checkpoint — each chain fences and captures under the same global
    /// sequence number, epoch (`reshard_log` length) and consumed-event
    /// count, so the per-shard blobs form the atomic unit
    /// [`load_latest_mesh`] demands.  The replay log is trimmed only when
    /// *every* shard's blob landed; one failed write degrades
    /// recoverability (recovery falls back one sequence), never the run.
    pub fn run_schedule_checkpointed(
        &mut self,
        schedule: &DriverSchedule<R, S>,
        plan: &MeshPlan,
        cfg: &CheckpointConfig,
    ) -> (bool, ReplayLog<R, S>) {
        let mut checkpointers: Vec<ChainCheckpointer<R, S>> = (0..self.chains.len())
            .map(|shard| ChainCheckpointer::new(shard, cfg.full_interval))
            .collect();
        let mut log: ReplayLog<R, S> = ReplayLog::new(cfg.replay_capacity);
        let cancel = self.options.cancel.clone().unwrap_or_default();
        let mut steps = plan.steps.iter().peekable();
        for (idx, event) in schedule.events().iter().enumerate() {
            while let Some(step) = steps.next_if(|s| s.after_events <= idx) {
                self.reshape(step.shards, step.width, idx);
                self.sync_checkpointers(&mut checkpointers, cfg.full_interval);
            }
            if cancel.is_cancelled() || self.pace(event.at, &cancel) {
                self.cancelled = true;
                break;
            }
            log.record(event.clone());
            let route = self.router.route(&event.event);
            for shard in route.targets(self.chains.len()) {
                self.chains[shard].inject_routed(event);
            }
            let consumed = idx + 1;
            if consumed.is_multiple_of(cfg.every_events) {
                // The driver is single-threaded, so no event lands between
                // the per-chain captures: each chain fences inside
                // `capture_checkpoint` and every shard observes the same
                // consumed-event prefix — a coordinated cut by
                // construction.
                let epoch = self.reshard_log.len() as u64;
                let shards = self.chains.len() as u32;
                let mut all_landed = true;
                for (shard, chain) in self.chains.iter_mut().enumerate() {
                    let ckpt = chain.capture_checkpoint(epoch, shards, consumed as u64);
                    if checkpointers[shard]
                        .append(cfg.store.as_ref(), ckpt)
                        .is_err()
                    {
                        all_landed = false;
                    }
                }
                if all_landed {
                    log.trim_to(consumed);
                }
            }
        }
        if !self.cancelled {
            let trailing: Vec<_> = steps.copied().collect();
            for step in trailing {
                self.reshape(step.shards, step.width, schedule.events().len());
            }
        }
        (self.cancelled, log)
    }

    /// Replays raw driver events through the router (the recovery suffix)
    /// until exhausted or cancelled.
    pub(crate) fn replay_events(&mut self, events: &[DriverEvent<R, S>]) {
        let cancel = self.options.cancel.clone().unwrap_or_default();
        for event in events {
            if cancel.is_cancelled() || self.pace(event.at, &cancel) {
                self.cancelled = true;
                break;
            }
            let route = self.router.route(&event.event);
            for shard in route.targets(self.chains.len()) {
                self.chains[shard].inject_routed(event);
            }
        }
    }
}

/// Rebuilds a whole mesh from the latest decodable *coordinated*
/// checkpoint sequence in `store`, replays the suffix of `log` past it,
/// and returns the outcome of the recovered portion of the run.
///
/// The checkpointed topology wins: the mesh restarts at the checkpoint's
/// shard count and per-chain widths regardless of `cold_shards` /
/// `cold_width`, which only apply when the store holds no usable
/// checkpoint at all (cold start: replay the whole log).  Any reshapings
/// the crashed run performed after the checkpoint are *not* re-applied —
/// mesh topology steers performance, never the result set, so replaying
/// at the checkpoint topology reproduces the exact suffix results.
///
/// The router is reseeded from the checkpointed window rows themselves:
/// both routing hashes are pure functions of data the blobs carry
/// (join keys under co-partitioning, sequence numbers under
/// fragment-replicate), so no separate routing-table snapshot exists.
#[allow(clippy::too_many_arguments)]
pub fn recover_mesh_pipeline<R, S, P, H>(
    store: &dyn CheckpointStore,
    cold_shards: usize,
    cold_width: usize,
    factory: NodeFactory<R, S>,
    predicate: P,
    policy: H,
    mode: RouteMode,
    options: &PipelineOptions,
    log: &ReplayLog<R, S>,
) -> Result<MeshOutcome<R, S>, CheckpointError>
where
    R: Clone + Send + Sync + CheckpointPayload + 'static,
    S: Clone + Send + Sync + CheckpointPayload + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    let loaded = match load_latest_mesh(store) {
        Ok(found) => Some(found),
        Err(CheckpointError::NotFound) => None,
        Err(other) => return Err(other),
    };
    let (shards, width, replay_from) = match &loaded {
        Some((_, ckpts)) => (
            ckpts.len(),
            ckpts[0].width(),
            ckpts[0].events_consumed as usize,
        ),
        None => (cold_shards, cold_width, 0),
    };
    let suffix = log.suffix(replay_from)?;
    let mut mesh = MeshPipeline::new(
        shards,
        width.max(1),
        factory,
        predicate,
        policy,
        mode,
        options.clone(),
    );
    if let Some((_, ckpts)) = loaded {
        for (shard, ckpt) in ckpts.into_iter().enumerate() {
            for tuple in ckpt.segments.iter().flat_map(|seg| seg.wr.iter()) {
                mesh.router.reseed_r(tuple.seq, &tuple.payload);
            }
            for tuple in ckpt.segments.iter().flat_map(|seg| seg.ws.iter()) {
                mesh.router.reseed_s(tuple.seq, &tuple.payload);
            }
            if mesh.chains[shard].nodes() != ckpt.width() {
                mesh.chains[shard].scale_to(ckpt.width());
            }
            mesh.chains[shard].restore_checkpoint(ckpt);
        }
    }
    mesh.replay_events(&suffix);
    Ok(mesh.finish())
}

/// Replays `schedule` through a mesh of `shards` chains of `width` nodes,
/// reshaping at the plan's event indexes, and returns the merged outcome.
/// The convenience wrapper the conformance suite and `bench_shard` use.
#[allow(clippy::too_many_arguments)]
pub fn run_mesh_pipeline<R, S, P, H>(
    shards: usize,
    width: usize,
    factory: NodeFactory<R, S>,
    predicate: P,
    policy: H,
    mode: RouteMode,
    schedule: &DriverSchedule<R, S>,
    plan: &MeshPlan,
    options: &PipelineOptions,
) -> MeshOutcome<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    let mut mesh = MeshPipeline::new(
        shards,
        width,
        factory,
        predicate,
        policy,
        mode,
        options.clone(),
    );
    mesh.run_schedule(schedule, plan);
    mesh.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::{llhj_factory, llhj_indexed_factory};
    use crate::options::Pacing;
    use llhj_baselines::run_kang;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::{EquiPredicate, FnPredicate};
    use llhj_core::punctuation::verify_punctuated_stream;
    use llhj_core::time::TimeDelta;
    use llhj_core::window::WindowSpec;

    type KeyFn = fn(&u32) -> u64;

    fn equi() -> EquiPredicate<KeyFn, KeyFn> {
        fn key(v: &u32) -> u64 {
            *v as u64
        }
        EquiPredicate::new(key as fn(&u32) -> u64, key as fn(&u32) -> u64)
    }

    fn band() -> FnPredicate<fn(&u32, &u32) -> bool> {
        fn near(r: &u32, s: &u32) -> bool {
            r.abs_diff(*s) <= 1
        }
        FnPredicate(near as fn(&u32, &u32) -> bool)
    }

    fn schedule(tuples: u64, window_ms: u64) -> DriverSchedule<u32, u32> {
        let r: Vec<_> = (0..tuples)
            .map(|i| (Timestamp::from_millis(i), (i % 13) as u32))
            .collect();
        let s: Vec<_> = (0..tuples)
            .map(|i| (Timestamp::from_millis(i), (i % 17) as u32))
            .collect();
        DriverSchedule::build(
            r,
            s,
            WindowSpec::Time(TimeDelta::from_millis(window_ms)),
            WindowSpec::Time(TimeDelta::from_millis(window_ms)),
        )
    }

    fn opts() -> PipelineOptions {
        // Real-time pacing, like every conformance test in the repo:
        // unpaced replays let expiry messages overtake tuples that are
        // still travelling (see [`Pacing::Unpaced`]), so exact window
        // semantics require the paced driver.
        PipelineOptions {
            batch_size: 4,
            punctuate: true,
            pacing: Pacing::RealTime { speedup: 1.0 },
            ..Default::default()
        }
    }

    #[test]
    fn co_partitioned_mesh_matches_the_oracle() {
        let sched = schedule(300, 150);
        let oracle = run_kang(equi(), &sched);
        let outcome = run_mesh_pipeline(
            2,
            2,
            llhj_indexed_factory(equi()),
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            &sched,
            &MeshPlan::none(),
            &opts(),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.shards, 2);
        verify_punctuated_stream(&outcome.output, |t| t.result.ts())
            .expect("merged stream must stay valid");
    }

    #[test]
    fn fragment_replicate_mesh_matches_the_oracle_without_duplicates() {
        let sched = schedule(300, 150);
        let oracle = run_kang(band(), &sched);
        let outcome = run_mesh_pipeline(
            4,
            2,
            llhj_factory(band()),
            band(),
            RoundRobin,
            RouteMode::FragmentReplicate,
            &sched,
            &MeshPlan::none(),
            &opts(),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
    }

    #[test]
    fn mid_run_split_and_merge_preserve_the_result_set() {
        let sched = schedule(400, 150);
        let oracle = run_kang(equi(), &sched);
        let events = sched.events().len();
        let plan = MeshPlan::from_steps(&[(events / 3, 4, 2), (2 * events / 3, 2, 2)]);
        let outcome = run_mesh_pipeline(
            2,
            2,
            llhj_indexed_factory(equi()),
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            &sched,
            &plan,
            &opts(),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.shards, 2);
        assert_eq!(outcome.reshard_log.len(), 2);
        assert!(
            outcome.reshard_log[0].moved_tuples > 0,
            "a loaded split must move window state into the child shards"
        );
    }

    #[test]
    fn checkpointed_mesh_run_is_transparent_and_coordinated() {
        use llhj_core::checkpoint::{load_latest_mesh, MemoryStore};
        use llhj_sync::sync::Arc;

        let sched = schedule(300, 150);
        let oracle = run_kang(equi(), &sched);
        let events = sched.events().len();
        let plan = MeshPlan::from_steps(&[(events / 2, 4, 2)]);
        let store = Arc::new(MemoryStore::new());
        let cfg = CheckpointConfig::new(Arc::clone(&store) as _, 100);
        let mut mesh = MeshPipeline::new(
            2,
            2,
            llhj_indexed_factory(equi()),
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            opts(),
        );
        let (cancelled, log) = mesh.run_schedule_checkpointed(&sched, &plan, &cfg);
        assert!(!cancelled);
        let outcome = mesh.finish();
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.reshard_log.len(), 1);
        // The newest checkpoint sequence must decode as one coordinated
        // four-shard unit taken after the split.
        let (seq, ckpts) = load_latest_mesh::<u32, u32>(store.as_ref()).unwrap();
        assert_eq!(seq as usize + 1, events / 100);
        assert_eq!(ckpts.len(), 4);
        for ckpt in &ckpts {
            assert_eq!(ckpt.epoch, 1, "captured after the reshape");
            assert_eq!(ckpt.shards, 4);
            assert_eq!(ckpt.width(), 2);
        }
        assert_eq!(log.oldest(), (events / 100) * 100);
    }

    #[test]
    fn recovered_mesh_reproduces_the_suffix_of_an_interrupted_run() {
        use crate::channel::CancelToken;
        use llhj_core::checkpoint::{splice_recovered_stream, MemoryStore};
        use llhj_sync::sync::Arc;

        let sched = schedule(300, 150);
        let oracle = run_kang(equi(), &sched);
        let events = sched.events().len();
        let store = Arc::new(MemoryStore::new());
        let cfg = CheckpointConfig::new(Arc::clone(&store) as _, 50);

        // Run to completion once, recording the full (untrimmed) log, to
        // get a crashed prefix: cancel roughly mid-run via a second token
        // armed from a timer would be timing-dependent, so instead crash
        // deterministically by replaying only a prefix of the schedule.
        let cancel = CancelToken::new();
        let mut crashed_opts = opts();
        crashed_opts.cancel = Some(cancel.clone());
        let mut mesh = MeshPipeline::new(
            2,
            2,
            llhj_indexed_factory(equi()),
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            crashed_opts,
        );
        let prefix = DriverSchedule::truncated(&sched, 2 * events / 3);
        let (_, log) = mesh.run_schedule_checkpointed(&prefix, &MeshPlan::none(), &cfg);
        let crashed = mesh.finish();
        assert!(!crashed.output.is_empty());

        let recovered = recover_mesh_pipeline(
            store.as_ref(),
            2,
            2,
            llhj_indexed_factory(equi()),
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            &opts(),
            &{
                let mut full = log;
                for event in &sched.events()[2 * events / 3..] {
                    full.record(event.clone());
                }
                full
            },
        )
        .expect("recovery must succeed");
        assert!(!recovered.cancelled);
        let spliced = splice_recovered_stream(crashed.output, recovered.output, |t| t.result.key());
        let mut keys: Vec<_> = spliced
            .iter()
            .filter_map(|item| match item {
                OutputItem::Result(t) => Some(t.result.key()),
                OutputItem::Punctuation(_) => None,
            })
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, oracle.result_keys());
        verify_punctuated_stream(&spliced, |t| t.result.ts())
            .expect("spliced stream must stay valid");
    }
}
