//! Frame channels: the runtime's point-to-point FIFO transport.
//!
//! Both join algorithms restrict communication to FIFO links between
//! neighbouring cores, and the batched transport moves whole
//! [`llhj_core::message::MessageBatch`] frames over them, so the channel
//! does not need to be clever — it needs to be correct, dependency-free
//! (this environment cannot fetch crossbeam from a registry) and cheap *per
//! frame*: with `batch_size` tuples per frame, one lock acquisition is
//! amortised over the whole run of messages, which is exactly the
//! granularity trade-off the paper's Section 2 analyses.
//!
//! The implementation is a `Mutex<VecDeque>` plus two condition variables
//! (consumer wake-up and, for bounded channels, producer backpressure).
//! Senders are cloneable (multiple producers), receivers are unique.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Why a receive attempt returned no frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty but senders still exist.
    Empty,
    /// The queue is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned when sending into a channel whose receiver is gone.
/// Carries the rejected frame back to the caller.
#[derive(Debug)]
pub struct SendError<T>(pub T);

struct State<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The producing half of a frame channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a frame channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel: `send` blocks while `capacity` frames are
/// queued, which is how the driver experiences backpressure from the
/// pipeline.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity.max(1)))
}

/// Creates an unbounded channel: `send` never blocks.  Used for the links
/// *between* workers, where mutual blocking of two neighbours (R traffic
/// going right, acknowledgements going left) could deadlock.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues one frame, blocking while a bounded channel is full.
    /// Returns the frame if the receiver has been dropped.
    pub fn send(&self, frame: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError(frame));
            }
            match state.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self.shared.not_full.wait(state).expect("channel poisoned");
                }
                _ => break,
            }
        }
        state.queue.push_back(frame);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake a receiver blocked in recv_timeout so it observes the
            // disconnect promptly.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next frame without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        match state.queue.pop_front() {
            Some(frame) => {
                drop(state);
                self.shared.not_full.notify_one();
                Ok(frame)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeues the next frame, waiting up to `timeout` for one to arrive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(frame) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(frame);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TryRecvError::Empty);
            }
            let (guard, _timeout_result) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
        }
    }

    /// True if no frame is currently queued.
    pub fn is_empty(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .is_empty()
    }

    /// Number of queued frames.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel poisoned");
        state.receiver_alive = false;
        state.queue.clear();
        drop(state);
        // Unblock producers stuck on a full bounded channel.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // The third send must block until the consumer drains a slot.
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            tx.send(3).unwrap();
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.try_recv(), Ok(1));
        let blocked_for = handle.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(10),
            "send returned after {blocked_for:?}, should have blocked"
        );
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty), "tx2 still alive");
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(TryRecvError::Disconnected)
        );
    }

    #[test]
    fn dropping_the_receiver_fails_sends_and_unblocks_producers() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let handle = std::thread::spawn(move || tx.send(2).is_err());
        std::thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert!(handle.join().unwrap(), "send must fail after receiver drop");
    }

    #[test]
    fn recv_timeout_delivers_cross_thread() {
        let (tx, rx) = unbounded();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(42));
    }
}
