/root/repo/target/release/deps/llhj_sim-322c97f78634c122.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

/root/repo/target/release/deps/libllhj_sim-322c97f78634c122.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

/root/repo/target/release/deps/libllhj_sim-322c97f78634c122.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/model.rs:
crates/sim/src/report.rs:
crates/sim/src/throughput.rs:
