/root/repo/target/debug/examples/quickstart-6fd8c87836eb3532.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6fd8c87836eb3532: examples/quickstart.rs

examples/quickstart.rs:
