//! Shared execution machinery of the threaded runtimes.
//!
//! The fixed pipeline ([`crate::run_pipeline`]) and the elastic pipeline
//! ([`crate::elastic::ElasticPipeline`]) are the *same* data plane — worker
//! threads moving [`MessageBatch`] frames between neighbours, a driver
//! assembling entry frames, a collector vacuuming result queues — and for
//! two PRs they carried two copies of it (the fixed path on scoped threads
//! and borrowed state, the elastic path on owned `'static` state), a
//! divergence ROADMAP called out explicitly.  This module is the single
//! implementation both deploy:
//!
//! * [`Worker`] — the worker thread: event-driven two-input poll loop,
//!   frame handling (batch dispatch, high-water-mark observation, output
//!   forwarding, result emission, in-flight accounting), plus the elastic
//!   command mailbox (rewire / absorb / retire).  A fixed pipeline simply
//!   never sends a command — it *is* an elastic pipeline that never
//!   resizes.
//! * [`EntryBatcher`] / [`EntryState`] — the driver's entry-frame assembly
//!   for one direction / both directions: `batch_size` arrivals per frame,
//!   expiries riding along, `flush_interval` aging.
//! * [`spawn_collector`] — the collector thread: reads the high-water
//!   marks *before* vacuuming (Section 6.1.3 step 1), drains the result
//!   queues, emits punctuations, and feeds the metrics bus's latency EWMA.
//! * The shared primitives: [`StreamClock`], [`InFlight`] (quiescence
//!   accounting), [`send_frame`], [`WORKER_PARK`].
//!
//! Everything here is `pub(crate)`: the public API stays in
//! [`crate::pipeline`] and [`crate::elastic`].

use crate::channel::{unbounded, Receiver, Sender, WaitSet};
use crate::metrics::MetricsBus;
use crate::options::Pacing;
use llhj_core::message::{
    Direction, Handoff, LeftToRight, MessageBatch, NodeOutput, RightToLeft, WindowSegment,
};
use llhj_core::node::PipelineNode;
use llhj_core::punctuation::{HighWaterMarks, OutputItem, Punctuation};
use llhj_core::rebalance::shed_ranges;
use llhj_core::result::{ResultTuple, TimedResult};
use llhj_core::stats::{LatencySeries, LatencySummary, NodeCounters};
use llhj_core::time::Timestamp;
use llhj_sync::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use llhj_sync::sync::Arc;
use llhj_sync::thread::{self, JoinHandle};
use llhj_sync::time::{Duration, Instant};

/// Safety-net bound on how long a worker parks between wake-ups.  Workers
/// are woken eagerly — by frame arrivals through their [`WaitSet`] and by
/// the driver at shutdown — so this timeout only bounds the damage of a
/// missed notification; it is not a polling interval.
pub(crate) const WORKER_PARK: Duration = Duration::from_millis(10);

/// How many drained frame buffers a worker keeps per direction for reuse.
/// Small on purpose: each direction circulates one buffer per in-flight
/// frame, so a handful covers the steady state and a burst just allocates.
const ARENA_POOL: usize = 4;

// ---------------------------------------------------------------------------
// Core pinning
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", not(llhj_model)))]
mod affinity {
    // `sched_setaffinity` declared directly — std already links libc, and
    // this build environment cannot fetch the `libc` crate.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    /// `cpu_set_t` is 1024 bits (128 bytes) on glibc; a `[u64; 16]` has
    /// the same size and layout for the mask-passing purpose here.
    const CPU_SET_WORDS: usize = 16;

    pub(super) fn pin_current_thread(core: usize) -> bool {
        if core >= CPU_SET_WORDS * 64 {
            return false;
        }
        let mut set = [0u64; CPU_SET_WORDS];
        set[core / 64] |= 1 << (core % 64);
        // SAFETY: `set` is a valid, initialised 128-byte CPU mask living
        // for the duration of the call, and pid 0 means the calling
        // thread; the syscall reads the mask and has no other memory
        // effects.
        unsafe { sched_setaffinity(0, std::mem::size_of_val(&set), set.as_ptr()) == 0 }
    }

    pub(super) fn unpin_current_thread() {
        let set = [u64::MAX; CPU_SET_WORDS];
        // SAFETY: as in `pin_current_thread`; an all-ones mask restores
        // the thread's eligibility for every online core.
        unsafe {
            sched_setaffinity(0, std::mem::size_of_val(&set), set.as_ptr());
        }
    }

    pub(super) const SUPPORTED: bool = true;
}

#[cfg(not(all(target_os = "linux", not(llhj_model))))]
mod affinity {
    pub(super) fn pin_current_thread(_core: usize) -> bool {
        false
    }

    pub(super) fn unpin_current_thread() {}

    pub(super) const SUPPORTED: bool = false;
}

/// True when [`CoreMap`] pinning would actually take effect for a
/// pipeline needing `threads` threads: a Linux host (non-model build)
/// with at least that many cores.  Bench binaries record this next to
/// their numbers so a snapshot states whether placement was controlled.
pub(crate) fn pinning_available(threads: usize) -> bool {
    affinity::SUPPORTED
        && llhj_sync::thread::available_parallelism()
            .map(|n| n.get() >= threads)
            .unwrap_or(false)
}

/// Assigns the pipeline's threads (workers, collector, driver) to cores.
///
/// Built only when `pin_cores` is requested *and*
/// [`pinning_available`] holds — otherwise every caller sees `None` and
/// the run proceeds exactly as before (the documented cores < threads
/// no-op).  Slots wrap modulo the core count so an elastic pipeline that
/// grows beyond the planned width degrades to sharing cores instead of
/// failing.
pub(crate) struct CoreMap {
    cores: usize,
    offset: usize,
}

impl CoreMap {
    pub(crate) fn new(enabled: bool, threads: usize, offset: usize) -> Option<CoreMap> {
        if !enabled || !pinning_available(threads) {
            return None;
        }
        let cores = llhj_sync::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Some(CoreMap { cores, offset })
    }

    /// The core backing pin slot `slot`.
    pub(crate) fn core(&self, slot: usize) -> usize {
        (self.offset + slot) % self.cores
    }

    /// Pins the calling thread to slot `slot`'s core (the driver pins
    /// itself; workers and the collector are handed their core through
    /// their spawn arguments).
    pub(crate) fn pin_current(&self, slot: usize) {
        affinity::pin_current_thread(self.core(slot));
    }
}

/// Pins the calling thread to `core`; worker/collector threads call this
/// first thing on their own stack.
pub(crate) fn pin_thread(core: usize) {
    affinity::pin_current_thread(core);
}

/// Restores the calling thread's affinity to all cores (the driver runs
/// on the caller's thread, which must not stay pinned after the run).
pub(crate) fn unpin_thread() {
    affinity::unpin_current_thread();
}

/// The shared stream clock: maps wall-clock time to stream time.
pub(crate) struct StreamClock {
    pacing: Pacing,
    start: Instant,
    /// Stream time of the most recently injected driver event (drives the
    /// clock in unpaced mode).
    injected_us: AtomicU64,
}

impl StreamClock {
    pub(crate) fn new(pacing: Pacing) -> Self {
        StreamClock {
            pacing,
            start: Instant::now(),
            injected_us: AtomicU64::new(0),
        }
    }

    pub(crate) fn note_injection(&self, at: Timestamp) {
        self.injected_us
            .fetch_max(at.as_micros(), Ordering::Relaxed);
    }

    pub(crate) fn now(&self) -> Timestamp {
        match self.pacing {
            Pacing::Unpaced => Timestamp::from_micros(self.injected_us.load(Ordering::Relaxed)),
            Pacing::RealTime { speedup } => {
                // `speedup` is validated finite by `PipelineOptions::
                // validate`; a negative value clamps to a frozen clock
                // instead of travelling through the float→int cast.
                let elapsed = self.start.elapsed().as_secs_f64() * speedup.max(0.0);
                Timestamp::from_micros(saturating_micros(elapsed))
            }
        }
    }
}

/// Converts `secs` of stream time to whole microseconds with explicit
/// saturation: NaN and negative values map to 0, values beyond the `u64`
/// range to `u64::MAX`.  (The bare `as` cast has the same limits but hides
/// the policy; the clock's behaviour under degenerate `speedup` values
/// should be a stated contract, not a cast artefact.)
pub(crate) fn saturating_micros(secs: f64) -> u64 {
    let micros = secs * 1e6;
    if micros.is_nan() || micros <= 0.0 {
        0
    } else if micros >= u64::MAX as f64 {
        u64::MAX
    } else {
        micros as u64
    }
}

/// In-flight frame accounting plus the wait set the driver parks on while
/// draining: the counter going to zero is the pipeline's quiescence signal.
pub(crate) struct InFlight {
    count: AtomicI64,
    quiesce: WaitSet,
}

impl InFlight {
    pub(crate) fn new() -> Self {
        InFlight {
            count: AtomicI64::new(0),
            quiesce: WaitSet::new(),
        }
    }

    pub(crate) fn add(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Decrements the counter, waking the driver when it reaches zero.
    pub(crate) fn finish(&self) {
        if self.count.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.quiesce.notify();
        }
    }

    /// Parks until no frame is anywhere in the pipeline.
    pub(crate) fn wait_for_quiescence(&self) {
        loop {
            let seen = self.quiesce.epoch();
            if self.count.load(Ordering::SeqCst) <= 0 {
                return;
            }
            self.quiesce.wait(seen, WORKER_PARK);
        }
    }
}

/// Sends one frame, keeping the global in-flight frame count consistent
/// (the driver's quiescence detection counts frames, not messages).
pub(crate) fn send_frame<R, S>(
    tx: &Sender<MessageBatch<R, S>>,
    frame: MessageBatch<R, S>,
    in_flight: &InFlight,
) {
    if frame.is_empty() {
        return;
    }
    in_flight.add();
    if tx.send(frame).is_err() {
        in_flight.finish();
    }
}

// ---------------------------------------------------------------------------
// Driver-side entry batching
// ---------------------------------------------------------------------------

/// One direction's entry-frame assembly state in the driver: the pending
/// messages, how many of them are arrivals (expiries ride along without
/// counting towards `batch_size`), when the frame started filling (for
/// the `flush_interval` timer), and the entry channel the frames leave on.
pub(crate) struct EntryBatcher<M, R, S> {
    pending: Vec<M>,
    pub(crate) arrivals: usize,
    started_at: Option<Timestamp>,
    tx: Sender<MessageBatch<R, S>>,
    wrap: fn(Vec<M>) -> MessageBatch<R, S>,
    /// Drained frame buffers flowing back from the direction's sink node
    /// (rightmost for left-to-right frames, node 0 for the other way).
    /// When wired, flushed frames are assembled in recycled buffers and
    /// steady-state injection allocates no fresh `Vec`s.
    recycle: Option<Receiver<Vec<M>>>,
    /// Buffers this batcher had to allocate because the recycle ring was
    /// empty (or absent).  The honesty counter behind the arena tests.
    pub(crate) fresh_allocs: u64,
}

impl<M, R, S> EntryBatcher<M, R, S> {
    pub(crate) fn new(
        tx: Sender<MessageBatch<R, S>>,
        wrap: fn(Vec<M>) -> MessageBatch<R, S>,
    ) -> Self {
        EntryBatcher {
            pending: Vec::new(),
            arrivals: 0,
            started_at: None,
            tx,
            wrap,
            recycle: None,
            fresh_allocs: 0,
        }
    }

    /// Wires the buffer flow-back ring from this direction's sink worker.
    pub(crate) fn set_recycle(&mut self, rx: Receiver<Vec<M>>) {
        self.recycle = Some(rx);
    }

    /// The buffer the next frame is assembled in: recycled when the sink
    /// has flowed one back, freshly allocated (and counted) otherwise.
    fn next_buffer(&mut self) -> Vec<M> {
        if let Some(rx) = &self.recycle {
            if let Ok(mut buf) = rx.try_recv() {
                buf.clear();
                return buf;
            }
        }
        self.fresh_allocs += 1;
        Vec::new()
    }

    /// Queues a control message; it rides the next flush.
    pub(crate) fn push(&mut self, msg: M, at: Timestamp) {
        if self.pending.is_empty() {
            self.started_at = Some(at);
        }
        self.pending.push(msg);
    }

    /// Queues a tuple arrival, counting it towards the batch size.
    pub(crate) fn push_arrival(&mut self, msg: M, at: Timestamp) {
        self.push(msg, at);
        self.arrivals += 1;
    }

    /// Sends the pending frame (if any) and resets the assembly state.
    pub(crate) fn flush(&mut self, in_flight: &InFlight, frames_injected: &mut u64) {
        if self.pending.is_empty() {
            return;
        }
        let replacement = self.next_buffer();
        send_frame(
            &self.tx,
            (self.wrap)(std::mem::replace(&mut self.pending, replacement)),
            in_flight,
        );
        *frames_injected += 1;
        self.arrivals = 0;
        self.started_at = None;
    }

    /// True if any pending message satisfies `pred`.  The drivers use
    /// this to detect an expiry about to overtake its own still-buffered
    /// arrival: the two travel in opposite directions on different entry
    /// channels, so FIFO order cannot save them — only stream-time
    /// separation can, and a partial frame parked past the window length
    /// destroys that separation.
    pub(crate) fn holds_pending(&self, pred: impl Fn(&M) -> bool) -> bool {
        self.pending.iter().any(pred)
    }

    /// True if the frame has been filling for at least `interval` of
    /// stream time.
    pub(crate) fn is_older_than(
        &self,
        now: Timestamp,
        interval: llhj_core::time::TimeDelta,
    ) -> bool {
        self.started_at
            .is_some_and(|s| now.saturating_since(s) >= interval)
    }

    /// Flushes if the frame has been filling for at least `interval` of
    /// stream time.
    pub(crate) fn flush_if_older(
        &mut self,
        now: Timestamp,
        interval: llhj_core::time::TimeDelta,
        in_flight: &InFlight,
        frames_injected: &mut u64,
    ) {
        if self.is_older_than(now, interval) {
            self.flush(in_flight, frames_injected);
        }
    }

    /// Replaces the entry channel (the elastic pipeline's right entry
    /// moves whenever the rightmost node changes).
    pub(crate) fn set_sender(&mut self, tx: Sender<MessageBatch<R, S>>) {
        self.tx = tx;
    }

    /// The current entry channel (for the metrics occupancy probe).
    pub(crate) fn sender(&self) -> &Sender<MessageBatch<R, S>> {
        &self.tx
    }
}

/// The driver's entry-frame assembly state for both directions.  The fixed
/// runtime shares it (behind a mutex) with the wall-clock flush-timer
/// thread; the elastic driver owns it and plays the timer role itself
/// inside its sliced pacing wait.
pub(crate) struct EntryState<R, S> {
    pub(crate) left: EntryBatcher<LeftToRight<R>, R, S>,
    pub(crate) right: EntryBatcher<RightToLeft<S>, R, S>,
    pub(crate) frames_injected: u64,
}

impl<R, S> EntryState<R, S> {
    pub(crate) fn new(
        left_tx: Sender<MessageBatch<R, S>>,
        right_tx: Sender<MessageBatch<R, S>>,
    ) -> Self {
        EntryState {
            left: EntryBatcher::new(left_tx, MessageBatch::Left),
            right: EntryBatcher::new(right_tx, MessageBatch::Right),
            frames_injected: 0,
        }
    }

    /// Flushes both directions' partial frames that have been filling for
    /// at least `interval` of stream time.
    pub(crate) fn flush_older_than(
        &mut self,
        now: Timestamp,
        interval: llhj_core::time::TimeDelta,
        in_flight: &InFlight,
    ) {
        self.left
            .flush_if_older(now, interval, in_flight, &mut self.frames_injected);
        self.right
            .flush_if_older(now, interval, in_flight, &mut self.frames_injected);
    }

    /// Flushes both directions unconditionally.
    pub(crate) fn flush_both(&mut self, in_flight: &InFlight) {
        self.left.flush(in_flight, &mut self.frames_injected);
        self.right.flush(in_flight, &mut self.frames_injected);
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

type Frame<R, S> = MessageBatch<R, S>;

/// Control messages the pipeline sends to a worker through its mailbox.
/// Commands only travel while the pipeline is fenced; a fixed pipeline
/// never sends one.
pub(crate) enum WorkerCommand<R, S> {
    /// Renumber the node and (optionally) replace channel endpoints.
    Rewire {
        id: usize,
        nodes: usize,
        left_rx: Option<Receiver<Frame<R, S>>>,
        right_rx: Option<Receiver<Frame<R, S>>>,
        /// Outer `None` keeps the current sender, `Some(x)` replaces it
        /// with `x` (which may itself be `None`: the node became an end).
        to_left: Option<Option<Sender<Frame<R, S>>>>,
        to_right: Option<Option<Sender<Frame<R, S>>>>,
        done: Sender<ScaleConfirm>,
    },
    /// Absorb one migrated segment arriving from the `from` side, install
    /// it (matching where the node type requires it), ack it, confirm.
    Absorb {
        from: Direction,
        stall: Option<Duration>,
        done: Sender<ScaleConfirm>,
    },
    /// Shed the plan-assigned window slice towards `direction`: export the
    /// range, hand it over as a [`Handoff::Segment`], await the ack,
    /// confirm.  One half of a redistribution edge transfer (the
    /// neighbour executes the matching [`WorkerCommand::Absorb`]).
    Shed {
        direction: Direction,
        r: usize,
        s: usize,
        done: Sender<ScaleConfirm>,
    },
    /// Report the node's stored-window census `(|WR_k|, |WS_k|)` — the
    /// input the control plane feeds the redistribution planner.
    Census { done: Sender<CensusReport> },
    /// Export the node's entire window back to the control plane, leaving
    /// the node empty.  The cross-*shard* half of a mesh split/merge:
    /// unlike [`WorkerCommand::Shed`] no neighbour is involved — the mesh
    /// layer partitions the rows by hash and re-installs them (into this
    /// chain and/or a sibling chain) with [`WorkerCommand::Install`].
    ExportAll { done: Sender<WindowSegment<R, S>> },
    /// Install a segment *silently* — merged without matching.  Valid only
    /// for cross-shard movement, where the rows re-enter a chain at the
    /// pipeline position they held in the source chain and every pair they
    /// could meet was already examined there (matching again would
    /// duplicate results on a fragment-replicate merge).
    Install {
        segment: WindowSegment<R, S>,
        done: Sender<ScaleConfirm>,
    },
    /// Export local state, hand it to the left neighbour, await the ack,
    /// exit the thread.
    Retire {
        absorb_first: bool,
        stall: Option<Duration>,
    },
}

/// A worker's confirmation that it executed a scale command.
pub(crate) struct ScaleConfirm {
    pub(crate) migrated_tuples: usize,
}

/// A worker's reply to [`WorkerCommand::Census`].
pub(crate) struct CensusReport {
    pub(crate) node: usize,
    pub(crate) wr: usize,
    pub(crate) ws: usize,
}

/// Shared context every worker holds.
pub(crate) struct WorkerShared<R, S> {
    pub(crate) hwm: Arc<HighWaterMarks>,
    pub(crate) clock: Arc<StreamClock>,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) in_flight: Arc<InFlight>,
    pub(crate) results: Sender<TimedResult<R, S>>,
    /// This worker's busy-nanoseconds slot on the metrics bus; bumped
    /// (relaxed) after every frame.  `None` skips the instrumentation
    /// entirely (the fixed pipeline, whose bus nobody samples): no
    /// `Instant::now` pair on the frame hot path.
    pub(crate) busy_ns: Option<Arc<AtomicU64>>,
}

/// What a worker reports when its thread exits.
pub(crate) struct WorkerExit {
    pub(crate) counters: NodeCounters,
    pub(crate) idle_wakeups: u64,
    /// Frame buffers this worker allocated because its arena pool was
    /// empty.  Zero bar warm-up when the arena circulation is working.
    pub(crate) batch_allocs: u64,
}

/// Per-worker placement and arena wiring, decided by the pipeline that
/// spawns the worker.  Bundled so [`Worker::spawn`] keeps a readable
/// signature as transports grow knobs.
pub(crate) struct WorkerWiring<R, S> {
    /// The wait set the worker parks on.  Created by the *caller* so ring
    /// channels feeding this worker can bind it at construction (the
    /// lock-free notify path cannot look a waiter up later).
    pub(crate) waitset: WaitSet,
    /// Core to pin the worker thread to, when a [`CoreMap`] is active.
    pub(crate) pin_core: Option<usize>,
    /// Where the worker flows drained left-to-right frame buffers once it
    /// is the rightmost node (that direction's sink).  `None` keeps them
    /// in the local pool.
    pub(crate) recycle_ltr: Option<Sender<Vec<LeftToRight<R>>>>,
    /// Same for right-to-left buffers once the worker is node 0.
    pub(crate) recycle_rtl: Option<Sender<Vec<RightToLeft<S>>>>,
    /// Surplus LTR buffers the rightmost node returns to node 0 once the
    /// driver's flow-back ring is full.  Node 0 *originates* LTR frames
    /// (an acknowledgement frame per right-to-left frame it handles)
    /// without receiving a matching LTR buffer, so without this leg it
    /// allocates once per handled frame while the driver's ring overflows
    /// with the very buffers it needs.
    pub(crate) xfer_ltr: Option<Sender<Vec<LeftToRight<R>>>>,
    /// The receiving half at node 0: refills `take_ltr` after the pool.
    pub(crate) refill_ltr: Option<Receiver<Vec<LeftToRight<R>>>>,
    /// Mirror legs for RTL buffers: node 0 (the RTL sink) returns surplus
    /// to the rightmost node, the RTL originator.
    pub(crate) xfer_rtl: Option<Sender<Vec<RightToLeft<S>>>>,
    /// The receiving half at the rightmost node.
    pub(crate) refill_rtl: Option<Receiver<Vec<RightToLeft<S>>>>,
}

impl<R, S> WorkerWiring<R, S> {
    pub(crate) fn new(waitset: WaitSet) -> Self {
        WorkerWiring {
            waitset,
            pin_core: None,
            recycle_ltr: None,
            recycle_rtl: None,
            xfer_ltr: None,
            refill_ltr: None,
            xfer_rtl: None,
            refill_rtl: None,
        }
    }
}

/// The control plane's handle on one spawned worker.  `cmd_tx` is `None`
/// for workers spawned without a mailbox (the fixed pipeline).
pub(crate) struct WorkerHandle<R, S> {
    pub(crate) handle: JoinHandle<WorkerExit>,
    pub(crate) cmd_tx: Option<Sender<WorkerCommand<R, S>>>,
    pub(crate) waitset: WaitSet,
}

impl<R, S> WorkerHandle<R, S> {
    /// The command mailbox; panics on a worker spawned without one (only
    /// elastic pipelines send commands, and they always spawn with it).
    pub(crate) fn commands(&self) -> &Sender<WorkerCommand<R, S>> {
        self.cmd_tx
            .as_ref()
            .expect("worker was spawned without a command mailbox")
    }
}

/// One worker thread: a pipeline node plus its channel endpoints.
pub(crate) struct Worker<R, S> {
    id: usize,
    nodes: usize,
    node: Box<dyn PipelineNode<R, S>>,
    left_rx: Receiver<Frame<R, S>>,
    right_rx: Receiver<Frame<R, S>>,
    to_left: Option<Sender<Frame<R, S>>>,
    to_right: Option<Sender<Frame<R, S>>>,
    /// Elastic command mailbox; `None` on a fixed pipeline, which also
    /// skips the per-iteration mailbox poll (one channel lock per frame).
    cmd_rx: Option<Receiver<WorkerCommand<R, S>>>,
    waitset: WaitSet,
    shared: WorkerShared<R, S>,
    /// A handoff segment that arrived before this worker processed its
    /// `Absorb`/`Retire` command (neighbour ran ahead); consumed by the
    /// command when it executes.
    pending_segment: Option<Handoff<R, S>>,
    idle_wakeups: u64,
    /// Core to pin to on the worker's own stack, first thing in `run`.
    pin_core: Option<usize>,
    /// Arena pools of drained frame buffers, one per direction.  An inner
    /// node is buffer-balanced (each incoming frame is replaced by at most
    /// one outgoing frame the same direction), so a handful of buffers
    /// circulates indefinitely.
    pool_ltr: Vec<Vec<LeftToRight<R>>>,
    pool_rtl: Vec<Vec<RightToLeft<S>>>,
    /// Flow-back rings towards the driver's entry batchers (see
    /// [`WorkerWiring`]).
    recycle_ltr: Option<Sender<Vec<LeftToRight<R>>>>,
    recycle_rtl: Option<Sender<Vec<RightToLeft<S>>>>,
    /// Surplus legs between the two chain ends (see [`WorkerWiring`]).
    xfer_ltr: Option<Sender<Vec<LeftToRight<R>>>>,
    refill_ltr: Option<Receiver<Vec<LeftToRight<R>>>>,
    xfer_rtl: Option<Sender<Vec<RightToLeft<S>>>>,
    refill_rtl: Option<Receiver<Vec<RightToLeft<S>>>>,
    batch_allocs: u64,
}

impl<R, S> Worker<R, S>
where
    R: Clone + Send + 'static,
    S: Clone + Send + 'static,
{
    /// Spawns a worker thread for position `id` of `nodes`, registering
    /// the wiring's wait set with both inputs — and, when `with_mailbox`
    /// is set (elastic pipelines), with a command mailbox.  A mailbox-less
    /// worker never pays the per-iteration command poll.  The wait set
    /// arrives pre-made inside `wiring` because ring inputs already bound
    /// it at channel construction (`set_waiter` then only asserts the
    /// binding matches).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        id: usize,
        nodes: usize,
        node: Box<dyn PipelineNode<R, S>>,
        left_rx: Receiver<Frame<R, S>>,
        right_rx: Receiver<Frame<R, S>>,
        to_left: Option<Sender<Frame<R, S>>>,
        to_right: Option<Sender<Frame<R, S>>>,
        shared: WorkerShared<R, S>,
        with_mailbox: bool,
        wiring: WorkerWiring<R, S>,
    ) -> WorkerHandle<R, S> {
        let waitset = wiring.waitset;
        left_rx.set_waiter(&waitset);
        right_rx.set_waiter(&waitset);
        let (cmd_tx, cmd_rx) = if with_mailbox {
            // Command mailboxes are MPSC (control plane + neighbours) and
            // stay on the mutex transport, which binds waiters late.
            let (tx, rx) = unbounded();
            rx.set_waiter(&waitset);
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        let worker = Worker {
            id,
            nodes,
            node,
            left_rx,
            right_rx,
            to_left,
            to_right,
            cmd_rx,
            waitset: waitset.clone(),
            shared,
            pending_segment: None,
            idle_wakeups: 0,
            pin_core: wiring.pin_core,
            pool_ltr: Vec::new(),
            pool_rtl: Vec::new(),
            recycle_ltr: wiring.recycle_ltr,
            recycle_rtl: wiring.recycle_rtl,
            xfer_ltr: wiring.xfer_ltr,
            refill_ltr: wiring.refill_ltr,
            xfer_rtl: wiring.xfer_rtl,
            refill_rtl: wiring.refill_rtl,
            batch_allocs: 0,
        };
        WorkerHandle {
            handle: thread::spawn(move || worker.run()),
            cmd_tx,
            waitset,
        }
    }

    fn run(mut self) -> WorkerExit {
        if let Some(core) = self.pin_core {
            pin_thread(core);
        }
        let mut out: NodeOutput<R, S, ResultTuple<R, S>> = NodeOutput::new();
        // Alternate which input is polled first so neither direction can
        // starve the other under sustained load.
        let mut poll_left_first = true;
        loop {
            // Epoch snapshot before polling (commands included): anything
            // landing between the polls and the park bumps the epoch first,
            // so the wait returns immediately — no lost wake-ups.
            let seen = self.waitset.epoch();
            if let Some(cmd_rx) = &self.cmd_rx {
                if let Ok(cmd) = cmd_rx.try_recv() {
                    if self.execute(cmd) {
                        break;
                    }
                    continue;
                }
            }
            let frame = if poll_left_first {
                self.left_rx
                    .try_recv()
                    .or_else(|_| self.right_rx.try_recv())
            } else {
                self.right_rx
                    .try_recv()
                    .or_else(|_| self.left_rx.try_recv())
            };
            poll_left_first = !poll_left_first;
            match frame {
                Ok(frame) => self.handle_frame(frame, &mut out),
                Err(_) => {
                    if self.shared.stop.load(Ordering::SeqCst)
                        && self.left_rx.is_empty()
                        && self.right_rx.is_empty()
                        && self.cmd_rx.as_ref().is_none_or(|rx| rx.is_empty())
                    {
                        break;
                    }
                    // Block until either input (or shutdown) notifies the
                    // wait set.  A timed-out park is the only "idle
                    // wake-up" left: it means the safety-net timer fired
                    // with nothing to do.
                    if !self.waitset.wait(seen, WORKER_PARK) {
                        self.idle_wakeups += 1;
                    }
                }
            }
        }
        WorkerExit {
            counters: self.node.node_counters(),
            idle_wakeups: self.idle_wakeups,
            batch_allocs: self.batch_allocs,
        }
    }

    /// Returns a drained left-to-right frame buffer to circulation: flowed
    /// back to the driver when this worker is that direction's sink (the
    /// rightmost node), pooled locally otherwise.  The flow-back ring is
    /// best-effort (`try_send`): a full ring just drops the buffer.
    fn stash_ltr(&mut self, buf: Vec<LeftToRight<R>>) {
        let mut buf = buf;
        // Sink priority: the driver's flow-back ring drains exactly one
        // buffer per entry flush; everything beyond that is surplus.
        if self.id + 1 == self.nodes {
            if let Some(tx) = &self.recycle_ltr {
                match tx.try_send(buf) {
                    Ok(()) => return,
                    Err(back) => buf = back,
                }
            }
        }
        if self.pool_ltr.len() < ARENA_POOL {
            self.pool_ltr.push(buf);
            return;
        }
        // Pool full: this node holds more LTR buffers than it will ever
        // spend — pass the surplus one hop towards node 0, the direction's
        // originator (acknowledgement frames start there without a
        // matching incoming buffer).  Best-effort: a full leg just costs
        // the originator one allocation.
        if let Some(tx) = &self.xfer_ltr {
            let _ = tx.try_send(buf);
        }
    }

    /// Same for right-to-left buffers; node 0 is that direction's sink,
    /// the rightmost node its originator (expedition-end markers), and
    /// surplus flows rightward hop by hop.
    fn stash_rtl(&mut self, buf: Vec<RightToLeft<S>>) {
        let mut buf = buf;
        if self.id == 0 {
            if let Some(tx) = &self.recycle_rtl {
                match tx.try_send(buf) {
                    Ok(()) => return,
                    Err(back) => buf = back,
                }
            }
        }
        if self.pool_rtl.len() < ARENA_POOL {
            self.pool_rtl.push(buf);
            return;
        }
        if let Some(tx) = &self.xfer_rtl {
            let _ = tx.try_send(buf);
        }
    }

    /// Opportunistic surplus relay, once per handled frame: moves at most
    /// one buffer per direction from the incoming surplus leg into the
    /// local pool, or — pool full — onward to the next hop.  Without this
    /// pump a middle node (whose own pool stays full because its flow is
    /// balanced) would stall the daisy chain: buffers terminating at a
    /// middle home would never reach the end node that keeps allocating.
    fn relay_surplus(&mut self) {
        if let Some(rx) = &self.refill_ltr {
            if let Ok(buf) = rx.try_recv() {
                if self.pool_ltr.len() < ARENA_POOL {
                    self.pool_ltr.push(buf);
                } else if let Some(tx) = &self.xfer_ltr {
                    let _ = tx.try_send(buf);
                }
            }
        }
        if let Some(rx) = &self.refill_rtl {
            if let Ok(buf) = rx.try_recv() {
                if self.pool_rtl.len() < ARENA_POOL {
                    self.pool_rtl.push(buf);
                } else if let Some(tx) = &self.xfer_rtl {
                    let _ = tx.try_send(buf);
                }
            }
        }
    }

    fn take_ltr(&mut self) -> Vec<LeftToRight<R>> {
        if let Some(buf) = self.pool_ltr.pop() {
            return buf;
        }
        if let Some(rx) = &self.refill_ltr {
            if let Ok(mut buf) = rx.try_recv() {
                buf.clear();
                return buf;
            }
        }
        self.batch_allocs += 1;
        Vec::new()
    }

    fn take_rtl(&mut self) -> Vec<RightToLeft<S>> {
        if let Some(buf) = self.pool_rtl.pop() {
            return buf;
        }
        if let Some(rx) = &self.refill_rtl {
            if let Ok(mut buf) = rx.try_recv() {
                buf.clear();
                return buf;
            }
        }
        self.batch_allocs += 1;
        Vec::new()
    }

    /// Processes one data frame: batch dispatch into the node, high-water
    /// mark observation at the pipeline ends, output forwarding (the
    /// complete output of one frame leaves as at most one frame per
    /// direction), result emission, in-flight accounting.  A handoff frame
    /// overtaking its command is stashed instead.
    fn handle_frame(&mut self, frame: Frame<R, S>, out: &mut NodeOutput<R, S, ResultTuple<R, S>>) {
        if let MessageBatch::Handoff(handoff) = frame {
            // The neighbour's migration ran ahead of this worker's own
            // command; park the segment for the command to consume.  Not
            // part of the in-flight accounting, so nothing to finish.
            assert!(
                self.pending_segment.is_none(),
                "node {}: second handoff segment before the first was absorbed",
                self.id
            );
            assert!(
                matches!(handoff, Handoff::Segment { .. }),
                "node {}: handoff ack arrived outside a retire wait",
                self.id
            );
            self.pending_segment = Some(handoff);
            return;
        }
        let busy_start = self.shared.busy_ns.is_some().then(Instant::now);
        let is_leftmost = self.id == 0;
        let is_rightmost = self.id + 1 == self.nodes;
        self.node.observe_time(self.shared.clock.now());
        out.clear();
        // High-water marks advance only *after* this frame's results are
        // in the result queue (see below): the collector reads the marks
        // before vacuuming, so a mark that advanced ahead of its results
        // would let a punctuation overtake them.  `observed` stashes the
        // traversal-end timestamp until the results are safely enqueued.
        let mut observed: Option<(bool, Timestamp)> = None;
        match frame {
            MessageBatch::Left(mut msgs) => {
                // The rightmost node is where R arrivals complete their
                // pipeline traversal; the last arrival of the frame
                // carries the largest timestamp (FIFO order).
                if is_rightmost {
                    observed = msgs
                        .iter()
                        .rev()
                        .find_map(|m| match m {
                            LeftToRight::ArrivalR(r) => Some(r.ts()),
                            _ => None,
                        })
                        .map(|ts| (true, ts));
                }
                self.node.handle_left_batch(&mut msgs, out);
                // The batch contract is to drain; recycle the buffer.
                debug_assert!(msgs.is_empty(), "handle_left_batch must drain its input");
                msgs.clear();
                self.stash_ltr(msgs);
            }
            MessageBatch::Right(mut msgs) => {
                if is_leftmost {
                    observed = msgs
                        .iter()
                        .rev()
                        .find_map(|m| match m {
                            RightToLeft::ArrivalS(s) => Some(s.ts()),
                            _ => None,
                        })
                        .map(|ts| (false, ts));
                }
                self.node.handle_right_batch(&mut msgs, out);
                debug_assert!(msgs.is_empty(), "handle_right_batch must drain its input");
                msgs.clear();
                self.stash_rtl(msgs);
            }
            MessageBatch::Handoff(_) => unreachable!("stashed above"),
        }
        // Results are enqueued *before* the frame is forwarded: a
        // downstream node may otherwise process the forwarded tuples,
        // reach a pipeline end and advance the high-water mark while this
        // node's results for the very same tuples are still local — and a
        // punctuation would overtake them.  (The model suite encodes this
        // ordering; swapping the two blocks fails the checker.)
        if !out.results.is_empty() {
            let detected_at = self.shared.clock.now();
            for result in out.results.drain(..) {
                let _ = self
                    .shared
                    .results
                    .send(TimedResult::new(result, detected_at));
            }
        }
        // The complete output of the frame leaves as at most one frame
        // per direction: this is where per-message channel cost collapses
        // to per-frame cost.
        if !out.to_right.is_empty() {
            if self.to_right.is_some() {
                let replacement = self.take_ltr();
                let msgs = std::mem::replace(&mut out.to_right, replacement);
                let tx = self.to_right.as_ref().expect("checked above");
                send_frame(tx, MessageBatch::Left(msgs), &self.shared.in_flight);
            } else {
                out.to_right.clear();
            }
        }
        if !out.to_left.is_empty() {
            if self.to_left.is_some() {
                let replacement = self.take_rtl();
                let msgs = std::mem::replace(&mut out.to_left, replacement);
                let tx = self.to_left.as_ref().expect("checked above");
                send_frame(tx, MessageBatch::Right(msgs), &self.shared.in_flight);
            } else {
                out.to_left.clear();
            }
        }
        // Only now — with every result of this frame enqueued — may the
        // traversal-end mark advance.  Upstream nodes' results for the
        // same tuples were enqueued even earlier (FIFO chain), so when
        // the collector sees the new mark, every result it promises
        // already sits in a queue (Section 6.1.3 step 1 reads the marks
        // before vacuuming).
        match observed {
            Some((true, ts)) => self.shared.hwm.observe_r(ts),
            Some((false, ts)) => self.shared.hwm.observe_s(ts),
            None => {}
        }
        if let (Some(slot), Some(started)) = (&self.shared.busy_ns, busy_start) {
            slot.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        self.relay_surplus();
        self.shared.in_flight.finish();
    }

    /// Executes one scale command.  Returns `true` if the worker retires.
    fn execute(&mut self, cmd: WorkerCommand<R, S>) -> bool {
        match cmd {
            WorkerCommand::Rewire {
                id,
                nodes,
                left_rx,
                right_rx,
                to_left,
                to_right,
                done,
            } => {
                self.id = id;
                self.nodes = nodes;
                self.node
                    .set_position(id, nodes)
                    .expect("elastic workers are spawned with migration-capable nodes");
                if let Some(rx) = left_rx {
                    self.left_rx = rx;
                }
                if let Some(rx) = right_rx {
                    self.right_rx = rx;
                }
                if let Some(tx) = to_left {
                    self.to_left = tx;
                }
                if let Some(tx) = to_right {
                    self.to_right = tx;
                }
                let _ = done.send(ScaleConfirm { migrated_tuples: 0 });
                false
            }
            WorkerCommand::Absorb { from, stall, done } => {
                let migrated = self.absorb_segment(from, stall);
                let _ = done.send(ScaleConfirm {
                    migrated_tuples: migrated,
                });
                false
            }
            WorkerCommand::Shed {
                direction,
                r,
                s,
                done,
            } => {
                self.shed_segment(direction, r, s);
                // The absorbing side reports the moved tuples; a zero here
                // keeps the control plane's per-transfer sum single-counted.
                let _ = done.send(ScaleConfirm { migrated_tuples: 0 });
                false
            }
            WorkerCommand::Census { done } => {
                let (wr, ws) = self.node.window_census();
                let _ = done.send(CensusReport {
                    node: self.id,
                    wr,
                    ws,
                });
                false
            }
            WorkerCommand::ExportAll { done } => {
                let segment = self
                    .node
                    .export_segment()
                    .expect("elastic workers are spawned with migration-capable nodes");
                let _ = done.send(segment);
                false
            }
            WorkerCommand::Install { segment, done } => {
                let migrated = segment.len();
                self.node
                    .install_segment_silent(segment)
                    .expect("elastic workers are spawned with migration-capable nodes");
                let _ = done.send(ScaleConfirm {
                    migrated_tuples: migrated,
                });
                false
            }
            WorkerCommand::Retire {
                absorb_first,
                stall,
            } => {
                if absorb_first {
                    self.absorb_segment(Direction::Right, stall);
                }
                let segment = self
                    .node
                    .export_segment()
                    .expect("elastic workers are spawned with migration-capable nodes");
                let to_left = self
                    .to_left
                    .as_ref()
                    .expect("a retiring node always has a left neighbour");
                let frame = MessageBatch::Handoff(Handoff::Segment {
                    from: self.id,
                    segment,
                });
                assert!(
                    to_left.send(frame).is_ok(),
                    "node {}: segment handoff failed — left neighbour gone",
                    self.id
                );
                self.await_ack(Direction::Left);
                true
            }
        }
    }

    /// Receives one migrated segment from the `from` input (or takes the
    /// stashed one), installs it — emitting any results the installation
    /// produces (the original handshake join matches the still-unmet
    /// direction of a migrated segment) — and acknowledges back towards
    /// `from`.  Returns the number of migrated tuples.
    fn absorb_segment(&mut self, from: Direction, stall: Option<Duration>) -> usize {
        let handoff = match self.pending_segment.take() {
            Some(h) => h,
            None => self.recv_handoff(from),
        };
        let Handoff::Segment {
            from: sender,
            segment,
        } = handoff
        else {
            unreachable!("ack filtered by recv_handoff / stash assertion");
        };
        if let Some(stall) = stall {
            // Test instrumentation: widen the handoff window so teardown
            // tests can deterministically land a shutdown inside it.
            thread::sleep(stall);
        }
        let migrated = segment.len();
        let mut out: NodeOutput<R, S, ResultTuple<R, S>> = NodeOutput::new();
        self.node
            .import_segment(segment, from, &mut out)
            .expect("elastic workers are spawned with migration-capable nodes");
        debug_assert!(
            out.to_left.is_empty() && out.to_right.is_empty(),
            "segment installation must not emit pipeline messages"
        );
        if !out.results.is_empty() {
            let detected_at = self.shared.clock.now();
            for result in out.results.drain(..) {
                let _ = self
                    .shared
                    .results
                    .send(TimedResult::new(result, detected_at));
            }
        }
        let back = match from {
            Direction::Left => &self.to_left,
            Direction::Right => &self.to_right,
        };
        let back = back
            .as_ref()
            .expect("an absorbing node has the shedding neighbour on the segment side");
        let _ = back.send(MessageBatch::Handoff(Handoff::Ack { to: sender }));
        migrated
    }

    /// Exports the plan-assigned window slice and hands it towards
    /// `direction`, blocking until the receiving neighbour acknowledges
    /// the installation — the exactly-once-residence guarantee of a
    /// redistribution hop is the same segment-then-ack protocol a
    /// retirement uses.
    fn shed_segment(&mut self, direction: Direction, r: usize, s: usize) {
        let census = self.node.window_census();
        let (range_r, range_s) = shed_ranges(census, r, s, direction);
        let segment = self
            .node
            .export_segment_range(range_r, range_s)
            .expect("elastic workers are spawned with migration-capable nodes");
        let tx = match direction {
            Direction::Left => &self.to_left,
            Direction::Right => &self.to_right,
        };
        let tx = tx
            .as_ref()
            .expect("the plan only sheds across existing edges");
        let frame = MessageBatch::Handoff(Handoff::Segment {
            from: self.id,
            segment,
        });
        assert!(
            tx.send(frame).is_ok(),
            "node {}: redistribution handoff failed — neighbour gone",
            self.id
        );
        self.await_ack(direction);
    }

    /// Blocks until the neighbour on `side` acknowledges the segment this
    /// node handed over.
    fn await_ack(&mut self, side: Direction) {
        match self.recv_handoff(side) {
            Handoff::Ack { to } => {
                debug_assert_eq!(to, self.id, "ack routed to the wrong node");
            }
            Handoff::Segment { .. } => {
                unreachable!("a node awaiting an ack cannot be handed a segment")
            }
        }
    }

    /// Blocks (through the wait set) until a handoff frame arrives on the
    /// given input.  Only valid while fenced: any data frame here is a
    /// protocol violation.
    fn recv_handoff(&mut self, side: Direction) -> Handoff<R, S> {
        loop {
            let seen = self.waitset.epoch();
            let rx = match side {
                Direction::Left => &self.left_rx,
                Direction::Right => &self.right_rx,
            };
            match rx.try_recv() {
                Ok(MessageBatch::Handoff(handoff)) => return handoff,
                Ok(_) => unreachable!("node {}: data frame during a fenced migration", self.id),
                Err(_) => {
                    self.waitset.wait(seen, WORKER_PARK);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Collector side
// ---------------------------------------------------------------------------

/// Everything the collector thread assembled by the time it exits.
pub(crate) struct CollectorOutcome<R, S> {
    pub(crate) results: Vec<TimedResult<R, S>>,
    pub(crate) output: Vec<OutputItem<TimedResult<R, S>>>,
    pub(crate) latency: LatencySummary,
    pub(crate) series: LatencySeries,
    pub(crate) punctuation_count: u64,
}

/// Collector knobs (a subset of [`crate::options::PipelineOptions`]).
pub(crate) struct CollectorConfig {
    pub(crate) punctuate: bool,
    pub(crate) interval: Duration,
    pub(crate) latency_bucket: u64,
    /// Core to pin the collector thread to, when a [`CoreMap`] is active.
    pub(crate) pin_core: Option<usize>,
}

/// Spawns the collector thread over the given per-worker result queues.
///
/// Step 1 of the paper's Section 6.1.3 is preserved: the high-water marks
/// are read *before* the queues are vacuumed, so every punctuation `p`
/// emitted after a batch of results is a valid promise (no later result
/// can carry a smaller timestamp).  With a metrics bus attached (elastic
/// pipelines), every collected latency is also fed into the bus's EWMA
/// for the auto-scaler; `None` skips the per-result CAS.
pub(crate) fn spawn_collector<R, S>(
    receivers: Vec<Receiver<TimedResult<R, S>>>,
    stop: Arc<AtomicBool>,
    stop_signal: WaitSet,
    hwm: Arc<HighWaterMarks>,
    metrics: Option<Arc<MetricsBus>>,
    config: CollectorConfig,
) -> JoinHandle<CollectorOutcome<R, S>>
where
    R: Clone + Send + 'static,
    S: Clone + Send + 'static,
{
    thread::spawn(move || {
        if let Some(core) = config.pin_core {
            pin_thread(core);
        }
        let mut outcome = CollectorOutcome {
            results: Vec::new(),
            output: Vec::new(),
            latency: LatencySummary::new(),
            series: LatencySeries::new(config.latency_bucket),
            punctuation_count: 0,
        };
        loop {
            let seen = stop_signal.epoch();
            let stopping = stop.load(Ordering::SeqCst);
            // Step 1 (Section 6.1.3): read the high-water marks before
            // vacuuming the queues.
            let safe = hwm.safe_punctuation();
            let mut drained_any = false;
            for rx in &receivers {
                while let Ok(timed) = rx.try_recv() {
                    drained_any = true;
                    let latency = timed.latency();
                    outcome.latency.record(latency);
                    outcome.series.record(timed.detected_at, latency);
                    if let Some(bus) = &metrics {
                        bus.observe_latency(latency);
                    }
                    if config.punctuate {
                        outcome.output.push(OutputItem::Result(timed.clone()));
                    }
                    outcome.results.push(timed);
                }
            }
            if config.punctuate && drained_any {
                outcome
                    .output
                    .push(OutputItem::Punctuation(Punctuation { ts: safe }));
                outcome.punctuation_count += 1;
            }
            if stopping && !drained_any {
                break;
            }
            // The vacuum period doubles as the park timeout; the driver's
            // shutdown notification cuts it short so the final drain
            // starts immediately.
            stop_signal.wait(seen, config.interval);
        }
        outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_micros_states_the_degenerate_cases() {
        assert_eq!(saturating_micros(f64::NAN), 0);
        assert_eq!(saturating_micros(-1.0), 0);
        assert_eq!(saturating_micros(0.0), 0);
        assert_eq!(saturating_micros(f64::INFINITY), u64::MAX);
        assert_eq!(saturating_micros(1e300), u64::MAX);
        assert_eq!(saturating_micros(2.5), 2_500_000);
    }

    #[test]
    fn frozen_clock_for_non_positive_speedup() {
        let clock = StreamClock::new(Pacing::RealTime { speedup: -3.0 });
        thread::sleep(Duration::from_millis(2));
        assert_eq!(clock.now(), Timestamp::ZERO);
    }
}
