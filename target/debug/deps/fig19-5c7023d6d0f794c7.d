/root/repo/target/debug/deps/fig19-5c7023d6d0f794c7.d: crates/bench/src/bin/fig19.rs Cargo.toml

/root/repo/target/debug/deps/libfig19-5c7023d6d0f794c7.rmeta: crates/bench/src/bin/fig19.rs Cargo.toml

crates/bench/src/bin/fig19.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
