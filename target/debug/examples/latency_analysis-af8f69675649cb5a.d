/root/repo/target/debug/examples/latency_analysis-af8f69675649cb5a.d: examples/latency_analysis.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_analysis-af8f69675649cb5a.rmeta: examples/latency_analysis.rs Cargo.toml

examples/latency_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
