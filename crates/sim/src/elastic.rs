//! Discrete-event simulation of elastic node-chain scaling.
//!
//! Mirrors the threaded runtime's reconfiguration protocol
//! (`llhj-runtime::elastic`) in virtual time so the three substrates —
//! analytic model, simulator, threaded runtime — can be compared at every
//! scale step:
//!
//! 1. **Fence** — the injection of schedule events pauses and the event
//!    heap drains completely, which is exactly the runtime's "no frame in
//!    flight anywhere" condition;
//! 2. **Handoff** (shrink) — retiring nodes merge their window segments
//!    leftwards along the neighbour chain; every hop charges the receiving
//!    node one frame reception ([`crate::cost::CostModel::per_frame_ns`]) plus one
//!    per-message cost per migrated tuple, and pays the core-to-core hop
//!    latency, and every ack charges one frame back — the same
//!    serialisation the runtime's segment/ack protocol exhibits;
//! 3. **Rewire** — nodes renumber and the chain width changes; surviving
//!    nodes resume at the virtual instant the fence ends.
//!
//! Because injections later in the schedule carry their own (stream)
//! timestamps, a long fence simply shows up as a busy-time bubble: the
//! nodes' `busy_until` horizon moves past the fence end and the following
//! frames queue behind it, exactly like the runtime's driver catching up
//! after a reconfiguration pause.

use crate::config::{Algorithm, SimConfig};
use crate::cost::SimNanos;
use crate::report::SimReport;
use llhj_core::driver::{DriverSchedule, Injector, StreamEvent};
use llhj_core::homing::HomePolicy;
use llhj_core::message::{
    Direction, LeftToRight, MessageBatch, NodeOutput, RightToLeft, WindowSegment,
};
use llhj_core::metrics::{
    AutoscalePolicy, AutoscaleReport, LatencyEwma, MetricsSample, PolicyState, ResizeDecision,
    DEFAULT_LATENCY_ALPHA,
};
use llhj_core::node::PipelineNode;
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::{HighWaterMarks, OutputItem, Punctuation};
use llhj_core::rebalance::{shed_ranges, MigrationConstraint, RedistributionPlan};
use llhj_core::result::TimedResult;
use llhj_core::stats::{LatencySeries, LatencySummary};
use llhj_core::time::{TimeDelta, Timestamp};
use llhj_sync::sync::Arc;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

fn ts_to_ns(ts: Timestamp) -> SimNanos {
    ts.as_micros().saturating_mul(1_000)
}

fn ns_to_ts(ns: SimNanos) -> Timestamp {
    Timestamp::from_micros(ns / 1_000)
}

/// One reconfiguration in the elastic simulation's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResizeEvent {
    /// Virtual time at which the fence completed the drain.
    pub at_ns: SimNanos,
    /// Chain width before the resize.
    pub from_nodes: usize,
    /// Chain width after.
    pub to_nodes: usize,
    /// Window tuples the retirement handoff moved into the surviving
    /// boundary (0 for growth).
    pub migrated_tuples: usize,
    /// Window-tuple hops the chain-wide redistribution performed after
    /// the width change (a tuple crossing two edges counts twice) —
    /// mirrors the runtime's `ResizeEvent::rebalanced_tuples`.
    pub rebalanced_tuples: usize,
    /// Per-node stored-window census `(|WR_k|, |WS_k|)` immediately after
    /// the redistribution, indexed by node id.
    pub residence_after: Vec<(usize, usize)>,
    /// Virtual duration of the handoff (fence end − drain end).
    pub fence_ns: SimNanos,
}

/// Outcome of one elastic simulation: the usual [`SimReport`] plus the
/// resize log.  `report.nodes` is the *final* width and `report.counters`
/// covers the nodes alive at the end; `report.busy_ns` is indexed by node
/// id over the widest chain the run reached, so work done by nodes that
/// later retired is still accounted.
#[derive(Debug)]
pub struct ElasticSimReport<R, S> {
    /// The standard simulation report.
    pub report: SimReport<R, S>,
    /// Every reconfiguration, in order.
    pub resize_log: Vec<SimResizeEvent>,
}

impl<R, S> ElasticSimReport<R, S> {
    /// Sorted result keys, for oracle comparison.
    pub fn result_keys(&self) -> Vec<(llhj_core::tuple::SeqNo, llhj_core::tuple::SeqNo)> {
        self.report.result_keys()
    }

    /// Output rate over virtual time: the number of results detected in
    /// each `bucket_ns` of virtual time, as results/second.  The
    /// `bench_elastic` trace uses this to show throughput rising after a
    /// mid-burst grow.
    pub fn throughput_trace(&self, bucket_ns: SimNanos) -> Vec<(SimNanos, f64)> {
        assert!(bucket_ns > 0, "bucket must be positive");
        let mut buckets: Vec<u64> = Vec::new();
        for timed in &self.report.results {
            let idx = (ts_to_ns(timed.detected_at) / bucket_ns) as usize;
            if buckets.len() <= idx {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] += 1;
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(i, count)| {
                (
                    i as SimNanos * bucket_ns,
                    count as f64 * 1e9 / bucket_ns as f64,
                )
            })
            .collect()
    }
}

/// One checkpoint in a simulated durable run's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimCheckpointEvent {
    /// Schedule events consumed when the checkpoint was taken.
    pub after_events: usize,
    /// Virtual time at which the fence completed the drain.
    pub at_ns: SimNanos,
    /// Window tuples serialised into the blob(s).
    pub tuples: usize,
    /// Virtual time charged for serialising and writing them.
    pub cost_ns: SimNanos,
}

/// The simulator's in-memory stand-in for a persisted chain checkpoint:
/// the per-node window segments, the punctuation high-water marks and the
/// consumed-event cut, captured inside a fence — the same payload the
/// runtime's `ChainCheckpoint` carries, minus the byte encoding (the
/// codec is exercised by `llhj-core`; the simulator mirrors the *cost*
/// and the recovery semantics).
#[derive(Debug, Clone)]
pub struct SimCheckpoint<R, S> {
    /// Schedule events consumed at the capture cut.
    pub after_events: usize,
    /// Chain width at the capture cut.
    pub width: usize,
    /// Per-node window segments, indexed by node position.
    pub segments: Vec<WindowSegment<R, S>>,
    /// R-side punctuation high-water mark at the cut.
    pub hwm_r: Timestamp,
    /// S-side punctuation high-water mark at the cut.
    pub hwm_s: Timestamp,
}

impl<R, S> SimCheckpoint<R, S> {
    /// Total window tuples the checkpoint carries.
    pub fn total_tuples(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }
}

struct HeapEntry<R, S> {
    at: SimNanos,
    seq: u64,
    node: usize,
    frame: MessageBatch<R, S>,
}

impl<R, S> PartialEq for HeapEntry<R, S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<R, S> Eq for HeapEntry<R, S> {}
impl<R, S> PartialOrd for HeapEntry<R, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<R, S> Ord for HeapEntry<R, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One simulated elastic chain.  Crate-visible so the shard-mesh mirror
/// ([`crate::mesh`]) can drive a fleet of these through the same fenced
/// split/merge protocol the threaded mesh uses.
pub(crate) struct ElasticSim<R, S> {
    pub(crate) config: SimConfig,
    pub(crate) width: usize,
    pub(crate) nodes: Vec<Box<dyn PipelineNode<R, S>>>,
    heap: BinaryHeap<HeapEntry<R, S>>,
    event_seq: u64,
    pub(crate) busy_until: Vec<SimNanos>,
    pub(crate) busy_ns: Vec<SimNanos>,
    hwm: Arc<HighWaterMarks>,
    pub(crate) results: Vec<TimedResult<R, S>>,
    pending: Vec<TimedResult<R, S>>,
    pub(crate) output: Vec<OutputItem<TimedResult<R, S>>>,
    latency: LatencySummary,
    series: LatencySeries,
    punctuation_count: u64,
    next_collect_ns: SimNanos,
    collect_interval_ns: SimNanos,
    pub(crate) last_injection_ns: SimNanos,
    pub(crate) makespan_ns: SimNanos,
    pub(crate) frames_delivered: u64,
    pub(crate) messages_delivered: u64,
    resize_log: Vec<SimResizeEvent>,
}

impl<R, S> ElasticSim<R, S>
where
    R: Clone + Send,
    S: Clone + Send,
{
    /// A fresh chain of `width` nodes built by `factory`, with nothing in
    /// flight; the driver (single-chain or mesh) owns injection.
    pub(crate) fn new(
        config: &SimConfig,
        width: usize,
        factory: &dyn Fn(usize, usize) -> Box<dyn PipelineNode<R, S>>,
    ) -> Self {
        let collect_interval_ns = (config.collect_interval.as_micros().max(1)) * 1_000;
        ElasticSim {
            width,
            nodes: (0..width).map(|k| factory(k, width)).collect(),
            heap: BinaryHeap::new(),
            event_seq: 0,
            busy_until: vec![0; width],
            busy_ns: vec![0; width],
            hwm: HighWaterMarks::new(),
            results: Vec::new(),
            pending: Vec::new(),
            output: Vec::new(),
            latency: LatencySummary::new(),
            series: LatencySeries::new(config.latency_bucket),
            punctuation_count: 0,
            collect_interval_ns,
            next_collect_ns: collect_interval_ns,
            last_injection_ns: 0,
            makespan_ns: 0,
            frames_delivered: 0,
            messages_delivered: 0,
            resize_log: Vec::new(),
            config: config.clone(),
        }
    }

    pub(crate) fn push_frame(&mut self, at: SimNanos, node: usize, frame: MessageBatch<R, S>) {
        self.heap.push(HeapEntry {
            at,
            seq: self.event_seq,
            node,
            frame,
        });
        self.event_seq += 1;
    }

    /// Drains the event heap up to `until` (virtual time), or completely
    /// when `until` is `None` — the latter is the simulated fence.  A
    /// bounded drain is what the auto-scale mirror uses to materialise
    /// the results (and therefore the latency signal) that exist at a
    /// sample boundary; it pops every frame *scheduled* at or before the
    /// boundary, exactly once, in deterministic heap order.
    pub(crate) fn drain(&mut self, until: Option<SimNanos>) {
        let hop = self.config.cost.hop_ns_for(self.config.pin_cores);
        let mut out: NodeOutput<R, S, llhj_core::result::ResultTuple<R, S>> = NodeOutput::new();
        while let Some(entry) = {
            match (self.heap.peek(), until) {
                (Some(head), Some(bound)) if head.at > bound => None,
                _ => self.heap.pop(),
            }
        } {
            while self.config.punctuate && self.next_collect_ns <= entry.at {
                self.collect();
                self.next_collect_ns += self.collect_interval_ns;
            }

            let node_idx = entry.node;
            let rightmost = self.width - 1;
            let frame_len = entry.frame.len() as u64;
            self.frames_delivered += 1;
            self.messages_delivered += frame_len;
            let start = entry.at.max(self.busy_until[node_idx]);
            self.nodes[node_idx].observe_time(ns_to_ts(entry.at));

            out.clear();
            match entry.frame {
                MessageBatch::Left(mut msgs) => {
                    let observed = if node_idx == rightmost {
                        msgs.iter().rev().find_map(|m| match m {
                            LeftToRight::ArrivalR(r) => Some(r.ts()),
                            _ => None,
                        })
                    } else {
                        None
                    };
                    self.nodes[node_idx].handle_left_batch(&mut msgs, &mut out);
                    if let Some(ts) = observed {
                        self.hwm.observe_r(ts);
                    }
                }
                MessageBatch::Right(mut msgs) => {
                    let observed = if node_idx == 0 {
                        msgs.iter().rev().find_map(|m| match m {
                            RightToLeft::ArrivalS(s) => Some(s.ts()),
                            _ => None,
                        })
                    } else {
                        None
                    };
                    self.nodes[node_idx].handle_right_batch(&mut msgs, &mut out);
                    if let Some(ts) = observed {
                        self.hwm.observe_s(ts);
                    }
                }
                MessageBatch::Handoff(_) => {
                    unreachable!("elastic sim migrates state outside the heap")
                }
            }

            let punctuated_node = self.config.punctuate && (node_idx == 0 || node_idx == rightmost);
            let service = self.config.cost.frame_service_ns(
                frame_len,
                out.comparisons,
                out.results.len() as u64,
                punctuated_node,
            );
            let finish = start + service;
            self.busy_until[node_idx] = finish;
            self.busy_ns[node_idx] += service;
            self.makespan_ns = self.makespan_ns.max(finish);

            if !out.to_right.is_empty() {
                if node_idx + 1 < self.width {
                    let frame = MessageBatch::Left(std::mem::take(&mut out.to_right));
                    self.push_frame(finish + hop, node_idx + 1, frame);
                } else {
                    out.to_right.clear();
                }
            }
            if !out.to_left.is_empty() {
                if node_idx > 0 {
                    let frame = MessageBatch::Right(std::mem::take(&mut out.to_left));
                    self.push_frame(finish + hop, node_idx - 1, frame);
                } else {
                    out.to_left.clear();
                }
            }

            let detected_at = ns_to_ts(finish);
            for result in out.results.drain(..) {
                let timed = TimedResult::new(result, detected_at);
                self.latency.record(timed.latency());
                self.series.record(detected_at, timed.latency());
                if self.config.punctuate {
                    self.pending.push(timed.clone());
                }
                self.results.push(timed);
            }
        }
    }

    pub(crate) fn collect(&mut self) {
        let safe = self.hwm.safe_punctuation();
        for timed in self.pending.drain(..) {
            self.output.push(OutputItem::Result(timed));
        }
        self.output
            .push(OutputItem::Punctuation(Punctuation { ts: safe }));
        self.punctuation_count += 1;
    }

    /// Records the results a migrated-segment installation produced (the
    /// original handshake join matches the still-unmet direction of every
    /// segment), detected at the given virtual instant.
    fn record_migration_results(
        &mut self,
        out: &mut NodeOutput<R, S, llhj_core::result::ResultTuple<R, S>>,
        at_ns: SimNanos,
    ) {
        debug_assert!(
            out.to_left.is_empty() && out.to_right.is_empty(),
            "segment installation must not emit pipeline messages"
        );
        let detected_at = ns_to_ts(at_ns);
        for result in out.results.drain(..) {
            let timed = TimedResult::new(result, detected_at);
            self.latency.record(timed.latency());
            self.series.record(detected_at, timed.latency());
            if self.config.punctuate {
                self.pending.push(timed.clone());
            }
            self.results.push(timed);
        }
    }

    /// Runs the fenced reconfiguration to `target` nodes, charging the
    /// handoff the same way the runtime's protocol serialises it.
    pub(crate) fn resize(
        &mut self,
        target: usize,
        factory: &dyn Fn(usize, usize) -> Box<dyn PipelineNode<R, S>>,
    ) {
        assert!(target > 0, "pipeline needs at least one node");
        let current = self.width;
        if target == current {
            return;
        }
        self.drain(None);
        let fence_start = self.makespan_ns;
        let mut fence_end = fence_start;
        let hop = self.config.cost.hop_ns_for(self.config.pin_cores);
        let mut migrated_total = 0usize;
        let mut out: NodeOutput<R, S, llhj_core::result::ResultTuple<R, S>> = NodeOutput::new();

        if target < current {
            // The neighbour chain resolves serially, rightmost first: each
            // retiree merges what its right neighbour handed down, then
            // hands the union left; each hop is one segment frame (frame
            // reception + one message per tuple, plus any install-time
            // matching work, charged to the receiver) followed by an ack
            // frame back.
            let mut carried: WindowSegment<R, S> = WindowSegment::empty();
            for k in (target - 1..current).rev() {
                if k + 1 < current {
                    // Node k receives the segment handed down by node k+1.
                    let tuples = carried.len();
                    migrated_total = migrated_total.max(tuples);
                    out.clear();
                    self.nodes[k]
                        .import_segment(std::mem::take(&mut carried), Direction::Right, &mut out)
                        .expect("elastic simulation requires migration-capable nodes");
                    let service = self.config.cost.frame_service_ns(
                        tuples as u64,
                        out.comparisons,
                        out.results.len() as u64,
                        false,
                    );
                    fence_end += hop + service;
                    self.busy_ns[k] += service;
                    self.frames_delivered += 1;
                    self.messages_delivered += tuples as u64;
                    self.record_migration_results(&mut out, fence_end);
                    // Ack back to node k+1: one frame, one hop.
                    let ack = self.config.cost.frame_service_ns(1, 0, 0, false);
                    fence_end += hop + ack;
                    if k + 1 < self.busy_ns.len() {
                        self.busy_ns[k + 1] += ack;
                    }
                }
                if k >= target {
                    carried = self.nodes[k]
                        .export_segment()
                        .expect("elastic simulation requires migration-capable nodes");
                }
            }
            self.nodes.truncate(target);
        } else {
            // Mirror of the runtime's both-end grow: stream-monotone node
            // types (HSJ) put the ceiling half of the extension at the
            // left end so leftward-only S state can reach fresh nodes;
            // free node types grow at the right end only.  `busy_until` /
            // `busy_ns` are positional, so left insertions splice in
            // zeroed slots at the front (per-position busy attribution is
            // approximate across a both-end grow, totals stay exact).
            let delta = target - current;
            let left_delta = if self.nodes[0].migration_constraint() == MigrationConstraint::free()
            {
                0
            } else {
                delta.div_ceil(2)
            };
            for k in 0..left_delta {
                self.nodes.insert(k, factory(k, target));
                self.busy_until.insert(k, fence_end);
                self.busy_ns.insert(k, 0);
            }
            for i in 0..(delta - left_delta) {
                let k = left_delta + current + i;
                self.nodes.push(factory(k, target));
                if self.busy_until.len() <= k {
                    self.busy_until.push(fence_end);
                    self.busy_ns.push(0);
                }
            }
        }

        for (k, node) in self.nodes.iter_mut().enumerate() {
            node.set_position(k, target)
                .expect("elastic simulation requires migration-capable nodes");
        }
        self.width = target;

        // Chain-wide redistribution: the same balanced plan the runtime
        // computes from its worker census, executed on the same node
        // state, so the two substrates land every tuple on the same node.
        // Each hop charges one segment frame (reception + per-tuple
        // message cost + install-time matching, to the receiver), one ack
        // frame (to the shedder) and two hop latencies — per_frame_ns /
        // per_message_ns × hop count, serialised like the runtime's
        // one-transfer-at-a-time control plane.
        let mut rebalanced = 0usize;
        if self.config.rebalance_on_resize && target > 1 {
            rebalanced = self.rebalance_fenced(&mut fence_end);
        }
        let residence_after: Vec<(usize, usize)> =
            self.nodes.iter().map(|n| n.window_census()).collect();

        for k in 0..target {
            self.busy_until[k] = self.busy_until[k].max(fence_end);
        }
        self.makespan_ns = self.makespan_ns.max(fence_end);
        self.resize_log.push(SimResizeEvent {
            at_ns: fence_start,
            from_nodes: current,
            to_nodes: target,
            migrated_tuples: migrated_total,
            rebalanced_tuples: rebalanced,
            residence_after,
            fence_ns: fence_end - fence_start,
        });
    }

    /// The chain-wide balanced redistribution, on an already-drained
    /// chain: the same census → [`RedistributionPlan`] → hop-charged
    /// segment/ack pass a resize ends with, callable on its own — the
    /// mesh runs it after a shard split or merge moved state across
    /// chains.  Advances `fence_end` by the charged virtual time and
    /// returns the window-tuple hops performed.
    pub(crate) fn rebalance_fenced(&mut self, fence_end: &mut SimNanos) -> usize {
        if self.width <= 1 {
            return 0;
        }
        let hop = self.config.cost.hop_ns_for(self.config.pin_cores);
        let mut out: NodeOutput<R, S, llhj_core::result::ResultTuple<R, S>> = NodeOutput::new();
        let mut rebalanced = 0usize;
        let census: Vec<(usize, usize)> = self.nodes.iter().map(|n| n.window_census()).collect();
        let plan = RedistributionPlan::balanced(&census, self.nodes[0].migration_constraint());
        for transfer in plan.transfers() {
            let direction = transfer.direction();
            let (range_r, range_s) = shed_ranges(
                self.nodes[transfer.from].window_census(),
                transfer.r,
                transfer.s,
                direction,
            );
            let segment = self.nodes[transfer.from]
                .export_segment_range(range_r, range_s)
                .expect("elastic simulation requires migration-capable nodes");
            let tuples = segment.len();
            out.clear();
            self.nodes[transfer.to]
                .import_segment(segment, direction.opposite(), &mut out)
                .expect("elastic simulation requires migration-capable nodes");
            let service = self.config.cost.frame_service_ns(
                tuples as u64,
                out.comparisons,
                out.results.len() as u64,
                false,
            );
            *fence_end += hop + service;
            self.busy_ns[transfer.to] += service;
            self.frames_delivered += 1;
            self.messages_delivered += tuples as u64;
            self.record_migration_results(&mut out, *fence_end);
            let ack = self.config.cost.frame_service_ns(1, 0, 0, false);
            *fence_end += hop + ack;
            self.busy_ns[transfer.from] += ack;
            rebalanced += tuples;
        }
        rebalanced
    }

    /// Captures a checkpoint of an already-drained chain: each node's
    /// window segment is exported, cloned into the checkpoint and silently
    /// reinstalled, and the serialise-and-write cost
    /// ([`crate::cost::CostModel::checkpoint_ns`]) is charged to the node,
    /// serially extending the fence exactly like a migration pass — the
    /// virtual-time mirror of the runtime's fenced `capture_checkpoint` +
    /// store write.
    pub(crate) fn capture_checkpoint(
        &mut self,
        after_events: usize,
    ) -> (SimCheckpoint<R, S>, SimCheckpointEvent) {
        let fence_start = self.makespan_ns;
        let mut fence_end = fence_start;
        let mut segments = Vec::with_capacity(self.width);
        let mut tuples = 0usize;
        for k in 0..self.width {
            let segment = self.nodes[k]
                .export_segment()
                .expect("checkpointing requires migration-capable nodes");
            fence_end += self.config.cost.checkpoint_ns(segment.len() as u64);
            self.busy_ns[k] += self.config.cost.checkpoint_ns(segment.len() as u64);
            tuples += segment.len();
            self.nodes[k]
                .install_segment_silent(segment.clone())
                .expect("checkpointing requires migration-capable nodes");
            segments.push(segment);
        }
        for k in 0..self.width {
            self.busy_until[k] = self.busy_until[k].max(fence_end);
        }
        self.makespan_ns = fence_end;
        (
            SimCheckpoint {
                after_events,
                width: self.width,
                segments,
                hwm_r: self.hwm.r(),
                hwm_s: self.hwm.s(),
            },
            SimCheckpointEvent {
                after_events,
                at_ns: fence_start,
                tuples,
                cost_ns: fence_end - fence_start,
            },
        )
    }

    /// Installs a checkpoint into a fresh chain (of the checkpoint's
    /// width), charging the read-and-install cost per node plus one hop —
    /// recovery as fence + install.
    pub(crate) fn restore_checkpoint(&mut self, ckpt: &SimCheckpoint<R, S>) {
        assert_eq!(
            ckpt.width, self.width,
            "a checkpoint restores only into a chain of its own width"
        );
        let hop = self.config.cost.hop_ns_for(self.config.pin_cores);
        let mut fence_end = self.makespan_ns;
        for (k, segment) in ckpt.segments.iter().enumerate() {
            let cost = self.config.cost.checkpoint_ns(segment.len() as u64);
            fence_end += hop + cost;
            self.busy_ns[k] += cost;
            self.nodes[k]
                .install_segment_silent(segment.clone())
                .expect("recovery requires migration-capable nodes");
        }
        self.hwm.observe_r(ckpt.hwm_r);
        self.hwm.observe_s(ckpt.hwm_s);
        for k in 0..self.width {
            self.busy_until[k] = self.busy_until[k].max(fence_end);
        }
        self.makespan_ns = fence_end;
    }

    /// Finalizes the chain into the standard elastic report.
    pub(crate) fn into_report(self, schedule: &DriverSchedule<R, S>) -> ElasticSimReport<R, S> {
        let nodes_final = self.width;
        ElasticSimReport {
            report: SimReport {
                algorithm: self.config.algorithm,
                nodes: nodes_final,
                results: self.results,
                output: self.output,
                latency: self.latency,
                latency_series: self.series.finish(),
                counters: self.nodes.iter().map(|n| n.node_counters()).collect(),
                busy_ns: self.busy_ns,
                last_injection_ns: self.last_injection_ns,
                makespan_ns: self.makespan_ns,
                punctuation_count: self.punctuation_count,
                arrivals_per_stream: (schedule.r_count(), schedule.s_count()),
                frames_delivered: self.frames_delivered,
                messages_delivered: self.messages_delivered,
            },
            resize_log: self.resize_log,
        }
    }
}
/// How resizes are decided during an elastic replay.
///
/// `Plan` is a pre-computed list of `(after_events, target_nodes)` steps;
/// `Auto` is the deterministic mirror of the runtime's auto-scale
/// controller, sampling at stream-time boundaries.  Both steer the *same*
/// driver loop ([`run_elastic_driver`]) — the sim-side twin of the
/// runtime's shared `exec` machinery, so the two replay paths cannot
/// drift either.
enum Steering<'a> {
    Plan(std::iter::Peekable<std::vec::IntoIter<(usize, usize)>>),
    Auto {
        policy: &'a AutoscalePolicy,
        interval: TimeDelta,
        state: PolicyState,
        ewma: LatencyEwma,
        /// How many of `sim.results` have been folded into the EWMA.
        ewma_fed: usize,
        next_sample_at: Timestamp,
        prev_arrivals: usize,
        prev_busy: Vec<SimNanos>,
        report: AutoscaleReport,
    },
}

/// Builds the configured algorithm's node constructor — shared by the
/// single-chain elastic driver and the shard-mesh mirror so every chain
/// in a run is built identically.
pub(crate) fn node_factory<R, S, P>(
    config: &SimConfig,
    predicate: P,
) -> impl Fn(usize, usize) -> Box<dyn PipelineNode<R, S>>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
{
    let config = config.clone();
    move |k: usize, n: usize| -> Box<dyn PipelineNode<R, S>> {
        match config.algorithm {
            Algorithm::Llhj => {
                Box::new(llhj_core::node_llhj::LlhjNode::new(k, n, predicate.clone()))
            }
            Algorithm::LlhjIndexed => Box::new(llhj_core::node_llhj::LlhjNode::with_index(
                k,
                n,
                predicate.clone(),
            )),
            // Elastic since the capacity renegotiation refactor: the
            // flow policy renegotiates on renumbering and migrated
            // segments install with matching (stream-monotone
            // redistribution).
            Algorithm::Hsj => Box::new(llhj_core::node_hsj::HsjNode::new(
                k,
                n,
                config.hsj_flow(),
                predicate.clone(),
            )),
        }
    }
}

/// The single elastic driver loop: batches and injects the schedule,
/// letting `steering` fence-and-resize the chain between events.  Both
/// public entry points wrap it.
fn run_elastic_driver<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    steering: &mut Steering<'_>,
) -> ElasticSimReport<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    assert!(config.nodes > 0, "pipeline needs at least one node");
    assert!(config.batch_size > 0, "batch size must be positive");

    let factory = node_factory(config, predicate.clone());

    let width = config.nodes;
    let mut sim = ElasticSim::new(config, width, &factory);

    let mut injector = Injector::new(predicate.clone(), policy.clone(), width);
    let mut left_buf: Vec<LeftToRight<R>> = Vec::new();
    let mut right_buf: Vec<RightToLeft<S>> = Vec::new();
    let mut left_arrivals = 0usize;
    let mut right_arrivals = 0usize;
    let mut seen_r = 0usize;
    let mut seen_s = 0usize;
    let mut last_at = Timestamp::ZERO;

    macro_rules! flush_left {
        ($at_ns:expr) => {
            if !left_buf.is_empty() {
                let frame = MessageBatch::Left(std::mem::take(&mut left_buf));
                sim.push_frame($at_ns, 0, frame);
            }
            sim.last_injection_ns = sim.last_injection_ns.max($at_ns);
        };
    }
    macro_rules! flush_right {
        ($at_ns:expr) => {
            if !right_buf.is_empty() {
                let frame = MessageBatch::Right(std::mem::take(&mut right_buf));
                let rightmost = sim.width - 1;
                sim.push_frame($at_ns, rightmost, frame);
            }
            sim.last_injection_ns = sim.last_injection_ns.max($at_ns);
        };
    }
    /// Entry frames assembled for the old chain must enter it before the
    /// fence: their homes were assigned under the old width.
    macro_rules! fence_and_resize {
        ($target:expr, $at_ns:expr) => {
            flush_left!($at_ns);
            flush_right!($at_ns);
            left_arrivals = 0;
            right_arrivals = 0;
            sim.resize($target, &factory);
            injector = Injector::new(predicate.clone(), policy.clone(), $target);
        };
    }

    for (idx, event) in schedule.events().iter().enumerate() {
        match steering {
            Steering::Plan(steps) => {
                while let Some(&(after, target)) = steps.peek() {
                    if after > idx {
                        break;
                    }
                    steps.next();
                    fence_and_resize!(target, ts_to_ns(last_at));
                }
            }
            Steering::Auto {
                policy: autoscale,
                interval,
                state,
                ewma,
                ewma_fed,
                next_sample_at,
                prev_arrivals,
                prev_busy,
                report,
            } => {
                // Controller tick(s): every sample boundary at or before
                // this event, in order.  (Several boundaries can pass at
                // once across a silent gap — each gets its own zero-rate
                // sample, mirroring the runtime controller ticking through
                // the gap on the wall clock.)
                while *next_sample_at <= event.at {
                    let boundary = *next_sample_at;
                    // Materialise everything scheduled up to the boundary
                    // so the latency signal reflects the results that
                    // exist by now.
                    sim.drain(Some(ts_to_ns(boundary)));
                    while *ewma_fed < sim.results.len() {
                        ewma.observe(sim.results[*ewma_fed].latency());
                        *ewma_fed += 1;
                    }
                    let arrivals = seen_r + seen_s;
                    let rate = (arrivals - *prev_arrivals) as f64 / 2.0 / interval.as_secs_f64();
                    let nodes = sim.width;
                    let interval_ns = (interval.as_micros().max(1) * 1_000) as f64;
                    let busy_fraction = (0..nodes)
                        .map(|k| {
                            let current = sim.busy_ns.get(k).copied().unwrap_or(0);
                            let prev = prev_busy.get(k).copied().unwrap_or(0);
                            ((current.saturating_sub(prev)) as f64 / interval_ns).min(1.0)
                        })
                        .collect::<Vec<_>>();
                    let sample = MetricsSample {
                        at: boundary,
                        nodes,
                        arrival_rate_per_sec: rate,
                        latency_ewma: ewma.value(),
                        entry_occupancy: (0, 0),
                        busy_fraction,
                    };
                    let decision = autoscale.decide(state, &sample);
                    if let Some(target) = decision.target() {
                        if target != sim.width {
                            report.decisions.push(ResizeDecision {
                                at: boundary,
                                from_nodes: sim.width,
                                to_nodes: target,
                            });
                            fence_and_resize!(target, ts_to_ns(last_at.max(boundary)));
                        }
                    }
                    report.samples.push(sample);
                    *prev_arrivals = arrivals;
                    *prev_busy = sim.busy_ns.clone();
                    *next_sample_at = next_sample_at.saturating_add(*interval);
                }
            }
        }

        last_at = event.at;
        match &event.event {
            StreamEvent::ArrivalR(r) => {
                left_buf.push(injector.inject_r(r.clone()));
                left_arrivals += 1;
                seen_r += 1;
                if left_arrivals >= config.batch_size || seen_r == schedule.r_count() {
                    flush_left!(ts_to_ns(event.at));
                    left_arrivals = 0;
                }
            }
            StreamEvent::ExpireS(seq) => left_buf.push(LeftToRight::ExpiryS(*seq)),
            StreamEvent::ArrivalS(s) => {
                right_buf.push(injector.inject_s(s.clone()));
                right_arrivals += 1;
                seen_s += 1;
                if right_arrivals >= config.batch_size || seen_s == schedule.s_count() {
                    flush_right!(ts_to_ns(event.at));
                    right_arrivals = 0;
                }
            }
            StreamEvent::ExpireR(seq) => right_buf.push(RightToLeft::ExpiryR(*seq)),
        }
    }
    let final_ns = ts_to_ns(last_at);
    flush_left!(final_ns);
    flush_right!(final_ns);
    sim.drain(None);
    // Trailing plan steps (a resize on the very last event) still run.
    if let Steering::Plan(steps) = steering {
        for (_, target) in steps.by_ref() {
            sim.resize(target, &factory);
        }
    }
    if config.punctuate {
        sim.collect();
    }

    sim.into_report(schedule)
}

/// Runs an elastic simulation: replays `schedule` through a pipeline that
/// starts at `config.nodes` nodes and resizes at the given plan steps.
///
/// `plan` is a list of `(after_events, target_nodes)` pairs: after that
/// many schedule events have been injected, the pipeline is fenced,
/// migrated and resized — the virtual-time mirror of
/// `llhj-runtime`'s `run_elastic_pipeline`.  Only the LLHJ algorithms
/// support migration.
pub fn run_elastic_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    plan: &[(usize, usize)],
) -> ElasticSimReport<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    let mut plan: Vec<(usize, usize)> = plan.to_vec();
    plan.sort_by_key(|(after, _)| *after);
    let mut steering = Steering::Plan(plan.into_iter().peekable());
    run_elastic_driver(config, predicate, policy, schedule, &mut steering)
}

/// Runs an elastic simulation with the **auto-scale mirror** engaged: the
/// same [`AutoscalePolicy`] the threaded runtime's controller thread runs
/// (`llhj-runtime::autoscale`), evaluated at deterministic stream-time
/// sample boundaries instead of wall-clock ticks.
///
/// At every multiple of `sample_interval` the mirror materialises the
/// results scheduled up to the boundary (a bounded heap drain), builds a
/// [`MetricsSample`] from its virtual-time counters — per-stream arrival
/// rate over the window, result-latency EWMA (the shared
/// [`DEFAULT_LATENCY_ALPHA`] matches the runtime bus), per-node busy
/// fraction; channel occupancy is zero, the simulator has no queues —
/// and feeds it to the policy.  A grow/shrink decision resizes
/// immediately through the same fenced migration as a planned resize.
///
/// Because every input to the policy is a deterministic function of the
/// schedule and the cost model, the decision sequence is reproducible,
/// which is what makes the controller unit-testable: the conformance
/// suite asserts this mirror reproduces the threaded runtime's resize
/// decision sequence on the same workload and policy.
pub fn run_autoscaled_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    autoscale: &AutoscalePolicy,
    sample_interval: TimeDelta,
) -> (ElasticSimReport<R, S>, AutoscaleReport)
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    assert!(
        sample_interval > TimeDelta::ZERO,
        "sample_interval must be positive"
    );
    autoscale
        .validate()
        .unwrap_or_else(|err| panic!("invalid AutoscalePolicy: {err}"));
    let mut steering = Steering::Auto {
        policy: autoscale,
        interval: sample_interval,
        state: PolicyState::default(),
        ewma: LatencyEwma::new(DEFAULT_LATENCY_ALPHA),
        ewma_fed: 0,
        next_sample_at: Timestamp::ZERO.saturating_add(sample_interval),
        prev_arrivals: 0,
        prev_busy: Vec::new(),
        report: AutoscaleReport::default(),
    };
    let sim_report = run_elastic_driver(config, predicate, policy, schedule, &mut steering);
    let Steering::Auto { report, .. } = steering else {
        unreachable!("steering mode is fixed at construction")
    };
    (sim_report, report)
}

/// Runs an elastic simulation with durability engaged: every consumed
/// `every_events`-th schedule event the chain fences (complete heap
/// drain) and captures a checkpoint, charging the serialise-and-write
/// cost in virtual time — the mirror of the runtime's
/// `run_schedule_checkpointed`.  `crash_after_events` simulates the
/// driver dying right before injecting that event index: the loop stops
/// there with a clean injected prefix (everything injected is processed,
/// nothing else enters), which is exactly the prefix property the
/// runtime's cancel-during-run crash model guarantees.
///
/// Returns the (possibly crashed) report, the checkpoint log, and the
/// latest captured checkpoint for [`recover_simulation`].
#[allow(clippy::type_complexity)]
pub fn run_checkpointed_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    plan: &[(usize, usize)],
    every_events: usize,
    crash_after_events: Option<usize>,
) -> (
    ElasticSimReport<R, S>,
    Vec<SimCheckpointEvent>,
    Option<SimCheckpoint<R, S>>,
)
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    assert!(config.nodes > 0, "pipeline needs at least one node");
    assert!(config.batch_size > 0, "batch size must be positive");
    let every = every_events.max(1);
    let factory = node_factory(config, predicate.clone());
    let mut sim = ElasticSim::new(config, config.nodes, &factory);
    let mut injector = Injector::new(predicate.clone(), policy.clone(), config.nodes);
    let mut plan: Vec<(usize, usize)> = plan.to_vec();
    plan.sort_by_key(|(after, _)| *after);
    let mut steps = plan.into_iter().peekable();

    let mut left_buf: Vec<LeftToRight<R>> = Vec::new();
    let mut right_buf: Vec<RightToLeft<S>> = Vec::new();
    let mut left_arrivals = 0usize;
    let mut right_arrivals = 0usize;
    let mut seen_r = 0usize;
    let mut seen_s = 0usize;
    let mut last_at = Timestamp::ZERO;
    let mut checkpoint_log = Vec::new();
    let mut latest: Option<SimCheckpoint<R, S>> = None;
    let mut crashed = false;

    macro_rules! flush_both {
        ($at_ns:expr) => {
            if !left_buf.is_empty() {
                let frame = MessageBatch::Left(std::mem::take(&mut left_buf));
                sim.push_frame($at_ns, 0, frame);
            }
            if !right_buf.is_empty() {
                let rightmost = sim.width - 1;
                let frame = MessageBatch::Right(std::mem::take(&mut right_buf));
                sim.push_frame($at_ns, rightmost, frame);
            }
            sim.last_injection_ns = sim.last_injection_ns.max($at_ns);
        };
    }

    for (idx, event) in schedule.events().iter().enumerate() {
        while let Some(&(after, target)) = steps.peek() {
            if after > idx {
                break;
            }
            steps.next();
            flush_both!(ts_to_ns(last_at));
            left_arrivals = 0;
            right_arrivals = 0;
            sim.resize(target, &factory);
            injector = Injector::new(predicate.clone(), policy.clone(), target);
        }
        if crash_after_events == Some(idx) {
            crashed = true;
            break;
        }
        last_at = event.at;
        match &event.event {
            StreamEvent::ArrivalR(r) => {
                left_buf.push(injector.inject_r(r.clone()));
                left_arrivals += 1;
                seen_r += 1;
                if left_arrivals >= config.batch_size || seen_r == schedule.r_count() {
                    let at_ns = ts_to_ns(event.at);
                    if !left_buf.is_empty() {
                        let frame = MessageBatch::Left(std::mem::take(&mut left_buf));
                        sim.push_frame(at_ns, 0, frame);
                    }
                    sim.last_injection_ns = sim.last_injection_ns.max(at_ns);
                    left_arrivals = 0;
                }
            }
            StreamEvent::ExpireS(seq) => left_buf.push(LeftToRight::ExpiryS(*seq)),
            StreamEvent::ArrivalS(s) => {
                right_buf.push(injector.inject_s(s.clone()));
                right_arrivals += 1;
                seen_s += 1;
                if right_arrivals >= config.batch_size || seen_s == schedule.s_count() {
                    let at_ns = ts_to_ns(event.at);
                    if !right_buf.is_empty() {
                        let rightmost = sim.width - 1;
                        let frame = MessageBatch::Right(std::mem::take(&mut right_buf));
                        sim.push_frame(at_ns, rightmost, frame);
                    }
                    sim.last_injection_ns = sim.last_injection_ns.max(at_ns);
                    right_arrivals = 0;
                }
            }
            StreamEvent::ExpireR(seq) => right_buf.push(RightToLeft::ExpiryR(*seq)),
        }
        let consumed = idx + 1;
        if consumed.is_multiple_of(every) {
            // Entry frames must enter before the fence: their homes were
            // assigned under the current width.
            flush_both!(ts_to_ns(last_at));
            left_arrivals = 0;
            right_arrivals = 0;
            sim.drain(None);
            let (ckpt, evt) = sim.capture_checkpoint(consumed);
            checkpoint_log.push(evt);
            latest = Some(ckpt);
        }
    }
    flush_both!(ts_to_ns(last_at));
    sim.drain(None);
    if !crashed {
        for (_, target) in steps.by_ref() {
            sim.resize(target, &factory);
        }
    }
    if config.punctuate {
        sim.collect();
    }
    (sim.into_report(schedule), checkpoint_log, latest)
}

/// Rebuilds a chain from `ckpt` (or cold, from nothing) and replays the
/// schedule suffix past the checkpoint cut — the virtual-time mirror of
/// the runtime's `recover_elastic_pipeline`.
///
/// Recovery is *rebased*: replayed frames keep their relative stream
/// spacing but start at virtual zero, so the report's `makespan_ns` is
/// the recovery time itself — install cost plus the suffix replay — which
/// is what `bench_recovery` compares against a cold replay of the whole
/// schedule (`ckpt = None`).  Result and punctuation values carry
/// original stream timestamps throughout, so the recovered output splices
/// against a crashed prefix with `llhj_core::checkpoint::splice_recovered_stream`
/// exactly like the runtime's.
pub fn recover_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    ckpt: Option<&SimCheckpoint<R, S>>,
) -> ElasticSimReport<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    let factory = node_factory(config, predicate.clone());
    let (start_idx, width) = match ckpt {
        Some(c) => (c.after_events, c.width),
        None => (0, config.nodes),
    };
    let mut sim = ElasticSim::new(config, width, &factory);
    if let Some(c) = ckpt {
        sim.restore_checkpoint(c);
    }
    let events = &schedule.events()[start_idx.min(schedule.events().len())..];
    let rebase = events.first().map_or(0, |e| ts_to_ns(e.at));
    let injector = Injector::new(predicate.clone(), policy.clone(), width);
    let mut left_buf: Vec<LeftToRight<R>> = Vec::new();
    let mut right_buf: Vec<RightToLeft<S>> = Vec::new();
    let mut left_arrivals = 0usize;
    let mut right_arrivals = 0usize;
    let mut last_ns: SimNanos = 0;
    for event in events {
        last_ns = ts_to_ns(event.at).saturating_sub(rebase);
        match &event.event {
            StreamEvent::ArrivalR(r) => {
                left_buf.push(injector.inject_r(r.clone()));
                left_arrivals += 1;
                if left_arrivals >= config.batch_size {
                    let frame = MessageBatch::Left(std::mem::take(&mut left_buf));
                    sim.push_frame(last_ns, 0, frame);
                    sim.last_injection_ns = sim.last_injection_ns.max(last_ns);
                    left_arrivals = 0;
                }
            }
            StreamEvent::ExpireS(seq) => left_buf.push(LeftToRight::ExpiryS(*seq)),
            StreamEvent::ArrivalS(s) => {
                right_buf.push(injector.inject_s(s.clone()));
                right_arrivals += 1;
                if right_arrivals >= config.batch_size {
                    let rightmost = sim.width - 1;
                    let frame = MessageBatch::Right(std::mem::take(&mut right_buf));
                    sim.push_frame(last_ns, rightmost, frame);
                    sim.last_injection_ns = sim.last_injection_ns.max(last_ns);
                    right_arrivals = 0;
                }
            }
            StreamEvent::ExpireR(seq) => right_buf.push(RightToLeft::ExpiryR(*seq)),
        }
    }
    if !left_buf.is_empty() {
        let frame = MessageBatch::Left(std::mem::take(&mut left_buf));
        sim.push_frame(last_ns, 0, frame);
    }
    if !right_buf.is_empty() {
        let rightmost = sim.width - 1;
        let frame = MessageBatch::Right(std::mem::take(&mut right_buf));
        sim.push_frame(last_ns, rightmost, frame);
    }
    sim.last_injection_ns = sim.last_injection_ns.max(last_ns);
    sim.drain(None);
    if config.punctuate {
        sim.collect();
    }
    sim.into_report(schedule)
}
#[cfg(test)]
mod tests {
    use super::*;
    use llhj_baselines::run_kang;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::FnPredicate;
    use llhj_core::window::WindowSpec;

    fn eq_pred() -> FnPredicate<fn(&u32, &u32) -> bool> {
        fn eq(r: &u32, s: &u32) -> bool {
            r == s
        }
        FnPredicate(eq as fn(&u32, &u32) -> bool)
    }

    fn small_schedule() -> DriverSchedule<u32, u32> {
        let r: Vec<_> = (0..200u64)
            .map(|i| (Timestamp::from_millis(i), (i % 20) as u32))
            .collect();
        let s: Vec<_> = (0..200u64)
            .map(|i| (Timestamp::from_millis(i), (i % 25) as u32))
            .collect();
        DriverSchedule::build(r, s, WindowSpec::time_secs(1), WindowSpec::time_secs(1))
    }

    fn config(nodes: usize) -> SimConfig {
        let mut cfg = SimConfig::new(nodes, Algorithm::Llhj);
        cfg.batch_size = 4;
        cfg.window_r = WindowSpec::time_secs(1);
        cfg.window_s = WindowSpec::time_secs(1);
        cfg.latency_bucket = 1_000_000;
        cfg
    }

    #[test]
    fn elastic_sim_without_resizes_matches_the_fixed_engine() {
        let schedule = small_schedule();
        let oracle = run_kang(eq_pred(), &schedule);
        let fixed = crate::engine::run_simulation(&config(3), eq_pred(), RoundRobin, &schedule);
        let elastic = run_elastic_simulation(&config(3), eq_pred(), RoundRobin, &schedule, &[]);
        assert_eq!(elastic.result_keys(), oracle.result_keys());
        assert_eq!(elastic.result_keys(), fixed.result_keys());
        assert!(elastic.resize_log.is_empty());
        assert_eq!(elastic.report.nodes, 3);
    }

    #[test]
    fn simulated_grow_and_shrink_preserve_the_result_set() {
        let schedule = small_schedule();
        let oracle = run_kang(eq_pred(), &schedule);
        let events = schedule.events().len();
        // Grow 2 -> 4 mid-run.
        let grown = run_elastic_simulation(
            &config(2),
            eq_pred(),
            RoundRobin,
            &schedule,
            &[(events / 2, 4)],
        );
        assert_eq!(grown.result_keys(), oracle.result_keys());
        assert_eq!(grown.report.nodes, 4);
        assert_eq!(grown.resize_log.len(), 1);
        assert_eq!(grown.resize_log[0].migrated_tuples, 0);
        // Shrink 4 -> 2 mid-run migrates resident tuples.
        let shrunk = run_elastic_simulation(
            &config(4),
            eq_pred(),
            RoundRobin,
            &schedule,
            &[(events / 2, 2)],
        );
        assert_eq!(shrunk.result_keys(), oracle.result_keys());
        assert_eq!(shrunk.report.nodes, 2);
        assert!(shrunk.resize_log[0].migrated_tuples > 0);
        assert!(shrunk.resize_log[0].fence_ns > 0);
    }

    /// Every resize ends with the chain-wide redistribution: right after
    /// a mid-run grow the stored windows are spread to the balanced
    /// targets; with the knob off, the grown nodes start cold and the old
    /// nodes keep the whole window.
    #[test]
    fn grow_rebalances_residence_unless_disabled() {
        let schedule = small_schedule();
        let events = schedule.events().len();
        let run = |rebalance: bool| {
            let mut cfg = config(2);
            cfg.rebalance_on_resize = rebalance;
            run_elastic_simulation(&cfg, eq_pred(), RoundRobin, &schedule, &[(events / 2, 4)])
        };
        let balanced = run(true);
        let resize = &balanced.resize_log[0];
        assert!(resize.rebalanced_tuples > 0);
        let totals: Vec<usize> = resize
            .residence_after
            .iter()
            .map(|&(wr, ws)| wr + ws)
            .collect();
        assert_eq!(totals.len(), 4);
        let (min, max) = (*totals.iter().min().unwrap(), *totals.iter().max().unwrap());
        assert!(
            max - min <= 2,
            "post-grow residence must hit the balanced targets, got {totals:?}"
        );

        let cold = run(false);
        let resize = &cold.resize_log[0];
        assert_eq!(resize.rebalanced_tuples, 0);
        assert_eq!(
            resize.residence_after[2],
            (0, 0),
            "without the redistribution, grown nodes start cold"
        );
        // The result set is exact either way — the rebalance buys
        // placement, never correctness.
        assert_eq!(balanced.result_keys(), cold.result_keys());
    }

    /// The original handshake join is elastic in the simulator too:
    /// seeded grow and shrink preserve byte-identical oracle equality
    /// (migrated segments install with matching, the flow model
    /// renegotiates on renumbering).
    #[test]
    fn elastic_hsj_matches_the_oracle_across_resizes() {
        // The HSJ flushed-schedule discipline: one window length of
        // never-matching tail traffic keeps the stream flowing so every
        // real pair physically meets before the input ends.
        let window_ms = 1_000u64;
        let real = 200u64;
        let flush = window_ms + 100;
        let r: Vec<_> = (0..real)
            .map(|i| (Timestamp::from_millis(i), (i % 20) as u32))
            .chain((0..flush).map(|i| (Timestamp::from_millis(real + i), 1_000_000u32)))
            .collect();
        let s: Vec<_> = (0..real)
            .map(|i| (Timestamp::from_millis(i), (i % 25) as u32))
            .chain((0..flush).map(|i| (Timestamp::from_millis(real + i), 2_000_000u32)))
            .collect();
        let schedule =
            DriverSchedule::build(r, s, WindowSpec::time_secs(1), WindowSpec::time_secs(1));
        let oracle = run_kang(eq_pred(), &schedule);
        let events = schedule.events().len();
        let mut cfg = SimConfig::new(2, Algorithm::Hsj);
        cfg.batch_size = 1;
        cfg.window_r = WindowSpec::time_secs(1);
        cfg.window_s = WindowSpec::time_secs(1);
        cfg.latency_bucket = 1_000_000;
        let report = run_elastic_simulation(
            &cfg,
            eq_pred(),
            RoundRobin,
            &schedule,
            &[(events / 3, 4), (2 * events / 3, 2)],
        );
        assert_eq!(
            report.result_keys(),
            oracle.result_keys(),
            "elastic HSJ must stay byte-identical to the oracle"
        );
        assert_eq!(report.resize_log.len(), 2);
        // The monotone constraint still lets the R side spread right on
        // the grow.
        let grow = &report.resize_log[0];
        assert!(
            grow.residence_after.iter().skip(2).any(|&(wr, _)| wr > 0),
            "grown nodes must receive R state: {:?}",
            grow.residence_after
        );
    }

    #[test]
    fn migration_cost_scales_with_the_migrated_state() {
        // A larger window migrates more tuples, so the fence must take
        // longer in virtual time.
        let mk = |window_ms: u64| {
            let r: Vec<_> = (0..300u64)
                .map(|i| (Timestamp::from_millis(i), (i % 20) as u32))
                .collect();
            let s: Vec<_> = (0..300u64)
                .map(|i| (Timestamp::from_millis(i), (i % 25) as u32))
                .collect();
            let w = WindowSpec::Time(llhj_core::time::TimeDelta::from_millis(window_ms));
            DriverSchedule::build(r, s, w, w)
        };
        let fence_of = |window_ms: u64| {
            let mut cfg = config(4);
            cfg.window_r = WindowSpec::Time(llhj_core::time::TimeDelta::from_millis(window_ms));
            cfg.window_s = cfg.window_r;
            let sched = mk(window_ms);
            let events = sched.events().len();
            let report =
                run_elastic_simulation(&cfg, eq_pred(), RoundRobin, &sched, &[(events / 2, 2)]);
            (
                report.resize_log[0].migrated_tuples,
                report.resize_log[0].fence_ns,
            )
        };
        let (small_tuples, small_fence) = fence_of(50);
        let (large_tuples, large_fence) = fence_of(250);
        assert!(large_tuples > small_tuples);
        assert!(
            large_fence > small_fence,
            "more migrated state must cost a longer fence: \
             {small_fence} ns vs {large_fence} ns"
        );
    }

    /// A hand-built burst: 200/s per stream, 5x for the middle second.
    fn bursty_schedule() -> DriverSchedule<u32, u32> {
        let mut ts = Vec::new();
        let mut t_us: u64 = 0;
        while t_us < 3_000_000 {
            ts.push(Timestamp::from_micros(t_us));
            t_us += if (1_000_000..2_000_000).contains(&t_us) {
                1_000 // 1000/s inside the burst
            } else {
                5_000 // 200/s outside
            };
        }
        let r: Vec<_> = ts.iter().map(|&t| (t, 7u32)).collect();
        let s: Vec<_> = ts.iter().map(|&t| (t, 7u32)).collect();
        let w = WindowSpec::Time(llhj_core::time::TimeDelta::from_millis(20));
        DriverSchedule::build(r, s, w, w)
    }

    fn burst_policy() -> AutoscalePolicy {
        AutoscalePolicy {
            target_p99: llhj_core::time::TimeDelta::from_secs(1),
            high_watermark: 300.0,
            low_watermark: 60.0,
            cooldown: llhj_core::time::TimeDelta::from_millis(200),
            min_nodes: 2,
            max_nodes: 6,
            step: 2,
            ..AutoscalePolicy::default()
        }
    }

    /// The deterministic mirror of the runtime controller: a burst grows
    /// the chain once, the post-burst lull shrinks it back, the result
    /// set stays byte-identical to the oracle, and re-running reproduces
    /// the identical decision sequence (the property the cross-substrate
    /// conformance suite builds on).
    #[test]
    fn autoscaled_sim_tracks_the_burst_and_stays_exact() {
        let schedule = bursty_schedule();
        let oracle = run_kang(eq_pred(), &schedule);
        let run = || {
            run_autoscaled_simulation(
                &config(2),
                eq_pred(),
                RoundRobin,
                &schedule,
                &burst_policy(),
                llhj_core::time::TimeDelta::from_millis(100),
            )
        };
        let (report, autoscale) = run();
        assert_eq!(report.result_keys(), oracle.result_keys());
        assert_eq!(
            autoscale.decision_sequence(),
            vec![(2, 4), (4, 2)],
            "grow once into the burst, shrink once after it; samples: {:?}",
            autoscale
                .samples
                .iter()
                .map(|s| (s.at.as_micros(), s.nodes, s.arrival_rate_per_sec as u64))
                .collect::<Vec<_>>()
        );
        assert_eq!(autoscale.peak_nodes(2), 4);
        // The resize log mirrors the decisions one-to-one.
        assert_eq!(report.resize_log.len(), 2);
        assert_eq!(report.resize_log[0].from_nodes, 2);
        assert_eq!(report.resize_log[0].to_nodes, 4);
        assert!(report.resize_log[1].migrated_tuples > 0);
        // Samples carry a meaningful latency/busy signal.
        assert!(autoscale
            .samples
            .iter()
            .any(|s| s.latency_ewma > llhj_core::time::TimeDelta::ZERO));
        assert!(autoscale
            .samples
            .iter()
            .any(|s| s.busy_fraction.iter().any(|&f| f > 0.0)));
        // Determinism: an identical re-run reproduces the sequence.
        let (_, again) = run();
        assert_eq!(again.decision_sequence(), autoscale.decision_sequence());
        assert_eq!(again.samples.len(), autoscale.samples.len());
    }

    /// The durability mirror end to end: checkpointing is transparent to
    /// the result set, a crashed prefix plus a recovery from the latest
    /// checkpoint reunites to exactly the oracle set, and recovery's
    /// rebased makespan beats a cold replay of the whole schedule.
    #[test]
    fn checkpointed_sim_is_transparent_and_recovery_beats_cold_replay() {
        let schedule = small_schedule();
        let oracle = run_kang(eq_pred(), &schedule);
        let events = schedule.events().len();
        let (full, ckpt_log, latest) = run_checkpointed_simulation(
            &config(3),
            eq_pred(),
            RoundRobin,
            &schedule,
            &[(events / 2, 4)],
            100,
            None,
        );
        assert_eq!(full.result_keys(), oracle.result_keys());
        assert_eq!(ckpt_log.len(), events / 100);
        assert!(
            ckpt_log.iter().any(|c| c.cost_ns > 0 && c.tuples > 0),
            "loaded windows must charge checkpoint time: {ckpt_log:?}"
        );
        let latest = latest.expect("a full run leaves a checkpoint behind");
        assert_eq!(latest.width, 4, "captured after the mid-run grow");
        assert!(latest.hwm_r > Timestamp::ZERO);

        // Crash two thirds in; the latest checkpoint lands at the last
        // multiple of 100 before the crash.
        let crash_at = 2 * events / 3;
        let (crashed, _, ckpt) = run_checkpointed_simulation(
            &config(3),
            eq_pred(),
            RoundRobin,
            &schedule,
            &[],
            100,
            Some(crash_at),
        );
        let ckpt = ckpt.expect("crash past the first checkpoint boundary");
        assert_eq!(ckpt.after_events, (crash_at / 100) * 100);
        let recovered =
            recover_simulation(&config(3), eq_pred(), RoundRobin, &schedule, Some(&ckpt));
        let cold = recover_simulation(&config(3), eq_pred(), RoundRobin, &schedule, None);
        assert_eq!(
            cold.result_keys(),
            oracle.result_keys(),
            "a cold replay of the whole schedule is just the plain run"
        );
        // Crashed prefix ∪ recovered suffix = oracle, duplicates only in
        // the replayed (checkpoint → crash) overlap.
        let mut keys: Vec<_> = crashed
            .report
            .results
            .iter()
            .chain(recovered.report.results.iter())
            .map(|t| t.result.key())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys, oracle.result_keys());
        assert!(
            recovered.report.makespan_ns < cold.report.makespan_ns,
            "recovery ({} ns) must beat cold replay ({} ns)",
            recovered.report.makespan_ns,
            cold.report.makespan_ns
        );
    }

    #[test]
    fn throughput_trace_buckets_cover_the_run() {
        let schedule = small_schedule();
        let report = run_elastic_simulation(&config(2), eq_pred(), RoundRobin, &schedule, &[]);
        let trace = report.throughput_trace(10_000_000); // 10 ms buckets
        let total: f64 = trace.iter().map(|(_, rate)| rate * 0.01).sum();
        assert!((total - report.report.results.len() as f64).abs() < 1.0);
    }
}
