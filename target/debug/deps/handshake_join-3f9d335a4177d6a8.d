/root/repo/target/debug/deps/handshake_join-3f9d335a4177d6a8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhandshake_join-3f9d335a4177d6a8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
