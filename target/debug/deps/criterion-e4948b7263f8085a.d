/root/repo/target/debug/deps/criterion-e4948b7263f8085a.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-e4948b7263f8085a.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
