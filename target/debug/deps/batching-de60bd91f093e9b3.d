/root/repo/target/debug/deps/batching-de60bd91f093e9b3.d: crates/bench/benches/batching.rs

/root/repo/target/debug/deps/libbatching-de60bd91f093e9b3.rmeta: crates/bench/benches/batching.rs

crates/bench/benches/batching.rs:
