/root/repo/target/release/deps/handshake_join-dfbd7e76e41ce140.d: src/lib.rs

/root/repo/target/release/deps/handshake_join-dfbd7e76e41ce140: src/lib.rs

src/lib.rs:
