/root/repo/target/debug/examples/scalability_sweep-f31d5f3609bbe9f7.d: examples/scalability_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libscalability_sweep-f31d5f3609bbe9f7.rmeta: examples/scalability_sweep.rs Cargo.toml

examples/scalability_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
