//! Stream tuples and pipeline tuples.
//!
//! A [`StreamTuple`] is an element of one of the two input streams: a payload
//! plus a timestamp and a per-stream sequence number.  Once a tuple enters
//! the processing pipeline it is wrapped in a [`PipelineTuple`], which adds
//! the home-node assignment and the fresh/stored state of Section 4.2.3 of
//! the paper.

use crate::time::Timestamp;
use std::fmt;

/// Identifies one of the two input streams.
///
/// Tuples from [`Side::R`] flow through the pipeline from left to right
/// (node 0 towards node n-1); tuples from [`Side::S`] flow from right to
/// left, exactly as in Figure 6 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The "upper" stream R (enters at the leftmost node).
    R,
    /// The "lower" stream S (enters at the rightmost node).
    S,
}

impl Side {
    /// The opposite stream.
    #[inline]
    pub fn opposite(self) -> Side {
        match self {
            Side::R => Side::S,
            Side::S => Side::R,
        }
    }

    /// All sides, in a fixed order.
    pub const BOTH: [Side; 2] = [Side::R, Side::S];
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::R => write!(f, "R"),
            Side::S => write!(f, "S"),
        }
    }
}

/// Per-stream sequence number, assigned by the driver in arrival order.
///
/// Sequence numbers are unique and monotonically increasing within one
/// stream; they identify tuples in expiry, acknowledgement and
/// expedition-end messages without copying payloads around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The first sequence number handed out by a fresh driver.
    pub const FIRST: SeqNo = SeqNo(0);

    /// The next sequence number.
    #[inline]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Index of a processing node (CPU core) in the pipeline, `0..n`.
pub type NodeId = usize;

/// An element of an input stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamTuple<T> {
    /// Arrival timestamp (monotone within the stream).
    pub ts: Timestamp,
    /// Per-stream sequence number (monotone within the stream).
    pub seq: SeqNo,
    /// The user payload (join attributes and carried columns).
    pub payload: T,
}

impl<T> StreamTuple<T> {
    /// Creates a new stream tuple.
    #[inline]
    pub fn new(seq: SeqNo, ts: Timestamp, payload: T) -> Self {
        StreamTuple { ts, seq, payload }
    }

    /// Maps the payload, keeping timestamp and sequence number.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> StreamTuple<U> {
        StreamTuple {
            ts: self.ts,
            seq: self.seq,
            payload: f(self.payload),
        }
    }
}

/// A tuple travelling through the processing pipeline.
///
/// `home` is the node on which the tuple's stored copy lives (Step 1 of the
/// low-latency handshake join overview).  `stored` distinguishes *fresh*
/// tuples (which have not yet passed their home node) from *stored* tuples
/// (whose copy already rests in a node-local window); see Table 1 of the
/// paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineTuple<T> {
    /// The underlying stream tuple.
    pub tuple: StreamTuple<T>,
    /// Home node assignment.
    pub home: NodeId,
    /// True once the tuple has passed its home node.
    pub stored: bool,
}

impl<T> PipelineTuple<T> {
    /// Wraps a stream tuple for injection at a pipeline end.
    #[inline]
    pub fn fresh(tuple: StreamTuple<T>, home: NodeId) -> Self {
        PipelineTuple {
            tuple,
            home,
            stored: false,
        }
    }

    /// True if the tuple has not yet passed its home node.
    #[inline]
    pub fn is_fresh(&self) -> bool {
        !self.stored
    }

    /// Sequence number shorthand.
    #[inline]
    pub fn seq(&self) -> SeqNo {
        self.tuple.seq
    }

    /// Timestamp shorthand.
    #[inline]
    pub fn ts(&self) -> Timestamp {
        self.tuple.ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_opposite_is_involutive() {
        assert_eq!(Side::R.opposite(), Side::S);
        assert_eq!(Side::S.opposite(), Side::R);
        for side in Side::BOTH {
            assert_eq!(side.opposite().opposite(), side);
        }
    }

    #[test]
    fn seqno_ordering_and_next() {
        let a = SeqNo::FIRST;
        let b = a.next();
        assert!(b > a);
        assert_eq!(b, SeqNo(1));
        assert_eq!(format!("{}", b), "#1");
    }

    #[test]
    fn stream_tuple_map_preserves_metadata() {
        let t = StreamTuple::new(SeqNo(7), Timestamp::from_secs(3), 42_i64);
        let mapped = t.map(|v| v * 2);
        assert_eq!(mapped.seq, SeqNo(7));
        assert_eq!(mapped.ts, Timestamp::from_secs(3));
        assert_eq!(mapped.payload, 84);
    }

    #[test]
    fn pipeline_tuple_freshness() {
        let t = StreamTuple::new(SeqNo(0), Timestamp::ZERO, ());
        let mut p = PipelineTuple::fresh(t, 3);
        assert!(p.is_fresh());
        assert_eq!(p.home, 3);
        p.stored = true;
        assert!(!p.is_fresh());
    }

    #[test]
    fn display_side() {
        assert_eq!(format!("{}/{}", Side::R, Side::S), "R/S");
    }
}
