//! The threaded shard mesh: one router, `N` elastic chains.
//!
//! A single [`crate::elastic::ElasticPipeline`] scales by adding nodes,
//! but every tuple still traverses one chain, so its throughput ceiling
//! is the chain's frame rate.  The mesh adds the second axis from
//! ROADMAP's sharding item: the key space is hashed over `N` independent
//! elastic chains by a [`ShardRouter`], each chain keeps its own
//! collector, and the per-shard punctuated outputs are merged by
//! [`merge_punctuated_streams`] into one global stream whose punctuation
//! frontier is the minimum over shards.
//!
//! ## Routing
//!
//! Equi-joins co-partition: both streams hash by join key, so matching
//! tuples meet inside one shard and shards share nothing.  Keyless
//! predicates (bands) fragment-and-replicate: R is partitioned by a hash
//! of its sequence number and S (with its expiries) is broadcast, so each
//! `(r, s)` pair is examined in exactly the shard owning `r`.  Either
//! way the union of shard outputs equals the single-chain result set with
//! no duplicates — the conformance suite checks byte-identity against
//! the Kang oracle.
//!
//! ## Resharding
//!
//! A shard split doubles the chain count.  It reuses the chain-internal
//! fence discipline end to end: every chain fences (drains to
//! quiescence), the router adds one mask bit, and each parent chain's
//! nodes run `ExportAll` → hash-partition → silent `Install`: node `k`'s
//! rows split between the parent's node `k` and the (same-width) child
//! chain's node `k`.  Re-installing at the *same pipeline position* is
//! what keeps stream-monotone node types correct — the positional
//! met-invariant carries over verbatim, so no migration-hop matching is
//! due (and on a fragment-replicate merge, matching again would duplicate
//! results; hence the installs are silent).  Each chain then runs the
//! ordinary census → [`llhj_core::rebalance::RedistributionPlan`] →
//! multi-hop acked handoff pass to level its windows, and the mesh
//! resumes.  A merge is the inverse: the child chain is first scaled to
//! the parent's width, then exports node by node into the parent.

use crate::elastic::{ElasticOutcome, ElasticPipeline, NodeFactory, ScalePipeline};
use crate::options::PipelineOptions;
use llhj_core::driver::DriverSchedule;
use llhj_core::homing::HomePolicy;
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::OutputItem;
use llhj_core::result::TimedResult;
use llhj_core::shard::{merge_punctuated_streams, MeshPlan, RouteMode, ShardRouter};
use llhj_core::time::Timestamp;
use llhj_core::tuple::SeqNo;
use llhj_sync::thread;
use llhj_sync::time::Instant;

/// One completed mesh reshaping, for the outcome's reshard log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardEvent {
    /// Schedule events consumed when the reshaping fired.
    pub after_events: usize,
    /// Shard count before.
    pub from_shards: usize,
    /// Shard count after.
    pub to_shards: usize,
    /// Per-shard chain width after the reshaping.
    pub width: usize,
    /// Window tuples that crossed a shard boundary (split halves moving
    /// to a child, or child windows folding back into a parent).
    pub moved_tuples: usize,
}

/// Everything measured during one mesh run.
#[derive(Debug)]
pub struct MeshOutcome<R, S> {
    /// All results from every shard (collection order within a shard,
    /// shards concatenated; use [`MeshOutcome::result_keys`] to compare
    /// with an oracle).
    pub results: Vec<TimedResult<R, S>>,
    /// The merged punctuated output stream (empty unless `punctuate`).
    pub output: Vec<OutputItem<TimedResult<R, S>>>,
    /// Every reshaping the mesh went through, in order.
    pub reshard_log: Vec<ReshardEvent>,
    /// Final shard count.
    pub shards: usize,
    /// Final per-shard chain widths.
    pub widths: Vec<usize>,
}

impl<R, S> MeshOutcome<R, S> {
    /// Sorted `(r_seq, s_seq)` result keys for comparison with the oracle.
    pub fn result_keys(&self) -> Vec<(SeqNo, SeqNo)> {
        let mut keys: Vec<_> = self.results.iter().map(|t| t.result.key()).collect();
        keys.sort_unstable();
        keys
    }
}

/// A live mesh of elastic chains behind one key-partitioning router.
pub struct MeshPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    router: ShardRouter<R, S, P>,
    chains: Vec<ElasticPipeline<R, S, P, H>>,
    factory: NodeFactory<R, S>,
    predicate: P,
    policy: H,
    options: PipelineOptions,
    /// Outcomes of chains retired by shard merges; their output streams
    /// join the final frontier merge.
    retired: Vec<ElasticOutcome<R, S>>,
    reshard_log: Vec<ReshardEvent>,
    started: Instant,
}

impl<R, S, P, H> MeshPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    /// Deploys `shards` chains (a non-zero power of two) of `width` nodes
    /// each.  `mode` must be a routing the predicate supports — use
    /// [`RouteMode::for_predicate`] unless a test wants to force the
    /// fragment-replicate fallback onto an equi-join.
    pub fn new(
        shards: usize,
        width: usize,
        factory: NodeFactory<R, S>,
        predicate: P,
        policy: H,
        mode: RouteMode,
        options: PipelineOptions,
    ) -> Self {
        assert!(
            mode == RouteMode::FragmentReplicate || predicate.supports_index(),
            "co-partitioning requires a predicate with both equi-key extractors"
        );
        let router = ShardRouter::new(predicate.clone(), mode, shards);
        let chains = (0..shards)
            .map(|_| {
                ElasticPipeline::new(
                    width,
                    factory.clone(),
                    predicate.clone(),
                    policy.clone(),
                    options.clone(),
                )
            })
            .collect();
        MeshPipeline {
            router,
            chains,
            factory,
            predicate,
            policy,
            options,
            retired: Vec::new(),
            reshard_log: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.chains.len()
    }

    /// The reshard log so far.
    pub fn reshard_log(&self) -> &[ReshardEvent] {
        &self.reshard_log
    }

    /// Real-time pacing before injecting an event scheduled at `at`; a
    /// plain wait (the mesh driver has no flush-slicing or controller).
    fn pace(&self, at: Timestamp) {
        let target = self
            .options
            .stream_to_wall(at.saturating_since(Timestamp::ZERO));
        if target.is_zero() {
            return;
        }
        let deadline = self.started + target;
        let now = Instant::now();
        if now < deadline {
            thread::sleep(deadline - now);
        }
    }

    /// One shard split: every chain doubles into itself plus a same-width
    /// child.  Returns the tuples moved across shard boundaries.
    fn split_once(&mut self) -> usize {
        let n = self.chains.len();
        for chain in &mut self.chains {
            chain.fence_for_reshard();
        }
        self.router.split();
        let mut moved = 0;
        for p in 0..n {
            let width = self.chains[p].nodes();
            // The child starts at the SAME width as its parent: node `k`'s
            // moving rows re-enter at position `k`, preserving positional
            // invariants; the per-chain rebalance below levels both chains
            // afterwards.
            let mut child = ElasticPipeline::new(
                width,
                self.factory.clone(),
                self.predicate.clone(),
                self.policy.clone(),
                self.options.clone(),
            );
            let segments = self.chains[p].export_all_segments();
            for (k, segment) in segments.into_iter().enumerate() {
                let (keep, moving) = self.router.split_segment(p, segment);
                moved += moving.len();
                self.chains[p].install_segment(k, keep);
                child.install_segment(k, moving);
            }
            self.chains[p].rebalance_fenced();
            child.rebalance_fenced();
            // Shard ids: child of parent `p` is `p + n` — pushing parents'
            // children in order lands each at exactly that index.
            self.chains.push(child);
        }
        moved
    }

    /// One shard merge: each child chain folds back into its parent.
    /// Returns the tuples moved across shard boundaries.
    fn merge_once(&mut self) -> usize {
        let n = self.chains.len() / 2;
        // Equalize widths first (scale_to fences internally): the child's
        // node `k` must land on an existing parent node `k`.
        for p in 0..n {
            let width = self.chains[p].nodes();
            self.chains[n + p].scale_to(width);
        }
        for chain in &mut self.chains {
            chain.fence_for_reshard();
        }
        self.router.merge();
        let mut moved = 0;
        let children = self.chains.split_off(n);
        for (p, mut child) in children.into_iter().enumerate() {
            let segments = child.export_all_segments();
            for (k, segment) in segments.into_iter().enumerate() {
                // Under fragment-replicate the child's S rows are broadcast
                // copies of the parent's own — the router drops them here
                // (installing them would double the S window and duplicate
                // results).
                let segment = self.router.merge_segment(segment);
                moved += segment.len();
                self.chains[p].install_segment(k, segment);
            }
            self.chains[p].rebalance_fenced();
            self.retired.push(child.finish());
        }
        moved
    }

    /// Reshapes the mesh to `target_shards` shards of `width` nodes each,
    /// by repeated splits or merges plus per-chain resizes.
    fn reshape(&mut self, target_shards: usize, width: usize, at_event: usize) {
        assert!(
            target_shards.is_power_of_two(),
            "shard count must be a power of two, got {target_shards}"
        );
        let from = self.chains.len();
        let mut moved = 0;
        while self.chains.len() < target_shards {
            moved += self.split_once();
        }
        while self.chains.len() > target_shards {
            moved += self.merge_once();
        }
        let mut width_changed = false;
        for chain in &mut self.chains {
            if chain.nodes() != width {
                chain.scale_to(width);
                width_changed = true;
            }
        }
        if from != target_shards || width_changed {
            self.reshard_log.push(ReshardEvent {
                after_events: at_event,
                from_shards: from,
                to_shards: target_shards,
                width,
                moved_tuples: moved,
            });
        }
    }

    /// Replays a driver schedule through the mesh, firing the plan's
    /// reshapings at their event indexes.  Call once; then
    /// [`MeshPipeline::finish`].
    pub fn run_schedule(&mut self, schedule: &DriverSchedule<R, S>, plan: &MeshPlan) {
        let mut steps = plan.steps.iter().peekable();
        for (idx, event) in schedule.events().iter().enumerate() {
            while let Some(step) = steps.next_if(|s| s.after_events <= idx) {
                self.reshape(step.shards, step.width, idx);
            }
            self.pace(event.at);
            let route = self.router.route(&event.event);
            for shard in route.targets(self.chains.len()) {
                self.chains[shard].inject_routed(event);
            }
        }
        // Trailing steps (at or past the schedule end) still run, exactly
        // like a chain-level ScalePlan's.
        let trailing: Vec<_> = steps.copied().collect();
        for step in trailing {
            self.reshape(step.shards, step.width, schedule.events().len());
        }
    }

    /// Drains every chain and returns the merged outcome.
    pub fn finish(mut self) -> MeshOutcome<R, S> {
        let mut outcomes = std::mem::take(&mut self.retired);
        let mut widths = Vec::with_capacity(self.chains.len());
        for chain in self.chains.drain(..) {
            widths.push(chain.nodes());
            outcomes.push(chain.finish());
        }
        let shards = widths.len();
        let mut results = Vec::new();
        let mut streams = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            results.extend(outcome.results);
            streams.push(outcome.output);
        }
        MeshOutcome {
            results,
            output: merge_punctuated_streams(streams),
            reshard_log: self.reshard_log,
            shards,
            widths,
        }
    }
}

/// Replays `schedule` through a mesh of `shards` chains of `width` nodes,
/// reshaping at the plan's event indexes, and returns the merged outcome.
/// The convenience wrapper the conformance suite and `bench_shard` use.
#[allow(clippy::too_many_arguments)]
pub fn run_mesh_pipeline<R, S, P, H>(
    shards: usize,
    width: usize,
    factory: NodeFactory<R, S>,
    predicate: P,
    policy: H,
    mode: RouteMode,
    schedule: &DriverSchedule<R, S>,
    plan: &MeshPlan,
    options: &PipelineOptions,
) -> MeshOutcome<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    let mut mesh = MeshPipeline::new(
        shards,
        width,
        factory,
        predicate,
        policy,
        mode,
        options.clone(),
    );
    mesh.run_schedule(schedule, plan);
    mesh.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::{llhj_factory, llhj_indexed_factory};
    use crate::options::Pacing;
    use llhj_baselines::run_kang;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::{EquiPredicate, FnPredicate};
    use llhj_core::punctuation::verify_punctuated_stream;
    use llhj_core::time::TimeDelta;
    use llhj_core::window::WindowSpec;

    type KeyFn = fn(&u32) -> u64;

    fn equi() -> EquiPredicate<KeyFn, KeyFn> {
        fn key(v: &u32) -> u64 {
            *v as u64
        }
        EquiPredicate::new(key as fn(&u32) -> u64, key as fn(&u32) -> u64)
    }

    fn band() -> FnPredicate<fn(&u32, &u32) -> bool> {
        fn near(r: &u32, s: &u32) -> bool {
            r.abs_diff(*s) <= 1
        }
        FnPredicate(near as fn(&u32, &u32) -> bool)
    }

    fn schedule(tuples: u64, window_ms: u64) -> DriverSchedule<u32, u32> {
        let r: Vec<_> = (0..tuples)
            .map(|i| (Timestamp::from_millis(i), (i % 13) as u32))
            .collect();
        let s: Vec<_> = (0..tuples)
            .map(|i| (Timestamp::from_millis(i), (i % 17) as u32))
            .collect();
        DriverSchedule::build(
            r,
            s,
            WindowSpec::Time(TimeDelta::from_millis(window_ms)),
            WindowSpec::Time(TimeDelta::from_millis(window_ms)),
        )
    }

    fn opts() -> PipelineOptions {
        // Real-time pacing, like every conformance test in the repo:
        // unpaced replays let expiry messages overtake tuples that are
        // still travelling (see [`Pacing::Unpaced`]), so exact window
        // semantics require the paced driver.
        PipelineOptions {
            batch_size: 4,
            punctuate: true,
            pacing: Pacing::RealTime { speedup: 1.0 },
            ..Default::default()
        }
    }

    #[test]
    fn co_partitioned_mesh_matches_the_oracle() {
        let sched = schedule(300, 150);
        let oracle = run_kang(equi(), &sched);
        let outcome = run_mesh_pipeline(
            2,
            2,
            llhj_indexed_factory(equi()),
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            &sched,
            &MeshPlan::none(),
            &opts(),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.shards, 2);
        verify_punctuated_stream(&outcome.output, |t| t.result.ts())
            .expect("merged stream must stay valid");
    }

    #[test]
    fn fragment_replicate_mesh_matches_the_oracle_without_duplicates() {
        let sched = schedule(300, 150);
        let oracle = run_kang(band(), &sched);
        let outcome = run_mesh_pipeline(
            4,
            2,
            llhj_factory(band()),
            band(),
            RoundRobin,
            RouteMode::FragmentReplicate,
            &sched,
            &MeshPlan::none(),
            &opts(),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
    }

    #[test]
    fn mid_run_split_and_merge_preserve_the_result_set() {
        let sched = schedule(400, 150);
        let oracle = run_kang(equi(), &sched);
        let events = sched.events().len();
        let plan = MeshPlan::from_steps(&[(events / 3, 4, 2), (2 * events / 3, 2, 2)]);
        let outcome = run_mesh_pipeline(
            2,
            2,
            llhj_indexed_factory(equi()),
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            &sched,
            &plan,
            &opts(),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.shards, 2);
        assert_eq!(outcome.reshard_log.len(), 2);
        assert!(
            outcome.reshard_log[0].moved_tuples > 0,
            "a loaded split must move window state into the child shards"
        );
    }
}
