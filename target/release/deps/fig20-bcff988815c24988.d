/root/repo/target/release/deps/fig20-bcff988815c24988.d: crates/bench/src/bin/fig20.rs

/root/repo/target/release/deps/fig20-bcff988815c24988: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
