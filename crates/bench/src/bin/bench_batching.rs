//! Runs the batching sweep on the threaded runtime and the simulator,
//! prints the report and writes the `BENCH_batching.json` snapshot.

use llhj_bench::experiments::batching;
use llhj_bench::Scale;

fn main() {
    let report = batching::run(&Scale::default(), &[1, 8, 64, 256]);
    print!("{}", report.report);
    let json = report.to_json();
    let path = "BENCH_batching.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    if let (Some(fine), Some(coarse)) = (report.throughput_at(1), report.throughput_at(64)) {
        println!("batch 64 speedup over batch 1: {:.2}x", coarse / fine);
    }
}
