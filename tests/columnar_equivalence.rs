//! Columnar/scalar equivalence: the branch-free band scan and the
//! offset-resolving hash probe must be *byte-identical* to the scalar
//! closure path — same matches, in the same order, with the same reported
//! comparison counts — for band, equi and composite predicates, with and
//! without in-expedition tuples.
//!
//! Three layers of evidence:
//!
//! 1. a seeded property sweep directly on [`ColumnarWindow`], comparing
//!    `scan_band` against `scan_matches` over random windows and bands;
//! 2. full simulations where the same workload runs once with the real
//!    predicate (band path engaged) and once wrapped in [`ScalarOnly`]
//!    (every acceleration hook hidden), which must agree exactly;
//! 3. the Kang oracle — which deliberately never takes the band path —
//!    as the cross-substrate conformance baseline.

use handshake_join::baselines::run_kang;
use handshake_join::prelude::*;
use handshake_join::workload::WorkloadRng;
use llhj_core::store::ColumnarWindow;
use llhj_core::tuple::StreamTuple;

fn seeded_window(
    seed: u64,
    n: u64,
    flagged_period: u64,
) -> (ColumnarWindow<i64>, Vec<(u64, i64, bool)>) {
    let mut rng = WorkloadRng::seed_from_u64(seed);
    let mut w = ColumnarWindow::new();
    let mut rows = Vec::new();
    let mut seq = 0u64;
    for i in 0..n {
        seq += 1 + rng.next_u64() % 3; // gaps in the sequence space
        let attr = rng.gen_range_u32(0, 1_000) as i64 - 500;
        let flagged = flagged_period != 0 && i % flagged_period == 0;
        w.insert_with_attr(
            StreamTuple::new(SeqNo(seq), Timestamp::from_millis(seq), attr),
            attr,
            flagged,
        );
        rows.push((seq, attr, flagged));
    }
    (w, rows)
}

/// Layer 1: the property sweep.  Random windows (some with expedition
/// flags, some with tombstones from random removals), random bands, both
/// expedition filters — results and comparison counts must match the
/// scalar path exactly, in scan order.
#[test]
fn band_scan_is_byte_identical_to_scalar_scan() {
    for seed in 0..8u64 {
        let flagged_period = [0, 3, 1][seed as usize % 3];
        let (mut w, rows) = seeded_window(seed, 400, flagged_period);
        // Punch random tombstones into half the sweeps.
        let mut rng = WorkloadRng::seed_from_u64(seed ^ 0xdead);
        if seed % 2 == 0 {
            for &(seq, _, _) in rows.iter().filter(|_| rng.gen_unit_f64() < 0.3) {
                w.remove(SeqNo(seq));
            }
        }
        w.check_invariants().unwrap();
        for _ in 0..25 {
            let lo = rng.gen_range_u32(0, 1_000) as i64 - 500;
            let hi = lo + rng.gen_range_u32(0, 120) as i64;
            let band = BandSpec { lo, hi };
            for only_finished in [false, true] {
                let mut scalar = Vec::new();
                let scalar_cmp = w.scan_matches(
                    only_finished,
                    |a| band.contains(*a),
                    |t| scalar.push((t.seq, t.payload)),
                );
                let mut columnar = Vec::new();
                let columnar_cmp = w.scan_band(
                    band,
                    only_finished,
                    true,
                    |_| true,
                    |t| columnar.push((t.seq, t.payload)),
                );
                assert_eq!(scalar, columnar, "seed {seed} band {band:?}");
                assert_eq!(scalar_cmp, columnar_cmp, "comparison counts diverge");
                // Composite (non-exact) form: an extra parity residual.
                let mut scalar_res = Vec::new();
                w.scan_matches(
                    only_finished,
                    |a| band.contains(*a) && a.rem_euclid(2) == 0,
                    |t| scalar_res.push(t.seq),
                );
                let mut columnar_res = Vec::new();
                w.scan_band(
                    band,
                    only_finished,
                    false,
                    |a| a.rem_euclid(2) == 0,
                    |t| columnar_res.push(t.seq),
                );
                assert_eq!(scalar_res, columnar_res, "residual path diverges");
            }
        }
    }
}

fn band_schedule(seed: u64) -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(130.0, TimeDelta::from_secs(10), 350, seed);
    band_join_schedule(
        &workload,
        WindowSpec::time_secs(3),
        WindowSpec::time_secs(3),
    )
}

fn run<P>(
    algorithm: Algorithm,
    pred: P,
    schedule: &llhj_core::DriverSchedule<RTuple, STuple>,
) -> SimReport<RTuple, STuple>
where
    P: JoinPredicate<RTuple, STuple> + Clone + Send + Sync + 'static,
{
    let mut cfg = SimConfig::new(4, algorithm);
    cfg.window_r = WindowSpec::time_secs(3);
    cfg.window_s = WindowSpec::time_secs(3);
    cfg.expected_rate_per_sec = 130.0;
    cfg.batch_size = 16;
    cfg.latency_bucket = 1_000_000;
    run_simulation(&cfg, pred, RoundRobin, schedule)
}

/// Layer 2+3: whole joins through both node types.  `ScalarOnly` hides the
/// band form, so the same simulation exercises the scalar fallback; the
/// results, the comparison totals (the count is layout-independent by
/// construction) and the Kang oracle must all agree.
#[test]
fn simulated_joins_agree_between_band_and_scalar_paths() {
    for seed in [11u64, 23] {
        let schedule = band_schedule(seed);
        let pred = BandPredicate::default();
        let oracle = run_kang(pred, &schedule);
        assert!(oracle.results.len() > 10, "degenerate workload");
        for algorithm in [Algorithm::Llhj, Algorithm::Hsj] {
            let columnar = run(algorithm, pred, &schedule);
            let scalar = run(algorithm, ScalarOnly(pred), &schedule);
            assert_eq!(
                columnar.result_keys(),
                scalar.result_keys(),
                "{algorithm:?} seed {seed}: band path diverges from scalar path"
            );
            assert_eq!(
                columnar.total_comparisons(),
                scalar.total_comparisons(),
                "{algorithm:?} seed {seed}: comparison counts must be layout-independent"
            );
            assert_eq!(
                columnar.result_keys(),
                oracle.result_keys(),
                "{algorithm:?} seed {seed}: conformance with the Kang oracle"
            );
        }
    }
}

/// The equi-join: the indexed node takes the offset-resolving probe, the
/// unindexed one the point-band scan, the `ScalarOnly` run the closure
/// scan.  All three must produce the oracle's result set.
#[test]
fn equi_join_probe_band_and_scalar_paths_agree() {
    let workload = EquiJoinWorkload {
        rate_per_sec: 140.0,
        duration: TimeDelta::from_secs(8),
        domain: 250,
        seed: 17,
    };
    let window = WindowSpec::time_secs(3);
    let schedule = equi_join_schedule(&workload, window, window);
    let oracle = run_kang(EquiXaPredicate, &schedule);
    assert!(oracle.results.len() > 10, "degenerate workload");

    let run = |algorithm, scalar_only: bool| {
        let mut cfg = SimConfig::new(4, algorithm);
        cfg.window_r = window;
        cfg.window_s = window;
        cfg.expected_rate_per_sec = 140.0;
        cfg.batch_size = 16;
        cfg.latency_bucket = 1_000_000;
        if scalar_only {
            run_simulation(&cfg, ScalarOnly(EquiXaPredicate), RoundRobin, &schedule)
        } else {
            run_simulation(&cfg, EquiXaPredicate, RoundRobin, &schedule)
        }
    };
    let probed = run(Algorithm::LlhjIndexed, false);
    let banded = run(Algorithm::Llhj, false);
    let scalar = run(Algorithm::Llhj, true);
    assert_eq!(probed.result_keys(), oracle.result_keys());
    assert_eq!(banded.result_keys(), oracle.result_keys());
    assert_eq!(scalar.result_keys(), oracle.result_keys());
    assert_eq!(
        banded.total_comparisons(),
        scalar.total_comparisons(),
        "the point-band scan reports scalar-equivalent comparison counts"
    );
    assert!(
        probed.total_comparisons() * 5 < scalar.total_comparisons(),
        "the offset probe must actually cut work: {} vs {}",
        probed.total_comparisons(),
        scalar.total_comparisons()
    );
}
