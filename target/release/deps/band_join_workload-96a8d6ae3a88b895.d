/root/repo/target/release/deps/band_join_workload-96a8d6ae3a88b895.d: tests/band_join_workload.rs

/root/repo/target/release/deps/band_join_workload-96a8d6ae3a88b895: tests/band_join_workload.rs

tests/band_join_workload.rs:
