//! The threaded pipeline runtime.
//!
//! This module deploys a handshake-join pipeline the way the paper does on
//! its 48-core machine: one worker thread per processing node, neighbouring
//! workers connected by point-to-point FIFO links, a driver thread that
//! replays the window driver's schedule, and a collector thread that
//! vacuums the per-worker result queues and (optionally) emits
//! punctuations derived from the high-water marks (Figure 15 / 16 of the
//! paper).
//!
//! The links carry [`MessageBatch`] *frames* rather than individual
//! messages: the driver groups `batch_size` tuples into one entry frame,
//! and every worker drains the complete output of one frame into one
//! outgoing frame per direction.  One channel operation (lock, wake-up) is
//! thus amortised over the whole run of messages — the granularity
//! trade-off of the paper's Section 2 made configurable.  A `batch_size`
//! of 1 degenerates to one message per frame and reproduces the eager
//! per-tuple transport exactly, FIFO order and quiescence protocol
//! included.
//!
//! The worker threads, entry batching and collector are the *shared*
//! execution machinery of the crate-private `exec` module — the same code the elastic
//! pipeline deploys.  A fixed pipeline is an elastic pipeline that never
//! receives a scale command, so the two paths cannot drift (the ROADMAP
//! debt PR 4 paid down).  What stays here is only the fixed deployment:
//! channel wiring for a construction-time node count, the schedule replay
//! driver, and the wall-clock flush-timer thread.
//!
//! The workers execute exactly the same node state machines as the
//! discrete-event simulator, so the produced result *set* is identical; the
//! runtime is what you would deploy on real hardware, while the simulator
//! is what the evaluation harness uses to sweep core counts beyond the host
//! machine.

use crate::channel::{bounded, spsc_bounded, spsc_unbounded, unbounded, Receiver, Sender, WaitSet};
use crate::exec::{
    spawn_collector, CollectorConfig, CoreMap, EntryState, InFlight, StreamClock, Worker,
    WorkerShared, WorkerWiring,
};
use crate::options::{Pacing, PipelineOptions, Transport};
use llhj_core::driver::{DriverSchedule, Injector, StreamEvent};
use llhj_core::homing::HomePolicy;
use llhj_core::message::MessageBatch;
use llhj_core::node::PipelineNode;
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::{HighWaterMarks, OutputItem};
use llhj_core::result::TimedResult;
use llhj_core::stats::{LatencyPoint, LatencySummary, NodeCounters};
use llhj_core::time::Timestamp;
use llhj_core::tuple::SeqNo;
use llhj_sync::sync::atomic::{AtomicBool, Ordering};
use llhj_sync::sync::{Arc, Mutex};
use llhj_sync::thread;
use llhj_sync::time::{Duration, Instant};

/// Everything measured during one threaded run.
#[derive(Debug)]
pub struct RunOutcome<R, S> {
    /// All produced results, in collection order.
    pub results: Vec<TimedResult<R, S>>,
    /// The punctuated output stream (empty unless `punctuate` was set).
    pub output: Vec<OutputItem<TimedResult<R, S>>>,
    /// Per-node work counters, indexed by node id.
    pub counters: Vec<NodeCounters>,
    /// Latency statistics (meaningful only for paced runs).
    pub latency: LatencySummary,
    /// Latency time series.
    pub latency_series: Vec<LatencyPoint>,
    /// Wall-clock time the run took.
    pub elapsed: Duration,
    /// Number of punctuations emitted.
    pub punctuation_count: u64,
    /// Number of R/S arrivals actually injected: the schedule's counts,
    /// unless the run was cancelled mid-replay (then the injected prefix).
    pub arrivals_per_stream: (usize, usize),
    /// Number of frames the driver injected into the pipeline ends.
    pub frames_injected: u64,
    /// Number of frame buffers allocated after start-up — by workers whose
    /// arena pool ran dry and by the driver's entry batchers when the
    /// flow-back rings had nothing to recycle.  Bounded (instead of
    /// growing with the frame count) when the arena circulation works.
    pub batch_allocs: u64,
    /// Number of times a worker woke up (or polled) and found neither of
    /// its inputs ready.  Under event-driven scheduling this stays near
    /// zero; a busy-polling loop accumulates one per idle poll interval.
    pub idle_wakeups: u64,
    /// True if the run was interrupted by [`PipelineOptions::cancel`]
    /// before the whole schedule was replayed.  The results cover exactly
    /// the injected prefix of the schedule (the pipeline is drained before
    /// returning, so nothing in flight is lost).
    pub cancelled: bool,
}

impl<R, S> RunOutcome<R, S> {
    /// Sorted `(r_seq, s_seq)` result keys for comparison with the oracle.
    pub fn result_keys(&self) -> Vec<(SeqNo, SeqNo)> {
        let mut keys: Vec<_> = self.results.iter().map(|t| t.result.key()).collect();
        keys.sort_unstable();
        keys
    }

    /// Observed throughput in tuples per second per stream (wall clock).
    pub fn throughput_per_stream(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.arrivals_per_stream.0 as f64 / self.elapsed.as_secs_f64()
    }

    /// Total predicate evaluations across all workers.
    pub fn total_comparisons(&self) -> u64 {
        self.counters.iter().map(|c| c.comparisons).sum()
    }
}

/// Runs a pipeline of the given nodes over a complete driver schedule and
/// waits for all results.
///
/// `nodes` must contain one [`PipelineNode`] per pipeline position, in
/// order (use [`crate::llhj_nodes`] / [`crate::hsj_nodes`] to build them).
pub fn run_pipeline<R, S, P, H>(
    nodes: Vec<Box<dyn PipelineNode<R, S>>>,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    options: &PipelineOptions,
) -> RunOutcome<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Send,
    H: HomePolicy,
{
    let n = nodes.len();
    assert!(n > 0, "pipeline needs at least one node");
    options
        .validate()
        .unwrap_or_else(|err| panic!("invalid PipelineOptions: {err}"));
    let started = Instant::now();

    let injector = Injector::new(predicate, policy, n);
    let hwm = HighWaterMarks::new();
    let stop = Arc::new(AtomicBool::new(false));
    // Bumped by the driver after `stop` is set so every parked thread
    // (workers via their own wait sets, the collector via this one)
    // re-checks the flag immediately instead of timing out.
    let stop_signal = WaitSet::new();
    let in_flight = Arc::new(InFlight::new());
    let clock = Arc::new(StreamClock::new(options.pacing));

    // Core placement: workers take slots 0..n-1, the collector slot n,
    // the driver slot n+1.  `None` (pinning off, too few cores, non-Linux,
    // model build) leaves every thread on the scheduler's default policy.
    let core_map = CoreMap::new(options.pin_cores, n + 2, options.pin_core_offset);

    // Channel wiring: ltr[k] is node k's left input, rtl[k] its right
    // input; every link carries MessageBatch frames.
    //
    // The two channels entering the pipeline from the driver are bounded so
    // the driver experiences backpressure (it can never run ahead of the
    // pipeline by more than `channel_capacity` frames).  The links
    // *between* workers are unbounded: with bounded links a pair of
    // neighbours could block on sending to each other simultaneously (R
    // traffic going right, acknowledgements and S traffic going left) and
    // deadlock; admission control at the driver keeps the actual occupancy
    // of the inner links small.
    //
    // Every data edge here is SPSC by construction, so under
    // `Transport::Ring` (the default) the links are lock-free ring
    // channels.  Ring consumers bind their wait set at construction (the
    // lock-free notify path cannot look one up later), which is why the
    // per-worker wait sets are created before any channel.
    type FrameTx<R, S> = Sender<MessageBatch<R, S>>;
    type FrameRx<R, S> = Receiver<MessageBatch<R, S>>;
    let waitsets: Vec<WaitSet> = (0..n).map(|_| WaitSet::new()).collect();
    let ring = options.transport == Transport::Ring;
    let entry_link = |waiter: &WaitSet| -> (FrameTx<R, S>, FrameRx<R, S>) {
        if ring {
            spsc_bounded(options.channel_capacity, Some(waiter))
        } else {
            bounded(options.channel_capacity)
        }
    };
    let inner_link = |waiter: &WaitSet| -> (FrameTx<R, S>, FrameRx<R, S>) {
        if ring {
            spsc_unbounded(options.ring_capacity, Some(waiter))
        } else {
            unbounded()
        }
    };
    let mut ltr_tx: Vec<Option<FrameTx<R, S>>> = Vec::with_capacity(n);
    let mut ltr_rx: Vec<Option<FrameRx<R, S>>> = Vec::with_capacity(n);
    let mut rtl_tx: Vec<Option<FrameTx<R, S>>> = Vec::with_capacity(n);
    let mut rtl_rx: Vec<Option<FrameRx<R, S>>> = Vec::with_capacity(n);
    for (k, waitset) in waitsets.iter().enumerate() {
        let (tx, rx) = if k == 0 {
            entry_link(waitset)
        } else {
            inner_link(waitset)
        };
        ltr_tx.push(Some(tx));
        ltr_rx.push(Some(rx));
        let (tx, rx) = if k == n - 1 {
            entry_link(waitset)
        } else {
            inner_link(waitset)
        };
        rtl_tx.push(Some(tx));
        rtl_rx.push(Some(rx));
    }
    let driver_left_tx = ltr_tx[0].take().expect("entry channel");
    let driver_right_tx = rtl_tx[n - 1].take().expect("entry channel");

    // Per-worker result queues (Figure 15).  SPSC (one worker, the
    // collector), so the ring transport covers them too; the collector
    // polls on its vacuum interval rather than parking per result, so no
    // wait set is bound (ring notifies then hit a set nobody waits on —
    // a cheap no-op).
    let mut result_tx: Vec<Sender<TimedResult<R, S>>> = Vec::with_capacity(n);
    let mut result_rx: Vec<Receiver<TimedResult<R, S>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = if ring {
            spsc_unbounded(options.ring_capacity, None)
        } else {
            unbounded()
        };
        result_tx.push(tx);
        result_rx.push(rx);
    }

    // Frame-buffer flow-back (the per-worker arena's driver leg): each
    // direction's sink node returns drained entry buffers to the driver's
    // batcher over a small best-effort ring.  Pure capacity recycling —
    // a dropped or missing buffer only costs an allocation.
    const RECYCLE_DEPTH: usize = 8;
    let (recycle_ltr_tx, recycle_ltr_rx) = spsc_bounded(RECYCLE_DEPTH, None);
    let (recycle_rtl_tx, recycle_rtl_rx) = spsc_bounded(RECYCLE_DEPTH, None);
    // Surplus daisy chains between neighbours: buffers end their life at
    // whatever node their last message terminates on (acknowledgement
    // frames at the rightmost node, expedition-end markers at the home
    // node), while new frames originate at the opposite end — so surplus
    // LTR buffers must migrate leftward to node 0 and surplus RTL buffers
    // rightward to node n−1, hop by hop (each hop is SPSC by
    // construction; a single ring would be MPSC).  Middle nodes relay
    // opportunistically, one buffer per handled frame.
    let mut xfer_ltr_tx: Vec<Option<_>> = Vec::new(); // node k+1 -> node k
    let mut xfer_ltr_rx: Vec<Option<_>> = Vec::new();
    let mut xfer_rtl_tx: Vec<Option<_>> = Vec::new(); // node k -> node k+1
    let mut xfer_rtl_rx: Vec<Option<_>> = Vec::new();
    for _ in 0..n.saturating_sub(1) {
        let (lt, lr) = spsc_bounded(RECYCLE_DEPTH, None);
        let (rt, rr) = spsc_bounded(RECYCLE_DEPTH, None);
        xfer_ltr_tx.push(Some(lt));
        xfer_ltr_rx.push(Some(lr));
        xfer_rtl_tx.push(Some(rt));
        xfer_rtl_rx.push(Some(rr));
    }

    // ---------------- workers (shared exec machinery) ----------------
    let mut worker_handles = Vec::with_capacity(n);
    let mut waitsets_iter = waitsets.into_iter();
    for (k, node) in nodes.into_iter().enumerate() {
        let left_rx = ltr_rx[k].take().expect("left input");
        let right_rx = rtl_rx[k].take().expect("right input");
        let to_right = if k + 1 < n {
            ltr_tx[k + 1].take()
        } else {
            None
        };
        let to_left = if k > 0 { rtl_tx[k - 1].take() } else { None };
        let shared = WorkerShared {
            hwm: Arc::clone(&hwm),
            clock: Arc::clone(&clock),
            stop: Arc::clone(&stop),
            in_flight: Arc::clone(&in_flight),
            results: result_tx[k].clone(),
            // No metrics bus on the fixed path: nothing samples it, and
            // the instrumentation would tax every frame for nothing.
            busy_ns: None,
        };
        let mut wiring = WorkerWiring::new(waitsets_iter.next().expect("one wait set per worker"));
        wiring.pin_core = core_map.as_ref().map(|m| m.core(k));
        if k + 1 == n {
            wiring.recycle_ltr = Some(recycle_ltr_tx.clone());
        }
        if k == 0 {
            wiring.recycle_rtl = Some(recycle_rtl_tx.clone());
        }
        // Daisy-chain legs: LTR surplus flows leftward (node k sends on
        // edge k−1, receives on edge k), RTL surplus rightward (sends on
        // edge k, receives on edge k−1).
        if k > 0 {
            wiring.xfer_ltr = xfer_ltr_tx[k - 1].take();
            wiring.refill_rtl = xfer_rtl_rx[k - 1].take();
        }
        if k + 1 < n {
            wiring.refill_ltr = xfer_ltr_rx[k].take();
            wiring.xfer_rtl = xfer_rtl_tx[k].take();
        }
        worker_handles.push(Worker::spawn(
            k, n, node, left_rx, right_rx, to_left, to_right, shared, false, wiring,
        ));
    }
    drop(result_tx);
    drop(recycle_ltr_tx);
    drop(recycle_rtl_tx);

    // ---------------- collector (shared exec machinery) ----------------
    let collector_handle = spawn_collector(
        result_rx,
        Arc::clone(&stop),
        stop_signal.clone(),
        Arc::clone(&hwm),
        None,
        CollectorConfig {
            punctuate: options.punctuate,
            interval: options.collect_interval,
            latency_bucket: options.latency_bucket,
            pin_core: core_map.as_ref().map(|m| m.core(n)),
        },
    );

    // The driver (this thread) takes the last pin slot; its affinity is
    // restored before returning.
    if let Some(map) = &core_map {
        map.pin_current(n + 1);
    }

    // Entry-frame assembly state, shared between the driver and the flush
    // timer thread.
    let entry = {
        let mut state = EntryState::new(driver_left_tx, driver_right_tx);
        state.left.set_recycle(recycle_ltr_rx);
        state.right.set_recycle(recycle_rtl_rx);
        Arc::new(Mutex::new(state))
    };
    let timer_stop = WaitSet::new();

    // ---------------- flush timer ----------------
    // The driver's own timer check below only runs when it observes the
    // next schedule event — useless on a stream that goes silent, where
    // a partial frame would wait indefinitely.  A dedicated wall-clock
    // timer thread bounds that wait in real time: every half interval
    // it flushes any entry frame older than `flush_interval` of stream
    // time, regardless of schedule progress.  Only paced runs need it
    // (an unpaced driver never waits between events).
    let timer_handle = match (options.pacing, options.flush_interval) {
        (Pacing::RealTime { .. }, Some(interval)) => {
            let entry = Arc::clone(&entry);
            let in_flight = Arc::clone(&in_flight);
            let clock = Arc::clone(&clock);
            let timer_stop = timer_stop.clone();
            let period = (options.stream_to_wall(interval) / 2).max(Duration::from_micros(50));
            Some(thread::spawn(move || {
                // The driver notifies `timer_stop` exactly once, at
                // shutdown.  Snapshot the epoch *before* the loop: a
                // notify that lands while we are flushing (outside
                // `wait`) still differs from this snapshot, so the next
                // wait returns immediately instead of the bump being
                // absorbed by a per-iteration re-snapshot — which would
                // leave this thread looping forever and the driver
                // hanging in `join`.
                let seen = timer_stop.epoch();
                loop {
                    if timer_stop.wait(seen, period) {
                        // Epoch moved: shutdown.
                        return;
                    }
                    let now = clock.now();
                    entry
                        .lock()
                        .expect("entry state poisoned")
                        .flush_older_than(now, interval, &in_flight);
                }
            }))
        }
        _ => None,
    };

    // ---------------- driver (this thread) ----------------
    // The driver assembles the two entry frames; a frame is flushed when
    // it holds `batch_size` arrivals, when its stream has delivered its
    // last arrival (so the tail pays the normal batching delay rather
    // than waiting for trailing expiry events), or when the
    // `flush_interval` has elapsed since the frame started filling —
    // observed either here (on the next event) or by the timer thread
    // (in wall time, even if no event ever comes).
    // The pacing wait parks on the cancel token (a plain WaitSet wait
    // when no token is configured) instead of `thread::sleep`, so an
    // external cancel interrupts even a multi-second gap between
    // schedule events immediately (ROADMAP open item).
    let frames_injected;
    let mut idle_wakeups = 0u64;
    let mut cancelled = false;
    // Arrivals actually handed to the pipeline: equal to the schedule's
    // counts unless the run is cancelled mid-replay.
    let mut seen_r = 0usize;
    let mut seen_s = 0usize;
    let cancel = options.cancel.clone().unwrap_or_default();
    for event in schedule.events() {
        if cancel.is_cancelled() {
            cancelled = true;
            break;
        }
        if let Pacing::RealTime { .. } = options.pacing {
            let target = options.stream_to_wall(event.at.saturating_since(Timestamp::ZERO));
            let elapsed = started.elapsed();
            if target > elapsed && cancel.wait_until(started + target) {
                cancelled = true;
                break;
            }
        }
        clock.note_injection(event.at);

        let mut state = entry.lock().expect("entry state poisoned");
        let state = &mut *state;
        // Timer flush: a partial frame must not outwait the interval.
        if let Some(interval) = options.flush_interval {
            state.flush_older_than(event.at, interval, &in_flight);
        }

        match &event.event {
            StreamEvent::ArrivalR(r) => {
                state
                    .left
                    .push_arrival(injector.inject_r(r.clone()), event.at);
                seen_r += 1;
                if state.left.arrivals >= options.batch_size || seen_r == schedule.r_count() {
                    state.left.flush(&in_flight, &mut state.frames_injected);
                }
            }
            StreamEvent::ExpireS(seq) => {
                // An expiry must never overtake its own arrival still
                // parked in the opposite entry buffer (see the elastic
                // driver's `inject` for the full argument).
                if state.right.holds_pending(
                    |m| matches!(m, llhj_core::message::RightToLeft::ArrivalS(t) if t.tuple.seq == *seq),
                ) {
                    state.right.flush(&in_flight, &mut state.frames_injected);
                    // Workers never take the entry lock, so waiting here
                    // (with it held) cannot deadlock; the timer thread
                    // simply blocks on the lock until the wait returns.
                    in_flight.wait_for_quiescence();
                }
                state
                    .left
                    .push(llhj_core::message::LeftToRight::ExpiryS(*seq), event.at)
            }
            StreamEvent::ArrivalS(s) => {
                state
                    .right
                    .push_arrival(injector.inject_s(s.clone()), event.at);
                seen_s += 1;
                if state.right.arrivals >= options.batch_size || seen_s == schedule.s_count() {
                    state.right.flush(&in_flight, &mut state.frames_injected);
                }
            }
            StreamEvent::ExpireR(seq) => {
                if state.left.holds_pending(
                    |m| matches!(m, llhj_core::message::LeftToRight::ArrivalR(t) if t.tuple.seq == *seq),
                ) {
                    state.left.flush(&in_flight, &mut state.frames_injected);
                    in_flight.wait_for_quiescence();
                }
                state
                    .right
                    .push(llhj_core::message::RightToLeft::ExpiryR(*seq), event.at)
            }
        }
    }
    // Tail flush: whatever is still pending (trailing expiries).
    let mut batch_allocs;
    {
        let mut state = entry.lock().expect("entry state poisoned");
        state.flush_both(&in_flight);
        frames_injected = state.frames_injected;
        batch_allocs = state.left.fresh_allocs + state.right.fresh_allocs;
    }
    timer_stop.notify();
    if let Some(handle) = timer_handle {
        handle.join().expect("timer thread panicked");
    }

    // Wait for quiescence: no frame anywhere in the pipeline.
    in_flight.wait_for_quiescence();
    stop.store(true, Ordering::SeqCst);
    // Wake every parked thread so it observes the stop flag now rather
    // than at its next safety-net timeout.
    for handle in &worker_handles {
        handle.waitset.notify();
    }
    stop_signal.notify();

    let mut counters = vec![NodeCounters::default(); n];
    for (k, handle) in worker_handles.into_iter().enumerate() {
        let exit = handle.handle.join().expect("worker thread panicked");
        counters[k] = exit.counters;
        idle_wakeups += exit.idle_wakeups;
        batch_allocs += exit.batch_allocs;
    }
    let collected = collector_handle.join().expect("collector thread panicked");
    if core_map.is_some() {
        crate::exec::unpin_thread();
    }

    RunOutcome {
        results: collected.results,
        output: collected.output,
        counters,
        latency: collected.latency,
        latency_series: collected.series.finish(),
        elapsed: started.elapsed(),
        punctuation_count: collected.punctuation_count,
        arrivals_per_stream: (seen_r, seen_s),
        frames_injected,
        batch_allocs,
        idle_wakeups,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::llhj_nodes;
    use llhj_core::driver::DriverSchedule;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::FnPredicate;
    use llhj_core::time::TimeDelta;
    use llhj_core::window::WindowSpec;

    #[test]
    #[should_panic(expected = "invalid PipelineOptions")]
    fn run_pipeline_rejects_non_finite_speedup() {
        let pred = FnPredicate(|r: &u32, s: &u32| r == s);
        let schedule = DriverSchedule::build(
            vec![(Timestamp::from_millis(1), 1u32)],
            vec![(Timestamp::from_millis(1), 1u32)],
            WindowSpec::time_secs(1),
            WindowSpec::time_secs(1),
        );
        let opts = PipelineOptions {
            pacing: Pacing::RealTime { speedup: f64::NAN },
            ..Default::default()
        };
        let _ = run_pipeline(
            llhj_nodes(1, pred.clone()),
            pred,
            RoundRobin,
            &schedule,
            &opts,
        );
    }

    /// The ROADMAP open item the cancel token closes: a cancel arriving in
    /// the middle of a long pacing gap must interrupt the wait instead of
    /// sleeping the gap out.
    #[test]
    fn cancel_interrupts_a_long_pacing_gap() {
        use crate::channel::CancelToken;
        let pred = FnPredicate(|r: &u32, s: &u32| r == s);
        // One early pair, then a 30-second silence before the next event:
        // without the deadline-based wait the driver would sleep ~30 s.
        let mk = |v: u32| {
            vec![
                (Timestamp::from_millis(1), v),
                (Timestamp::from_secs(30), v + 1_000),
            ]
        };
        let schedule = DriverSchedule::build(
            mk(7),
            mk(7),
            WindowSpec::time_secs(60),
            WindowSpec::time_secs(60),
        );
        let cancel = CancelToken::new();
        let opts = PipelineOptions {
            batch_size: 1,
            pacing: Pacing::RealTime { speedup: 1.0 },
            cancel: Some(cancel.clone()),
            ..Default::default()
        };
        let canceller = thread::spawn({
            let cancel = cancel.clone();
            move || {
                thread::sleep(Duration::from_millis(100));
                cancel.cancel();
            }
        });
        let started = Instant::now();
        let outcome = run_pipeline(
            llhj_nodes(2, pred.clone()),
            pred,
            RoundRobin,
            &schedule,
            &opts,
        );
        canceller.join().unwrap();
        assert!(outcome.cancelled, "the run must report the interruption");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "cancel must interrupt the 30 s pacing gap, not sleep it out \
             (took {:?})",
            started.elapsed()
        );
        // The injected prefix (the first pair of each stream) was fully
        // processed before returning: nothing in flight was dropped.
        assert_eq!(
            outcome.result_keys(),
            vec![(llhj_core::tuple::SeqNo(0), llhj_core::tuple::SeqNo(0))]
        );
        // And the outcome reports what was actually injected, not the
        // full schedule (throughput numbers would otherwise be inflated).
        assert_eq!(outcome.arrivals_per_stream, (1, 1));
    }

    /// The reason the wall-clock timer thread exists: a stream that goes
    /// silent mid-run must not hold a partial entry frame until the driver
    /// happens to observe the next schedule event.
    #[test]
    fn flush_timer_bounds_latency_across_a_silent_gap() {
        let pred = FnPredicate(|r: &u32, s: &u32| r == s);
        // One matching pair right at the start, then ~700 ms of silence
        // before the streams resume.  The driver sleeps through the gap,
        // so only the timer thread can release the first frame.
        let mk = |v: u32| {
            vec![
                (Timestamp::from_millis(1), v),
                (Timestamp::from_millis(700), v + 1_000),
                (Timestamp::from_millis(710), v + 2_000),
            ]
        };
        let schedule = DriverSchedule::build(
            mk(7),
            mk(7),
            WindowSpec::time_secs(2),
            WindowSpec::time_secs(2),
        );
        let opts = PipelineOptions {
            // A batch far larger than the pre-gap tuple count: without the
            // timer the first frame stays partial for the whole gap.
            batch_size: 64,
            flush_interval: Some(TimeDelta::from_millis(10)),
            pacing: Pacing::RealTime { speedup: 1.0 },
            ..Default::default()
        };
        let outcome = run_pipeline(
            llhj_nodes(2, pred.clone()),
            pred,
            RoundRobin,
            &schedule,
            &opts,
        );
        let first = outcome
            .results
            .iter()
            .find(|t| t.result.key() == (llhj_core::tuple::SeqNo(0), llhj_core::tuple::SeqNo(0)))
            .expect("the pre-gap pair must be found");
        let latency = first.latency();
        assert!(
            latency < TimeDelta::from_millis(200),
            "pre-gap result waited {latency} — the wall-clock flush timer \
             should have bounded it near the 10 ms interval"
        );
    }
}
