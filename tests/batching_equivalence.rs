//! Batching is pure transport: whatever the frame granularity, the batched
//! runtime must produce exactly the result set of the per-tuple simulator
//! and of the nested-loop oracle.
//!
//! This is the acceptance test of the batched-transport refactor: the
//! driver groups `batch_size` tuples per entry frame and every worker
//! forwards whole frames.  Low-latency handshake join pairs each expiry
//! stream with the same-direction entry point, so per-direction FIFO order
//! protects same-boundary pairs at any batch size; exactness across
//! *directions* additionally requires the batching delay (batch fill time,
//! boundable via `flush_interval`) to stay below the window overlap of the
//! closest pair — amply true for every granularity swept here, and
//! deliberately violated in `flush_interval_bounds_the_batching_delay`'s
//! degenerate whole-stream frame.

use handshake_join::baselines::run_kang;
use handshake_join::prelude::*;

fn band_schedule() -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(150.0, TimeDelta::from_secs(8), 350, 0xBA7C);
    band_join_schedule(
        &workload,
        WindowSpec::time_secs(3),
        WindowSpec::time_secs(3),
    )
}

#[test]
fn batched_runtime_matches_simulator_and_oracle_on_the_band_join() {
    let schedule = band_schedule();
    let pred = BandPredicate::default();

    // Nested-loop oracle.
    let oracle = run_kang(pred, &schedule);
    let oracle_keys = oracle.result_keys();
    assert!(
        oracle_keys.len() > 20,
        "workload must produce a meaningful number of matches, got {}",
        oracle_keys.len()
    );

    // Per-tuple discrete-event simulator (batch_size = 1).
    let mut cfg = SimConfig::new(3, Algorithm::Llhj);
    cfg.batch_size = 1;
    cfg.window_r = WindowSpec::time_secs(3);
    cfg.window_s = WindowSpec::time_secs(3);
    cfg.expected_rate_per_sec = 150.0;
    cfg.latency_bucket = 1_000_000;
    let sim = run_simulation(&cfg, pred, RoundRobin, &schedule);
    assert_eq!(sim.result_keys(), oracle_keys, "per-tuple simulator");

    // Batched threaded runtime at every granularity.
    for batch_size in [1usize, 8, 64] {
        let opts = PipelineOptions {
            batch_size,
            pacing: Pacing::RealTime { speedup: 4.0 },
            ..Default::default()
        };
        let outcome = run_pipeline(llhj_nodes(3, pred), pred, RoundRobin, &schedule, &opts);
        assert_eq!(
            outcome.result_keys(),
            oracle_keys,
            "threaded runtime with batch_size {batch_size}"
        );
        // Coarser batches must not inject more frames than finer ones.
        assert!(outcome.frames_injected > 0);
    }
}

#[test]
fn batch_size_one_reproduces_per_tuple_frame_counts() {
    // With batch_size = 1 every arrival is flushed as its own frame (plus
    // any expiries queued since the previous arrival), reproducing the
    // seed's per-tuple injection pattern exactly.
    let schedule = band_schedule();
    let pred = BandPredicate::default();
    let opts = PipelineOptions {
        batch_size: 1,
        ..Default::default()
    };
    let outcome = run_pipeline(llhj_nodes(2, pred), pred, RoundRobin, &schedule, &opts);
    let arrivals = (outcome.arrivals_per_stream.0 + outcome.arrivals_per_stream.1) as u64;
    // One entry frame per arrival (expiries ride the next arrival's frame),
    // plus at most one tail flush per direction for the trailing expiries.
    assert!(
        outcome.frames_injected >= arrivals && outcome.frames_injected <= arrivals + 2,
        "expected ~{arrivals} frames, got {}",
        outcome.frames_injected
    );

    let coarse = PipelineOptions {
        batch_size: 64,
        ..Default::default()
    };
    let coarse_outcome = run_pipeline(llhj_nodes(2, pred), pred, RoundRobin, &schedule, &coarse);
    assert!(
        coarse_outcome.frames_injected * 8 < outcome.frames_injected,
        "batch 64 must inject far fewer frames: {} vs {}",
        coarse_outcome.frames_injected,
        outcome.frames_injected
    );
}

#[test]
fn flush_interval_bounds_the_batching_delay() {
    // A huge batch with a flush interval behaves like the interval, not
    // like the batch: frames keep flowing and the result set stays exact.
    let schedule = band_schedule();
    let pred = BandPredicate::default();
    let oracle_keys = run_kang(pred, &schedule).result_keys();

    let unbounded_wait = PipelineOptions {
        batch_size: 100_000,
        flush_interval: None,
        pacing: Pacing::RealTime { speedup: 8.0 },
        ..Default::default()
    };
    let capped = PipelineOptions {
        batch_size: 100_000,
        flush_interval: Some(TimeDelta::from_millis(100)),
        pacing: Pacing::RealTime { speedup: 8.0 },
        ..Default::default()
    };
    let waited = run_pipeline(
        llhj_nodes(2, pred),
        pred,
        RoundRobin,
        &schedule,
        &unbounded_wait,
    );
    let flowed = run_pipeline(llhj_nodes(2, pred), pred, RoundRobin, &schedule, &capped);

    // Without the timer the driver batches almost the whole stream into a
    // handful of giant frames — the only extra flushes are the expiry
    // barrier's (an expiry whose own arrival is still parked in the
    // opposite buffer flushes it first, roughly once per window length),
    // which keeps even this degenerate configuration *sound*: arrivals
    // delayed past other tuples' expiries can still lose matches, but no
    // tuple outlives its own expiry, so nothing spurious appears.
    assert!(
        waited.frames_injected <= 12,
        "expected the stream in a handful of giant frames, got {}",
        waited.frames_injected
    );
    let waited_keys = waited.result_keys();
    for key in &waited_keys {
        assert!(
            oracle_keys.contains(key),
            "giant frames produced a spurious result {key:?}"
        );
    }

    // With the timer the driver emits a frame at least every 100 ms of
    // stream time, and windowing stays exact.
    assert_eq!(flowed.result_keys(), oracle_keys);
    assert!(
        flowed.frames_injected > 20,
        "flush interval must keep frames flowing, got {}",
        flowed.frames_injected
    );
}
