/root/repo/target/release/deps/bench_batching-50f1d43237ac180e.d: crates/bench/src/bin/bench_batching.rs

/root/repo/target/release/deps/bench_batching-50f1d43237ac180e: crates/bench/src/bin/bench_batching.rs

crates/bench/src/bin/bench_batching.rs:
