/root/repo/target/debug/deps/llhj_workload-061023842aaee437.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/rng.rs crates/workload/src/schema.rs

/root/repo/target/debug/deps/libllhj_workload-061023842aaee437.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/rng.rs crates/workload/src/schema.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/rng.rs:
crates/workload/src/schema.rs:
