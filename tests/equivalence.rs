//! Cross-crate semantic-equivalence tests.
//!
//! Table 1 of the paper argues that low-latency handshake join evaluates
//! the join predicate exactly once per qualifying pair.  These tests verify
//! that claim end to end: for randomized workloads, the result *set*
//! produced by the simulated pipelines (any core count) must equal the set
//! produced by Kang's sequential three-step procedure, with no duplicates
//! and no missing pairs.  CellJoin is held to the same standard.

use llhj_baselines::{run_celljoin, run_kang};
use llhj_core::driver::DriverSchedule;
use llhj_core::homing::{HashKey, RoundRobin};
use llhj_core::predicate::{FnPredicate, JoinPredicate};
use llhj_core::time::{TimeDelta, Timestamp};
use llhj_core::window::WindowSpec;
use llhj_sim::{run_simulation, Algorithm, SimConfig};
use llhj_workload::WorkloadRng;

/// Draws a random per-stream (gap in ms, value) list, mirroring the
/// proptest strategies these tests were originally written with (the
/// build environment cannot fetch proptest, so the cases are generated
/// with the deterministic workload RNG instead: every run explores the
/// same fixed family of randomized workloads).
fn random_items(
    rng: &mut WorkloadRng,
    max_len: u32,
    max_gap: u32,
    max_value: u32,
) -> Vec<(u16, u8)> {
    let len = rng.gen_range_u32(1, max_len);
    (0..len)
        .map(|_| {
            (
                rng.gen_range_u32(1, max_gap - 1) as u16,
                rng.gen_range_u32(0, max_value - 1) as u8,
            )
        })
        .collect()
}

fn eq_pred() -> FnPredicate<fn(&u32, &u32) -> bool> {
    fn eq(r: &u32, s: &u32) -> bool {
        r == s
    }
    FnPredicate(eq as fn(&u32, &u32) -> bool)
}

/// Builds a schedule from per-stream (gap in ms, value) lists, with a flush
/// tail of non-matching tuples so that the original handshake join (whose
/// tuples only move while input keeps flowing) also drains completely.
fn schedule_from(
    r: &[(u16, u8)],
    s: &[(u16, u8)],
    window_ms: u64,
    flush: bool,
) -> DriverSchedule<u32, u32> {
    let window = WindowSpec::Time(TimeDelta::from_millis(window_ms));
    let build = |items: &[(u16, u8)], flush_value: u32| {
        let mut ts = 0u64;
        let mut out: Vec<(Timestamp, u32)> = Vec::new();
        for &(gap, value) in items {
            ts += gap as u64;
            out.push((Timestamp::from_millis(ts), value as u32));
        }
        if flush {
            for i in 1..=(window_ms + 20) {
                out.push((Timestamp::from_millis(ts + i * 2), flush_value));
            }
        }
        out
    };
    DriverSchedule::build(build(r, 1_000_000), build(s, 2_000_000), window, window)
}

fn sim_config(nodes: usize, algorithm: Algorithm, window_ms: u64) -> SimConfig {
    let mut cfg = SimConfig::new(nodes, algorithm);
    // The semantic guarantees of both algorithms assume that the window
    // span dwarfs the driver's batching delay and the pipeline traversal
    // time (true for any realistic deployment: minutes vs. milliseconds).
    // The property tests therefore disable batching so they can explore
    // windows down to tens of milliseconds.
    cfg.batch_size = 1;
    cfg.window_r = WindowSpec::Time(TimeDelta::from_millis(window_ms));
    cfg.window_s = WindowSpec::Time(TimeDelta::from_millis(window_ms));
    cfg.expected_rate_per_sec = 100.0;
    cfg.latency_bucket = 1_000_000;
    cfg
}

/// Low-latency handshake join produces exactly the oracle's result set
/// for arbitrary workloads and pipeline widths.
#[test]
fn llhj_matches_kang_for_random_workloads() {
    for case in 0..24u64 {
        let mut rng = WorkloadRng::seed_from_u64(0xA11C_E000 + case);
        let r = random_items(&mut rng, 60, 200, 12);
        let s = random_items(&mut rng, 60, 200, 12);
        let window_ms = rng.gen_range_u32(50, 2_000) as u64;
        let nodes = rng.gen_range_u32(1, 5) as usize;
        let schedule = schedule_from(&r, &s, window_ms, false);
        let oracle = run_kang(eq_pred(), &schedule);
        let report = run_simulation(
            &sim_config(nodes, Algorithm::Llhj, window_ms),
            eq_pred(),
            RoundRobin,
            &schedule,
        );
        assert_eq!(
            report.result_keys(),
            oracle.result_keys(),
            "case {case}: {nodes} nodes, {window_ms} ms window"
        );
    }
}

/// The original handshake join is *sound* (it never reports a pair the
/// oracle would not) and complete up to its flow quantisation: tuples
/// advance through the pipeline only when new input pushes them, so
/// under a sparse stream a pair whose window overlap is smaller than
/// one pipeline band (plus a few inter-arrival gaps) can expire before
/// the two tuples physically meet.  This is inherent to the original
/// algorithm — and exactly the kind of behaviour low-latency handshake
/// join eliminates (see `llhj_matches_kang_for_random_workloads`, which
/// demands exact equality).
#[test]
fn hsj_is_sound_and_complete_up_to_flow_quantisation() {
    for case in 0..24u64 {
        let mut rng = WorkloadRng::seed_from_u64(0x15_1000 + case);
        let r = random_items(&mut rng, 40, 150, 10);
        let s = random_items(&mut rng, 40, 150, 10);
        let window_ms = rng.gen_range_u32(100, 1_500) as u64;
        let nodes = rng.gen_range_u32(1, 4) as usize;
        let schedule = schedule_from(&r, &s, window_ms, true);
        let oracle = run_kang(eq_pred(), &schedule);
        let report = run_simulation(
            &sim_config(nodes, Algorithm::Hsj, window_ms),
            eq_pred(),
            RoundRobin,
            &schedule,
        );
        let oracle_keys = oracle.result_keys();
        let hsj_keys = report.result_keys();

        // Soundness: every reported pair is in the oracle set, exactly once.
        let mut deduped = hsj_keys.clone();
        deduped.dedup();
        assert_eq!(deduped.len(), hsj_keys.len(), "duplicate results");
        for key in &hsj_keys {
            assert!(oracle_keys.contains(key), "spurious result {key:?}");
        }

        // Completeness up to flow quantisation: a missing pair must have a
        // window overlap smaller than one pipeline band plus the trigger
        // slack of a sparse stream.
        let r_ts: Vec<Timestamp> = schedule
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                llhj_core::StreamEvent::ArrivalR(t) => Some(t.ts),
                _ => None,
            })
            .collect();
        let s_ts: Vec<Timestamp> = schedule
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                llhj_core::StreamEvent::ArrivalS(t) => Some(t.ts),
                _ => None,
            })
            .collect();
        let allowed_margin_ms = window_ms / nodes as u64 + 150 * nodes as u64 + 50;
        for key in &oracle_keys {
            if hsj_keys.contains(key) {
                continue;
            }
            let tr = r_ts[key.0 .0 as usize].as_micros() / 1_000;
            let ts = s_ts[key.1 .0 as usize].as_micros() / 1_000;
            let overlap = (tr.min(ts) + window_ms).saturating_sub(tr.max(ts));
            assert!(
                overlap <= allowed_margin_ms,
                "missed pair {key:?} had a comfortable overlap of {overlap} ms \
                 (allowed quantisation margin: {allowed_margin_ms} ms)"
            );
        }
    }
}

/// CellJoin is a parallelisation of Kang's procedure: identical output.
#[test]
fn celljoin_matches_kang_for_random_workloads() {
    for case in 0..24u64 {
        let mut rng = WorkloadRng::seed_from_u64(0xCE11_0000 + case);
        let r = random_items(&mut rng, 60, 200, 12);
        let s = random_items(&mut rng, 60, 200, 12);
        let window_ms = rng.gen_range_u32(50, 2_000) as u64;
        let cores = rng.gen_range_u32(1, 6) as usize;
        let schedule = schedule_from(&r, &s, window_ms, false);
        let oracle = run_kang(eq_pred(), &schedule);
        let cell = run_celljoin(cores, eq_pred(), &schedule);
        assert_eq!(cell.result_keys(), oracle.result_keys(), "case {case}");
    }
}

/// Results are never duplicated, whatever the configuration.
#[test]
fn llhj_never_duplicates_results() {
    for case in 0..24u64 {
        let mut rng = WorkloadRng::seed_from_u64(0xD0_D000 + case);
        let r = random_items(&mut rng, 50, 100, 6);
        let s = random_items(&mut rng, 50, 100, 6);
        let nodes = rng.gen_range_u32(1, 5) as usize;
        let schedule = schedule_from(&r, &s, 800, false);
        let report = run_simulation(
            &sim_config(nodes, Algorithm::Llhj, 800),
            eq_pred(),
            RoundRobin,
            &schedule,
        );
        let mut keys = report.result_keys();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "case {case}");
    }
}

/// Hash-based home placement must not change the result set either (it only
/// changes which node stores which tuple).
#[test]
fn hash_placement_is_semantically_equivalent_to_round_robin() {
    #[derive(Clone)]
    struct Eq;
    impl JoinPredicate<u32, u32> for Eq {
        fn matches(&self, r: &u32, s: &u32) -> bool {
            r == s
        }
        fn r_key(&self, r: &u32) -> Option<u64> {
            Some(*r as u64)
        }
        fn s_key(&self, s: &u32) -> Option<u64> {
            Some(*s as u64)
        }
        fn supports_index(&self) -> bool {
            true
        }
    }
    let r: Vec<(u16, u8)> = (0..120).map(|i| (7, (i % 9) as u8)).collect();
    let s: Vec<(u16, u8)> = (0..120).map(|i| (9, (i % 11) as u8)).collect();
    let schedule = schedule_from(&r, &s, 600, false);
    let oracle = run_kang(Eq, &schedule);
    for nodes in [2usize, 5] {
        let round_robin = run_simulation(
            &sim_config(nodes, Algorithm::Llhj, 600),
            Eq,
            RoundRobin,
            &schedule,
        );
        let hashed = run_simulation(
            &sim_config(nodes, Algorithm::LlhjIndexed, 600),
            Eq,
            HashKey,
            &schedule,
        );
        assert_eq!(round_robin.result_keys(), oracle.result_keys());
        assert_eq!(hashed.result_keys(), oracle.result_keys());
    }
}
