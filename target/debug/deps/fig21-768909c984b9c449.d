/root/repo/target/debug/deps/fig21-768909c984b9c449.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/libfig21-768909c984b9c449.rmeta: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
