//! Node-local tuple stores.
//!
//! Each pipeline node keeps three stores (Section 4.3 of the paper):
//!
//! * `WR_k` — the node-local window of stream R tuples whose home node is
//!   this node, each carrying an *expedition flag*;
//! * `WS_k` — the node-local window of stream S tuples homed here;
//! * `IWS_k` — the buffer of S tuples that were forwarded to the left
//!   neighbour but have not been acknowledged yet.
//!
//! [`ColumnarWindow`] implements the first two (the expedition flag is
//! simply unused on the S side), optionally maintaining a hash index over
//! an equi-key for the index acceleration experiment (Table 2).
//! [`IwsBuffer`] implements the third.
//!
//! ## Columnar (structure-of-arrays) layout
//!
//! The window is the hot loop of the whole system: every result the chain
//! produces comes out of a window scan or probe.  Earlier revisions stored
//! an array-of-structs `VecDeque<Entry<T>>`; a scan then walked tuple
//! structs, branched on the expedition flag per entry and called a closure
//! per tuple — none of which autovectorizes or stays cache-resident.  The
//! window now stores one `Vec` per column:
//!
//! ```text
//!   seq:        [ u64 | u64 | u64 | ... ]   sorted, binary-searchable
//!   ts:         [ i64 | i64 | i64 | ... ]   microseconds
//!   attr:       [ i64 | i64 | i64 | ... ]   the join attribute
//!   payload:    [  T  |  T  |  T  | ... ]   opaque carried columns
//!   valid:      bitset (1 u64 word per 64 slots)
//!   expedition: bitset (same shape)
//! ```
//!
//! A band or equi scan ([`ColumnarWindow::scan_band`]) touches only the
//! `attr` column and the two bitsets until a match fires; the predicate
//! becomes a branch-free compare-and-mask loop over a dense `i64` column,
//! evaluated 64 tuples per bitset word.  The payload column is only read
//! to materialize actual matches.  The closure path
//! ([`ColumnarWindow::scan_matches`]) remains the universal fallback for
//! predicates that expose no band form.
//!
//! ## Tombstones, the live region and compaction
//!
//! Removal never shifts columns.  A removed slot keeps its `seq` (so
//! binary search still works) and has its `valid` bit cleared; removals at
//! the front additionally advance the `start` offset, so the common FIFO
//! expiry pattern reclaims slots without leaving tombstones behind.  When
//! dead slots outnumber live ones the window compacts: columns are
//! rewritten densely and the bitsets and hash index are rebuilt, which
//! bounds memory at roughly twice the live population and keeps the cost
//! amortized O(1) per removal.
//!
//! The hash index stores **physical column offsets**, not sequence
//! numbers: a probe resolves each bucket candidate with one direct column
//! access instead of a per-candidate binary search, and bucket maintenance
//! on removal is free (dead offsets are skipped by the `valid` bit and
//! dropped wholesale at the next compaction or rebuilt on import).

use crate::predicate::BandSpec;
use crate::time::Timestamp;
use crate::tuple::{SeqNo, StreamTuple};
use llhj_sync::sync::Arc;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Key extractor used by the optional hash index of a [`ColumnarWindow`].
pub type KeyFn<T> = Arc<dyn Fn(&T) -> u64 + Send + Sync>;

/// Payload types that mirror their join attribute into the window's
/// contiguous attribute column.
///
/// Implementors promise that `join_attr` is pure: the same payload always
/// yields the same attribute, so the value cached in the column at insert
/// time never goes stale.  Predicates whose band form
/// ([`crate::predicate::JoinPredicate::s_band`]) is expressed over this
/// attribute get the branch-free scan path for free.
pub trait ColumnarPayload {
    /// The join attribute stored in the window's `attr` column.
    fn join_attr(&self) -> i64;
}

macro_rules! columnar_for_ints {
    ($($ty:ty),*) => {$(
        impl ColumnarPayload for $ty {
            #[inline]
            fn join_attr(&self) -> i64 {
                *self as i64
            }
        }
    )*};
}
columnar_for_ints!(i8, i16, i32, i64, u8, u16, u32, u64);

/// Cost breakdown of one hash-index probe
/// ([`ColumnarWindow::probe_matches_counted`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCost {
    /// Predicate evaluations performed (the figure reported by
    /// [`ColumnarWindow::probe_matches`] and fed into the simulator's cost
    /// model).
    pub evaluated: u64,
    /// Bucket slots inspected, including tombstoned offsets that were
    /// skipped without a predicate call.  Each inspection is one direct
    /// column access — the probe performs **zero** per-candidate binary
    /// searches, which the comparison-count regression test pins.
    pub inspected: u64,
}

/// A node-local sliding-window segment in columnar (structure-of-arrays)
/// form; see the [module docs](self) for the layout.
///
/// Tuples are inserted in strictly increasing sequence-number order (the
/// drivers guarantee this), which lets all lookups by sequence number use
/// binary search on the `seq` column.
pub struct ColumnarWindow<T> {
    /// Sequence numbers, sorted ascending (tombstones keep their slot).
    seq: Vec<u64>,
    /// Timestamps in microseconds.
    ts: Vec<i64>,
    /// The join attribute column ([`ColumnarPayload::join_attr`] or a
    /// predicate-supplied attribute; 0 for payloads without one).
    attr: Vec<i64>,
    /// The opaque carried columns, only touched when a match materializes.
    payload: Vec<T>,
    /// Bitset: slot holds a live tuple.
    valid: Vec<u64>,
    /// Bitset: slot holds a tuple whose expedition has not finished.
    expedition: Vec<u64>,
    /// First physical slot of the live region; always points at a valid
    /// slot (or at `len` when empty), so peeks and pops are O(1).
    start: usize,
    /// Number of live tuples.
    live: usize,
    in_expedition_count: usize,
    index: Option<WindowIndex<T>>,
}

/// The backwards-compatible name: sequential baselines (Kang, CellJoin)
/// keep calling the store a `LocalWindow`; they use the scalar closure
/// path of the same columnar structure.
pub type LocalWindow<T> = ColumnarWindow<T>;

struct WindowIndex<T> {
    key_fn: KeyFn<T>,
    /// Buckets hold *physical column offsets* (stable until the next
    /// compaction, which rebuilds them), not sequence numbers.
    buckets: HashMap<u64, Vec<u32>>,
}

/// Compaction is skipped below this many dead slots so tiny windows never
/// churn; above it, compaction triggers when dead slots outnumber live
/// ones, bounding physical size at `2 * live + 64`.  An emptied window
/// resets immediately regardless of the floor.
const COMPACT_MIN_DEAD: usize = 64;

#[inline]
fn bit(words: &[u64], i: usize) -> bool {
    words[i >> 6] & (1u64 << (i & 63)) != 0
}

#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1u64 << (i & 63));
}

#[inline]
fn push_bit(words: &mut Vec<u64>, i: usize, on: bool) {
    if i & 63 == 0 {
        words.push(0);
    }
    if on {
        words[i >> 6] |= 1u64 << (i & 63);
    }
}

/// One full bitset word of the branch-free band scan: the hit mask of a
/// dense 64-attribute block against `[lo, hi]`.
///
/// The portable loop is correct everywhere, but the baseline `x86-64`
/// target lacks packed 64-bit compares (`pcmpgtq` is SSE4.2+), so rustc
/// scalarizes it.  The `#[target_feature]` clones compile the *same* loop
/// with AVX2 / AVX-512 enabled — there LLVM autovectorizes it to packed
/// compares plus a movemask — and are selected once at runtime via the
/// cached `is_x86_feature_detected!` dispatch.  The kernel is chosen
/// per 64-tuple word, so the detection cost (one relaxed atomic load) is
/// noise.
#[inline]
fn band_hits_word(attr: &[i64; 64], lo: i64, hi: i64) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            // SAFETY: guarded by the runtime feature check above.
            return unsafe { band_hits_word_avx512(attr, lo, hi) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: guarded by the runtime feature check above.
            return unsafe { band_hits_word_avx2(attr, lo, hi) };
        }
    }
    band_hits_word_portable(attr, lo, hi)
}

#[inline(always)]
fn band_hits_word_portable(attr: &[i64; 64], lo: i64, hi: i64) -> u64 {
    let mut hits = 0u64;
    for (b, &a) in attr.iter().enumerate() {
        hits |= (((a >= lo) as u64) & ((a <= hi) as u64)) << b;
    }
    hits
}

// SAFETY: `unsafe` only because of `#[target_feature]` — the caller must
// guarantee AVX2 is available (the dispatcher's `is_x86_feature_detected!`
// check).  The body is the safe portable loop; no unsafe operations occur,
// so with `deny(unsafe_op_in_unsafe_fn)` nothing inside needs a block.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn band_hits_word_avx2(attr: &[i64; 64], lo: i64, hi: i64) -> u64 {
    band_hits_word_portable(attr, lo, hi)
}

// SAFETY: as for the AVX2 clone — caller must have verified avx512f +
// avx512bw at runtime; the body itself is the safe portable loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn band_hits_word_avx512(attr: &[i64; 64], lo: i64, hi: i64) -> u64 {
    band_hits_word_portable(attr, lo, hi)
}

impl<T> Default for ColumnarWindow<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ColumnarWindow<T> {
    /// Creates an empty, unindexed window.
    pub fn new() -> Self {
        ColumnarWindow {
            seq: Vec::new(),
            ts: Vec::new(),
            attr: Vec::new(),
            payload: Vec::new(),
            valid: Vec::new(),
            expedition: Vec::new(),
            start: 0,
            live: 0,
            in_expedition_count: 0,
            index: None,
        }
    }

    /// Creates an empty window with a hash index over `key_fn`.
    pub fn with_index(key_fn: KeyFn<T>) -> Self {
        let mut w = Self::new();
        w.index = Some(WindowIndex {
            key_fn,
            buckets: HashMap::new(),
        });
        w
    }

    /// Number of stored (live) tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the window holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of physical column slots, live or tombstoned.  Compaction
    /// keeps this at most `2 * len() + 64`; exposed so tests and benches
    /// can pin that bound.
    pub fn physical_len(&self) -> usize {
        self.seq.len()
    }

    /// Number of stored tuples whose expedition has not finished yet.
    pub fn in_expedition(&self) -> usize {
        self.in_expedition_count
    }

    /// True if this window maintains a hash index.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Inserts a tuple with a zero join attribute; see
    /// [`ColumnarWindow::insert_with_attr`].  Used by callers that never
    /// take the band-scan path (the sequential baselines).
    pub fn insert(&mut self, tuple: StreamTuple<T>, in_expedition: bool) {
        self.insert_with_attr(tuple, 0, in_expedition);
    }

    /// Inserts a tuple, mirroring `attr` (its join attribute, typically
    /// [`ColumnarPayload::join_attr`] or a predicate's
    /// [`r_attr`](crate::predicate::JoinPredicate::r_attr)) into the
    /// contiguous attribute column so band scans never touch the payload.
    /// `in_expedition` should be true for R-side windows (the flag is
    /// cleared later by an expedition-end message) and false for S-side
    /// windows.
    ///
    /// Panics in debug builds if sequence numbers are not inserted in
    /// increasing order.
    pub fn insert_with_attr(&mut self, tuple: StreamTuple<T>, attr: i64, in_expedition: bool) {
        debug_assert!(
            self.seq.last().is_none_or(|&last| last < tuple.seq.0),
            "window insertions must be in increasing sequence order"
        );
        let i = self.seq.len();
        debug_assert!(i < u32::MAX as usize, "window exceeds offset range");
        let key = self
            .index
            .as_ref()
            .map(|index| (index.key_fn)(&tuple.payload));
        self.seq.push(tuple.seq.0);
        self.ts.push(tuple.ts.as_micros() as i64);
        self.attr.push(attr);
        self.payload.push(tuple.payload);
        push_bit(&mut self.valid, i, true);
        push_bit(&mut self.expedition, i, in_expedition);
        if in_expedition {
            self.in_expedition_count += 1;
        }
        self.live += 1;
        if let (Some(index), Some(key)) = (&mut self.index, key) {
            index.buckets.entry(key).or_default().push(i as u32);
        }
    }

    /// Physical offset of the live tuple with sequence number `seq`.
    #[inline]
    fn find(&self, seq: SeqNo) -> Option<usize> {
        let i = self.start + self.seq[self.start..].binary_search(&seq.0).ok()?;
        bit(&self.valid, i).then_some(i)
    }

    /// Clears the expedition flag of the tuple with the given sequence
    /// number.  Returns true if the tuple was found in this window.
    pub fn finish_expedition(&mut self, seq: SeqNo) -> bool {
        match self.find(seq) {
            Some(i) => {
                if bit(&self.expedition, i) {
                    clear_bit(&mut self.expedition, i);
                    self.in_expedition_count -= 1;
                }
                true
            }
            None => false,
        }
    }

    /// Returns the sequence number and timestamp of the oldest live tuple
    /// without removing it.
    pub fn peek_oldest(&self) -> Option<(SeqNo, Timestamp)> {
        (self.start < self.seq.len()).then(|| {
            (
                SeqNo(self.seq[self.start]),
                Timestamp::from_micros(self.ts[self.start] as u64),
            )
        })
    }

    /// Tombstones slot `i`: clears its flags, updates the counters and
    /// advances the live-region start past any dead prefix.  The hash
    /// index is deliberately *not* touched — dead offsets are skipped by
    /// the `valid` bit and reclaimed at the next compaction.
    fn clear_slot(&mut self, i: usize) {
        debug_assert!(bit(&self.valid, i), "slot already dead");
        clear_bit(&mut self.valid, i);
        if bit(&self.expedition, i) {
            clear_bit(&mut self.expedition, i);
            self.in_expedition_count -= 1;
        }
        self.live -= 1;
        if i == self.start {
            let len = self.seq.len();
            while self.start < len && !bit(&self.valid, self.start) {
                self.start += 1;
            }
        }
    }

    /// Compacts when dead slots outnumber live ones (amortized O(1) per
    /// removal; bounds physical size at `2 * live + 64`).
    fn maybe_compact(&mut self) {
        if self.live == 0 {
            self.clear_all();
            return;
        }
        let dead = self.seq.len() - self.live;
        if dead > self.live.max(COMPACT_MIN_DEAD) {
            self.compact();
        }
    }

    /// Rewrites all columns densely (live slots only), resetting the
    /// live-region start and rebuilding both bitsets and the hash index.
    fn compact(&mut self) {
        let len = self.seq.len();
        if self.live == len && self.start == 0 {
            return;
        }
        let mut seq = Vec::with_capacity(self.live);
        let mut ts = Vec::with_capacity(self.live);
        let mut attr = Vec::with_capacity(self.live);
        let mut payload = Vec::with_capacity(self.live);
        let mut valid = Vec::new();
        let mut expedition = Vec::new();
        let old_payload = std::mem::take(&mut self.payload);
        for (i, p) in old_payload.into_iter().enumerate() {
            if !bit(&self.valid, i) {
                continue;
            }
            let j = seq.len();
            seq.push(self.seq[i]);
            ts.push(self.ts[i]);
            attr.push(self.attr[i]);
            push_bit(&mut valid, j, true);
            push_bit(&mut expedition, j, bit(&self.expedition, i));
            payload.push(p);
        }
        self.seq = seq;
        self.ts = ts;
        self.attr = attr;
        self.payload = payload;
        self.valid = valid;
        self.expedition = expedition;
        self.start = 0;
        debug_assert_eq!(self.payload.len(), self.live);
        self.rebuild_index();
    }

    /// Recomputes every hash bucket from the current (dense) columns.
    fn rebuild_index(&mut self) {
        let Some(index) = &mut self.index else {
            return;
        };
        index.buckets.clear();
        for (i, p) in self.payload.iter().enumerate() {
            if bit(&self.valid, i) {
                let key = (index.key_fn)(p);
                index.buckets.entry(key).or_default().push(i as u32);
            }
        }
    }

    /// Resets the window to empty without dropping the index key function.
    fn clear_all(&mut self) {
        self.seq.clear();
        self.ts.clear();
        self.attr.clear();
        self.payload.clear();
        self.valid.clear();
        self.expedition.clear();
        self.start = 0;
        self.live = 0;
        self.in_expedition_count = 0;
        if let Some(index) = &mut self.index {
            index.buckets.clear();
        }
    }

    /// Removes every stored tuple, returning them in sequence order.  Used
    /// by elastic reconfiguration to export a node's window segment; the
    /// caller must have cleared all expedition flags first (the elastic
    /// fence guarantees this).
    pub fn drain_sorted(&mut self) -> Vec<StreamTuple<T>> {
        assert_eq!(
            self.in_expedition_count, 0,
            "cannot export a window that still holds in-expedition tuples"
        );
        self.compact();
        let seq = std::mem::take(&mut self.seq);
        let ts = std::mem::take(&mut self.ts);
        let payload = std::mem::take(&mut self.payload);
        let out = seq
            .into_iter()
            .zip(ts)
            .zip(payload)
            .map(|((q, t), p)| StreamTuple::new(SeqNo(q), Timestamp::from_micros(t as u64), p))
            .collect();
        self.clear_all();
        out
    }

    /// Removes and returns the tuples at the given *positions* of the
    /// seq-sorted window (position 0 = oldest), in sequence order.  The
    /// elastic redistribution uses this to shed an arbitrary slice — the
    /// oldest or newest `k` tuples — instead of the whole window.
    /// Compacts first, so positions address the live tuples; the bitsets
    /// and hash index are rebuilt over the survivors.
    ///
    /// Like [`ColumnarWindow::drain_sorted`], only valid for settled
    /// state: panics if the range contains an in-expedition tuple (the
    /// elastic fence guarantees there are none anywhere).
    pub fn drain_range(&mut self, range: std::ops::Range<usize>) -> Vec<StreamTuple<T>> {
        self.compact();
        let len = self.seq.len();
        assert!(
            range.end <= len,
            "drain range {range:?} out of bounds for window of {len}"
        );
        for i in range.clone() {
            assert!(
                !bit(&self.expedition, i),
                "cannot export a window slice that holds in-expedition tuples"
            );
        }
        let kept_expedition: Vec<bool> = (0..len)
            .filter(|i| !range.contains(i))
            .map(|i| bit(&self.expedition, i))
            .collect();
        let seq: Vec<u64> = self.seq.drain(range.clone()).collect();
        let ts: Vec<i64> = self.ts.drain(range.clone()).collect();
        self.attr.drain(range.clone());
        let payload: Vec<T> = self.payload.drain(range).collect();
        self.rebuild_flags(&kept_expedition);
        self.rebuild_index();
        seq.into_iter()
            .zip(ts)
            .zip(payload)
            .map(|((q, t), p)| StreamTuple::new(SeqNo(q), Timestamp::from_micros(t as u64), p))
            .collect()
    }

    /// Rebuilds both bitsets and the counters for dense columns whose
    /// per-slot expedition flags are given positionally.
    fn rebuild_flags(&mut self, expedition: &[bool]) {
        debug_assert_eq!(expedition.len(), self.seq.len());
        self.valid.clear();
        self.expedition.clear();
        for (i, &flag) in expedition.iter().enumerate() {
            push_bit(&mut self.valid, i, true);
            push_bit(&mut self.expedition, i, flag);
        }
        self.start = 0;
        self.live = self.seq.len();
        self.in_expedition_count = expedition.iter().filter(|&&f| f).count();
    }

    /// Installs a migrated batch of tuples (sorted by sequence number,
    /// none in expedition), interleaving it with the resident entries so
    /// the window stays sorted.  `attr_of` recomputes the join-attribute
    /// column for the incoming tuples (a migrated tuple crosses the wire
    /// as plain rows; the columnar form — attribute column, bitsets and
    /// hash index — is rebuilt on import, which is what keeps elastic
    /// resize and rebalance byte-identical on the columnar layout).
    ///
    /// Sequence numbers must be disjoint from the resident ones: a tuple
    /// rests on exactly one node, so a migration can never deliver a
    /// duplicate.
    pub fn merge_sorted<F>(&mut self, incoming: Vec<StreamTuple<T>>, attr_of: F)
    where
        F: Fn(&T) -> i64,
    {
        debug_assert!(
            incoming.windows(2).all(|w| w[0].seq < w[1].seq),
            "migrated tuples must arrive in increasing sequence order"
        );
        if incoming.is_empty() {
            return;
        }
        self.compact();
        // Row form (seq, ts, attr, expedition, payload) of both runs.
        let resident: Vec<(u64, i64, i64, bool, T)> = {
            let seq = std::mem::take(&mut self.seq);
            let ts = std::mem::take(&mut self.ts);
            let attr = std::mem::take(&mut self.attr);
            let payload = std::mem::take(&mut self.payload);
            seq.into_iter()
                .zip(ts)
                .zip(attr)
                .zip(payload)
                .enumerate()
                .map(|(i, (((q, t), a), p))| (q, t, a, bit(&self.expedition, i), p))
                .collect()
        };
        let incoming: Vec<(u64, i64, i64, bool, T)> = incoming
            .into_iter()
            .map(|t| {
                let a = attr_of(&t.payload);
                (t.seq.0, t.ts.as_micros() as i64, a, false, t.payload)
            })
            .collect();
        let total = resident.len() + incoming.len();
        let mut resident = resident.into_iter().peekable();
        let mut incoming = incoming.into_iter().peekable();
        let mut expedition_flags = Vec::with_capacity(total);
        self.seq.reserve(total);
        self.ts.reserve(total);
        self.attr.reserve(total);
        self.payload.reserve(total);
        loop {
            let take_resident = match (resident.peek(), incoming.peek()) {
                (Some(r), Some(i)) => {
                    assert_ne!(r.0, i.0, "a migrated tuple already rests in this window");
                    r.0 < i.0
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (q, t, a, flag, p) = if take_resident {
                resident.next().expect("peeked")
            } else {
                incoming.next().expect("peeked")
            };
            self.seq.push(q);
            self.ts.push(t);
            self.attr.push(a);
            self.payload.push(p);
            expedition_flags.push(flag);
        }
        let in_expedition = self.in_expedition_count;
        self.rebuild_flags(&expedition_flags);
        debug_assert_eq!(self.in_expedition_count, in_expedition);
        self.rebuild_index();
    }

    /// Consistency check used by tests and debug assertions: the counters
    /// match the bitsets, sequence numbers are strictly increasing, the
    /// live-region start is settled and every live tuple is referenced by
    /// exactly one index bucket (tombstoned bucket offsets are legal —
    /// they are lazily reclaimed).
    pub fn check_invariants(&self) -> Result<(), String> {
        let len = self.seq.len();
        if self.ts.len() != len || self.attr.len() != len || self.payload.len() != len {
            return Err("column lengths diverge".into());
        }
        let live = (0..len).filter(|&i| bit(&self.valid, i)).count();
        if live != self.live {
            return Err(format!(
                "live counter {} does not match bits {live}",
                self.live
            ));
        }
        let flagged = (0..len)
            .filter(|&i| bit(&self.expedition, i))
            .collect::<Vec<_>>();
        if flagged.len() != self.in_expedition_count {
            return Err(format!(
                "expedition counter {} does not match flags {}",
                self.in_expedition_count,
                flagged.len()
            ));
        }
        if let Some(&i) = flagged.iter().find(|&&i| !bit(&self.valid, i)) {
            return Err(format!(
                "tombstoned slot {i} still carries an expedition flag"
            ));
        }
        if self.seq.windows(2).any(|w| w[0] >= w[1]) {
            return Err("sequence numbers are not strictly increasing".into());
        }
        if (0..self.start.min(len)).any(|i| bit(&self.valid, i)) {
            return Err("live tuple before the live-region start".into());
        }
        if self.start < len && !bit(&self.valid, self.start) {
            return Err("live-region start points at a dead slot".into());
        }
        if self.start > len {
            return Err("live-region start out of bounds".into());
        }
        if let Some(index) = &self.index {
            let mut seen = vec![false; len];
            for (&key, bucket) in &index.buckets {
                for &off in bucket {
                    let i = off as usize;
                    if i >= len {
                        return Err(format!("index offset {i} out of bounds"));
                    }
                    if !bit(&self.valid, i) {
                        continue; // lazily-reclaimed tombstone
                    }
                    if seen[i] {
                        return Err(format!("index references slot {i} twice"));
                    }
                    seen[i] = true;
                    if (index.key_fn)(&self.payload[i]) != key {
                        return Err(format!("slot {i} filed under the wrong key"));
                    }
                }
            }
            let indexed = seen.iter().filter(|&&s| s).count();
            if indexed != self.live {
                return Err(format!(
                    "index covers {indexed} live tuples but window holds {}",
                    self.live
                ));
            }
        }
        Ok(())
    }
}

impl<T: Clone> ColumnarWindow<T> {
    /// Materializes the tuple at physical slot `i`.
    #[inline]
    fn tuple_at(&self, i: usize) -> StreamTuple<T> {
        StreamTuple::new(
            SeqNo(self.seq[i]),
            Timestamp::from_micros(self.ts[i] as u64),
            self.payload[i].clone(),
        )
    }

    /// Returns the tuple with the given sequence number, if live.
    pub fn get(&self, seq: SeqNo) -> Option<StreamTuple<T>> {
        self.find(seq).map(|i| self.tuple_at(i))
    }

    /// Removes the tuple with the given sequence number, returning it if
    /// it was present.  The slot is tombstoned (columns never shift) and
    /// reclaimed by the next compaction.
    pub fn remove(&mut self, seq: SeqNo) -> Option<StreamTuple<T>> {
        let i = self.find(seq)?;
        let tuple = self.tuple_at(i);
        self.clear_slot(i);
        self.maybe_compact();
        Some(tuple)
    }

    /// Removes and returns the oldest stored tuple (lowest sequence
    /// number) along with its expedition flag.  Used by the original
    /// handshake join when a segment overflows.
    pub fn pop_oldest(&mut self) -> Option<(StreamTuple<T>, bool)> {
        if self.start >= self.seq.len() {
            return None;
        }
        let i = self.start;
        let tuple = self.tuple_at(i);
        let flagged = bit(&self.expedition, i);
        self.clear_slot(i);
        self.maybe_compact();
        Some((tuple, flagged))
    }

    /// Scans the window, invoking `on_match` for every tuple that
    /// satisfies `pred`.  When `only_finished` is set, tuples whose
    /// expedition flag is still set are skipped (this is how
    /// stored/stored double matches are avoided, Section 4.2.3).  This is
    /// the universal scalar path: one closure call per live tuple.
    ///
    /// Returns the number of predicate evaluations performed.
    pub fn scan_matches<F, M>(&self, only_finished: bool, mut pred: F, mut on_match: M) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(StreamTuple<T>),
    {
        let mut comparisons = 0;
        for i in self.start..self.seq.len() {
            if !bit(&self.valid, i) {
                continue;
            }
            if only_finished && bit(&self.expedition, i) {
                continue;
            }
            comparisons += 1;
            if pred(&self.payload[i]) {
                on_match(self.tuple_at(i));
            }
        }
        comparisons
    }

    /// Branch-free band scan: finds every live tuple whose attribute
    /// column value lies in `band`, 64 tuples per bitset word.  The match
    /// positions are collected as a compare-and-mask bit pattern over the
    /// raw `i64` column and only then materialized.  When `exact` is set
    /// the band *is* the predicate (equi and pure band joins); otherwise
    /// `residual` re-checks each band hit against the full predicate
    /// (composite predicates such as the paper's two-dimensional band
    /// join).
    ///
    /// Returns the number of comparisons *as the scalar path would count
    /// them* — one per live (and, under `only_finished`, non-expedited)
    /// tuple — so the simulator's cost model sees a layout-independent
    /// work measure and stays byte-identical across both paths.
    pub fn scan_band<F, M>(
        &self,
        band: BandSpec,
        only_finished: bool,
        exact: bool,
        mut residual: F,
        mut on_match: M,
    ) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(StreamTuple<T>),
    {
        let len = self.seq.len();
        let comparisons = (self.live
            - if only_finished {
                self.in_expedition_count
            } else {
                0
            }) as u64;
        if self.start >= len {
            return comparisons;
        }
        let first_word = self.start >> 6;
        let last_word = (len - 1) >> 6;
        for w in first_word..=last_word {
            let mut mask = self.valid[w];
            if only_finished {
                mask &= !self.expedition[w];
            }
            if w == first_word {
                mask &= !0u64 << (self.start & 63);
            }
            let base = w << 6;
            let block_len = (len - base).min(64);
            if block_len < 64 {
                mask &= (1u64 << block_len) - 1;
            }
            if mask == 0 {
                continue;
            }
            // Compare-and-mask over the dense attribute block: no branch
            // per element, so the loop autovectorizes.  Full words go
            // through the runtime-dispatched kernel (see [`band_hits_word`]).
            let block = &self.attr[base..base + block_len];
            let hits = if let Ok(full) = <&[i64; 64]>::try_from(block) {
                band_hits_word(full, band.lo, band.hi)
            } else {
                let mut hits = 0u64;
                for (b, &a) in block.iter().enumerate() {
                    hits |= (((a >= band.lo) as u64) & ((a <= band.hi) as u64)) << b;
                }
                hits
            };
            let mut m = mask & hits;
            while m != 0 {
                let i = base + m.trailing_zeros() as usize;
                m &= m - 1;
                if exact || residual(&self.payload[i]) {
                    on_match(self.tuple_at(i));
                }
            }
        }
        comparisons
    }

    /// Probes the hash index with `key`, invoking `on_match` for every
    /// candidate tuple that additionally satisfies `pred` (the residual
    /// predicate re-check keeps the probe correct for composite
    /// predicates).
    ///
    /// Returns the number of candidate evaluations.  Callers must check
    /// [`ColumnarWindow::has_index`] first; probing an unindexed window
    /// falls back to a full scan.
    pub fn probe_matches<F, M>(&self, key: u64, only_finished: bool, pred: F, on_match: M) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(StreamTuple<T>),
    {
        self.probe_matches_counted(key, only_finished, pred, on_match)
            .evaluated
    }

    /// [`ColumnarWindow::probe_matches`] with the full [`ProbeCost`]
    /// breakdown.  Buckets store physical column offsets, so every
    /// candidate resolves with one direct column access — no per-candidate
    /// binary search (`inspected` counts exactly those accesses, including
    /// tombstones skipped without a predicate call).
    pub fn probe_matches_counted<F, M>(
        &self,
        key: u64,
        only_finished: bool,
        mut pred: F,
        mut on_match: M,
    ) -> ProbeCost
    where
        F: FnMut(&T) -> bool,
        M: FnMut(StreamTuple<T>),
    {
        let Some(index) = &self.index else {
            let evaluated = self.scan_matches(only_finished, pred, on_match);
            return ProbeCost {
                evaluated,
                inspected: evaluated,
            };
        };
        let mut cost = ProbeCost::default();
        if let Some(bucket) = index.buckets.get(&key) {
            for &off in bucket {
                let i = off as usize;
                cost.inspected += 1;
                if !bit(&self.valid, i) {
                    continue; // tombstone awaiting compaction
                }
                if only_finished && bit(&self.expedition, i) {
                    continue;
                }
                cost.evaluated += 1;
                if pred(&self.payload[i]) {
                    on_match(self.tuple_at(i));
                }
            }
        }
        cost
    }
}

/// Buffer of S tuples forwarded to the left neighbour but not yet
/// acknowledged (`IWS_k` in Figures 13/14).
///
/// The buffer is scanned by arriving R tuples to detect pairs that would
/// otherwise pass each other "in flight" between two neighbouring nodes.
/// Unlike the windows it is bounded by the acknowledgement round-trip, so
/// it keeps the simple row layout: entries live for one hop, far too short
/// for a columnar rebuild to pay off.
pub struct IwsBuffer<T> {
    entries: VecDeque<StreamTuple<T>>,
    index: Option<IwsIndex<T>>,
}

struct IwsIndex<T> {
    key_fn: KeyFn<T>,
    buckets: HashMap<u64, Vec<SeqNo>>,
}

impl<T> Default for IwsBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IwsBuffer<T> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        IwsBuffer {
            entries: VecDeque::new(),
            index: None,
        }
    }

    /// Creates an empty buffer with a hash index over `key_fn`.
    ///
    /// The IWS buffer is scanned by *every* R arrival passing the node
    /// (Table 1 of the paper), and unlike the windows it grows with the
    /// acknowledgement round-trip time rather than with the window span —
    /// under bursty or backpressured transport it can hold thousands of
    /// tuples, so an unindexed scan here dominates the whole pipeline.
    pub fn with_index(key_fn: KeyFn<T>) -> Self {
        IwsBuffer {
            entries: VecDeque::new(),
            index: Some(IwsIndex {
                key_fn,
                buckets: HashMap::new(),
            }),
        }
    }

    /// True if this buffer maintains a hash index.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Number of unacknowledged tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no tuple awaits acknowledgement.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a forwarded-but-unacknowledged tuple.
    pub fn insert(&mut self, tuple: StreamTuple<T>) {
        debug_assert!(
            self.entries.back().is_none_or(|e| e.seq < tuple.seq),
            "IWS insertions must be in increasing sequence order"
        );
        if let Some(index) = &mut self.index {
            let key = (index.key_fn)(&tuple.payload);
            index.buckets.entry(key).or_default().push(tuple.seq);
        }
        self.entries.push_back(tuple);
    }

    /// Removes the tuple acknowledged by the left neighbour.  Returns true
    /// if it was present.
    pub fn acknowledge(&mut self, seq: SeqNo) -> bool {
        match self.entries.binary_search_by(|e| e.seq.cmp(&seq)) {
            Ok(pos) => {
                let removed = self.entries.remove(pos).expect("position just found");
                if let Some(index) = &mut self.index {
                    let key = (index.key_fn)(&removed.payload);
                    if let MapEntry::Occupied(mut bucket) = index.buckets.entry(key) {
                        bucket.get_mut().retain(|s| *s != seq);
                        if bucket.get().is_empty() {
                            bucket.remove();
                        }
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Scans the buffer, invoking `on_match` for matching tuples.  Returns
    /// the number of predicate evaluations.
    pub fn scan_matches<F, M>(&self, mut pred: F, mut on_match: M) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(&StreamTuple<T>),
    {
        let mut comparisons = 0;
        for tuple in &self.entries {
            comparisons += 1;
            if pred(&tuple.payload) {
                on_match(tuple);
            }
        }
        comparisons
    }

    /// Probes the hash index for candidates with the given key, invoking
    /// `on_match` for those the predicate confirms.  Returns the number of
    /// predicate evaluations.  Panics if the buffer has no index.
    pub fn probe_matches<F, M>(&self, key: u64, mut pred: F, mut on_match: M) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(&StreamTuple<T>),
    {
        let index = self.index.as_ref().expect("probe on unindexed IWS buffer");
        let mut comparisons = 0;
        if let Some(bucket) = index.buckets.get(&key) {
            for seq in bucket {
                if let Ok(pos) = self.entries.binary_search_by(|e| e.seq.cmp(seq)) {
                    let tuple = &self.entries[pos];
                    comparisons += 1;
                    if pred(&tuple.payload) {
                        on_match(tuple);
                    }
                }
            }
        }
        comparisons
    }

    /// Iterates over buffered tuples.
    pub fn iter(&self) -> impl Iterator<Item = &StreamTuple<T>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn t(seq: u64, v: u64) -> StreamTuple<u64> {
        StreamTuple::new(SeqNo(seq), Timestamp::from_millis(seq), v)
    }

    /// Insert with the payload itself as the attribute column value, the
    /// way a columnar-aware node would.
    fn insert_attr(w: &mut ColumnarWindow<u64>, tuple: StreamTuple<u64>, in_expedition: bool) {
        let attr = tuple.payload.join_attr();
        w.insert_with_attr(tuple, attr, in_expedition);
    }

    #[test]
    fn insert_get_remove() {
        let mut w = ColumnarWindow::new();
        w.insert(t(1, 10), true);
        w.insert(t(3, 30), false);
        w.insert(t(5, 50), true);
        assert_eq!(w.len(), 3);
        assert_eq!(w.in_expedition(), 2);
        assert_eq!(w.get(SeqNo(3)).unwrap().payload, 30);
        assert!(w.get(SeqNo(2)).is_none());
        let removed = w.remove(SeqNo(1)).unwrap();
        assert_eq!(removed.payload, 10);
        assert_eq!(w.in_expedition(), 1);
        assert!(w.remove(SeqNo(1)).is_none());
        assert!(w.get(SeqNo(1)).is_none(), "tombstoned slot is invisible");
        w.check_invariants().unwrap();
    }

    #[test]
    fn finish_expedition_clears_flag_once() {
        let mut w = ColumnarWindow::new();
        w.insert(t(2, 0), true);
        assert!(w.finish_expedition(SeqNo(2)));
        assert_eq!(w.in_expedition(), 0);
        // Clearing twice is harmless.
        assert!(w.finish_expedition(SeqNo(2)));
        assert_eq!(w.in_expedition(), 0);
        // Unknown tuples report false so the caller forwards the message.
        assert!(!w.finish_expedition(SeqNo(99)));
        w.check_invariants().unwrap();
    }

    #[test]
    fn scan_respects_expedition_filter() {
        let mut w = ColumnarWindow::new();
        w.insert(t(1, 7), true);
        w.insert(t(2, 7), false);
        w.insert(t(3, 8), false);

        let mut seen = Vec::new();
        let cmp = w.scan_matches(false, |v| *v == 7, |m| seen.push(m.seq));
        assert_eq!(cmp, 3);
        assert_eq!(seen, vec![SeqNo(1), SeqNo(2)]);

        seen.clear();
        let cmp = w.scan_matches(true, |v| *v == 7, |m| seen.push(m.seq));
        assert_eq!(cmp, 2, "in-expedition tuples are not even evaluated");
        assert_eq!(seen, vec![SeqNo(2)]);
    }

    #[test]
    fn band_scan_equals_scalar_scan_including_comparisons() {
        let mut w = ColumnarWindow::new();
        for i in 0..300u64 {
            insert_attr(&mut w, t(i, i % 37), i % 5 == 0);
        }
        for only_finished in [false, true] {
            for (lo, hi) in [(3, 9), (0, 0), (36, 99), (12, 11)] {
                let band = BandSpec { lo, hi };
                let mut scalar = Vec::new();
                let scmp = w.scan_matches(
                    only_finished,
                    |v| (*v as i64) >= lo && (*v as i64) <= hi,
                    |m| scalar.push((m.seq, m.payload)),
                );
                let mut columnar = Vec::new();
                let ccmp = w.scan_band(
                    band,
                    only_finished,
                    true,
                    |_| true,
                    |m| columnar.push((m.seq, m.payload)),
                );
                assert_eq!(
                    scalar, columnar,
                    "band [{lo},{hi}] finished={only_finished}"
                );
                assert_eq!(scmp, ccmp, "comparison counts must be layout-independent");
            }
        }
        // Residual path: band over the attribute plus a parity filter.
        let band = BandSpec { lo: 0, hi: 20 };
        let mut scalar = Vec::new();
        w.scan_matches(
            false,
            |v| (*v as i64) <= 20 && *v % 2 == 0,
            |m| scalar.push(m.seq),
        );
        let mut columnar = Vec::new();
        w.scan_band(
            band,
            false,
            false,
            |v| *v % 2 == 0,
            |m| columnar.push(m.seq),
        );
        assert_eq!(scalar, columnar);
    }

    #[test]
    fn band_scan_sees_tombstones_and_the_live_region() {
        let mut w = ColumnarWindow::new();
        for i in 0..200u64 {
            insert_attr(&mut w, t(i, i), false);
        }
        // Kill a mix of front and middle slots (front removals advance the
        // live-region start, middle ones leave tombstones).
        for i in (0..100u64).chain([130, 131, 190]) {
            w.remove(SeqNo(i)).unwrap();
        }
        let band = BandSpec { lo: 120, hi: 140 };
        let mut hits = Vec::new();
        let cmp = w.scan_band(band, false, true, |_| true, |m| hits.push(m.payload));
        let expected: Vec<u64> = (120..=140).filter(|v| ![130, 131].contains(v)).collect();
        assert_eq!(hits, expected);
        assert_eq!(cmp, w.len() as u64);
        w.check_invariants().unwrap();
    }

    #[test]
    fn pop_oldest_returns_fifo_order() {
        let mut w = ColumnarWindow::new();
        w.insert(t(1, 1), true);
        w.insert(t(2, 2), false);
        assert_eq!(w.peek_oldest().unwrap().0, SeqNo(1));
        let (first, flagged) = w.pop_oldest().unwrap();
        assert_eq!(first.seq, SeqNo(1));
        assert!(flagged);
        assert_eq!(w.in_expedition(), 0);
        assert_eq!(w.peek_oldest().unwrap().0, SeqNo(2));
        let (second, flagged) = w.pop_oldest().unwrap();
        assert_eq!(second.seq, SeqNo(2));
        assert!(!flagged);
        assert!(w.pop_oldest().is_none());
        assert!(w.peek_oldest().is_none());
    }

    #[test]
    fn hash_index_probe_finds_only_matching_bucket() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 10);
        let mut w = ColumnarWindow::with_index(key_fn);
        for i in 0..100u64 {
            w.insert(t(i, i), false);
        }
        let mut hits = Vec::new();
        let cmp = w.probe_matches(3, false, |v| *v % 10 == 3, |m| hits.push(m.payload));
        assert_eq!(hits.len(), 10);
        assert_eq!(cmp, 10, "probe only touches one bucket");
        assert!(hits.iter().all(|v| v % 10 == 3));
        w.check_invariants().unwrap();
    }

    #[test]
    fn probe_resolves_candidates_by_offset_without_searches() {
        // The comparison-count regression test for the offset-based index:
        // with a heavily duplicated key, the probe must inspect exactly
        // the bucket (live + tombstoned candidates), independent of the
        // window size — the old per-candidate binary search is gone, and
        // nothing outside the bucket is touched.
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 4);
        let mut w = ColumnarWindow::with_index(key_fn);
        for i in 0..4096u64 {
            w.insert(t(i, i), false);
        }
        let cost = w.probe_matches_counted(1, false, |_| true, |_| ());
        assert_eq!(cost.inspected, 1024, "exactly the bucket, nothing more");
        assert_eq!(cost.evaluated, 1024);
        // Tombstoning half the bucket (not enough to compact) leaves dead
        // offsets behind: they are inspected but never evaluated.
        for i in (1..4096u64).step_by(8) {
            w.remove(SeqNo(i)).unwrap();
        }
        let cost = w.probe_matches_counted(1, false, |_| true, |_| ());
        assert_eq!(cost.inspected, 1024);
        assert_eq!(cost.evaluated, 512);
        w.check_invariants().unwrap();
    }

    #[test]
    fn heavy_duplicate_key_window_removes_cheaply_and_compacts() {
        // Every tuple shares one key, the worst case for the old
        // O(bucket-len) retain-per-removal: the bucket held the whole
        // window.  Tombstoning makes each removal O(log n); compaction
        // keeps physical storage bounded and rebuilds the single bucket.
        let key_fn: KeyFn<u64> = Arc::new(|_| 42);
        let mut w = ColumnarWindow::with_index(key_fn);
        for i in 0..10_000u64 {
            w.insert(t(i, i), false);
        }
        // Remove from the middle out, the pattern that defeats the
        // front-advance fast path.
        for i in (1..10_000u64).step_by(2) {
            assert!(w.remove(SeqNo(i)).is_some());
        }
        assert_eq!(w.len(), 5_000);
        assert!(
            w.physical_len() <= 2 * w.len() + 64,
            "compaction must bound physical storage: {} slots for {} live",
            w.physical_len(),
            w.len()
        );
        w.check_invariants().unwrap();
        let mut hits = 0u64;
        let cost = w.probe_matches_counted(42, false, |_| true, |_| hits += 1);
        assert_eq!(hits, 5_000);
        assert_eq!(cost.evaluated, 5_000);
        assert!(cost.inspected <= w.physical_len() as u64);
        // Drain the rest; the window must end empty and consistent.
        while w.pop_oldest().is_some() {}
        assert!(w.is_empty());
        assert_eq!(w.physical_len(), 0, "emptying compacts away all slots");
        w.check_invariants().unwrap();
    }

    #[test]
    fn hash_index_stays_consistent_under_removal() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 4);
        let mut w = ColumnarWindow::with_index(key_fn);
        for i in 0..40u64 {
            w.insert(t(i, i), false);
        }
        for i in (0..40u64).step_by(2) {
            assert!(w.remove(SeqNo(i)).is_some());
        }
        w.check_invariants().unwrap();
        let mut hits = 0;
        w.probe_matches(1, false, |_| true, |_| hits += 1);
        assert_eq!(hits, 10);
        // pop_oldest also maintains the index.
        while w.pop_oldest().is_some() {}
        w.check_invariants().unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn probe_without_index_falls_back_to_scan() {
        let mut w = ColumnarWindow::new();
        w.insert(t(0, 5), false);
        w.insert(t(1, 6), false);
        let mut hits = 0;
        let cmp = w.probe_matches(123, false, |v| *v == 6, |_| hits += 1);
        assert_eq!(cmp, 2);
        assert_eq!(hits, 1);
        assert!(!w.has_index());
    }

    #[test]
    fn drain_and_merge_interleave_and_keep_the_index_consistent() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 4);
        let mut donor = ColumnarWindow::with_index(Arc::clone(&key_fn));
        let mut survivor = ColumnarWindow::with_index(key_fn);
        // Round-robin-style interleaved homes: donor holds odd seqs,
        // survivor even ones.
        for i in 0..40u64 {
            if i % 2 == 1 {
                insert_attr(&mut donor, t(i, i), false);
            } else {
                insert_attr(&mut survivor, t(i, i), false);
            }
        }
        let migrated = donor.drain_sorted();
        assert!(donor.is_empty());
        assert_eq!(migrated.len(), 20);
        assert!(migrated.windows(2).all(|w| w[0].seq < w[1].seq));
        survivor.merge_sorted(migrated, |v| v.join_attr());
        assert_eq!(survivor.len(), 40);
        survivor.check_invariants().unwrap();
        // Lookups, probes, band scans and removals keep working on the
        // merged window — the attribute column was rebuilt on import.
        assert_eq!(survivor.get(SeqNo(13)).unwrap().payload, 13);
        let mut hits = 0;
        survivor.probe_matches(1, false, |_| true, |_| hits += 1);
        assert_eq!(hits, 10);
        let mut band_hits = Vec::new();
        survivor.scan_band(
            BandSpec { lo: 10, hi: 13 },
            false,
            true,
            |_| true,
            |m| band_hits.push(m.payload),
        );
        assert_eq!(band_hits, vec![10, 11, 12, 13]);
        assert!(survivor.remove(SeqNo(13)).is_some());
        survivor.check_invariants().unwrap();
    }

    #[test]
    fn drain_range_sheds_a_slice_and_keeps_the_index_consistent() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 4);
        let mut w = ColumnarWindow::with_index(key_fn);
        for i in 0..10u64 {
            w.insert(t(i, i), false);
        }
        // Shed the oldest three (positions 0..3).
        let oldest = w.drain_range(0..3);
        assert_eq!(
            oldest.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![SeqNo(0), SeqNo(1), SeqNo(2)]
        );
        assert_eq!(w.len(), 7);
        w.check_invariants().unwrap();
        // Shed the newest two (positions len-2..len).
        let newest = w.drain_range(5..7);
        assert_eq!(
            newest.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![SeqNo(8), SeqNo(9)]
        );
        w.check_invariants().unwrap();
        // The drained tuples are gone from the index too.
        let mut hits = Vec::new();
        w.probe_matches(0, false, |_| true, |m| hits.push(m.seq));
        assert_eq!(hits, vec![SeqNo(4)]);
        // An empty range is a no-op.
        assert!(w.drain_range(2..2).is_empty());
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn drain_range_addresses_live_positions_despite_tombstones() {
        let mut w = ColumnarWindow::new();
        for i in 0..10u64 {
            w.insert(t(i, i), false);
        }
        // Tombstone seqs 0 and 4; live tuples are then 1,2,3,5,6,7,8,9.
        w.remove(SeqNo(0)).unwrap();
        w.remove(SeqNo(4)).unwrap();
        let slice = w.drain_range(0..3);
        assert_eq!(
            slice.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![SeqNo(1), SeqNo(2), SeqNo(3)],
            "positions address live tuples, not physical slots"
        );
        assert_eq!(w.len(), 5);
        w.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "in-expedition")]
    fn drain_range_rejects_live_expeditions() {
        let mut w = ColumnarWindow::new();
        w.insert(t(1, 1), true);
        let _ = w.drain_range(0..1);
    }

    #[test]
    fn merge_into_empty_and_empty_into_full_are_noops_or_copies() {
        let mut w = ColumnarWindow::new();
        w.merge_sorted(vec![t(3, 3), t(7, 7)], |v| v.join_attr());
        assert_eq!(w.len(), 2);
        w.merge_sorted(Vec::new(), |v| v.join_attr());
        assert_eq!(w.len(), 2);
        w.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "in-expedition")]
    fn drain_rejects_windows_with_live_expeditions() {
        let mut w = ColumnarWindow::new();
        w.insert(t(1, 1), true);
        let _ = w.drain_sorted();
    }

    #[test]
    #[should_panic(expected = "already rests in this window")]
    fn merge_rejects_duplicate_residence() {
        let mut w = ColumnarWindow::new();
        w.insert(t(5, 5), false);
        w.merge_sorted(vec![t(5, 5)], |v| v.join_attr());
    }

    #[test]
    fn iws_buffer_acknowledge() {
        let mut iws = IwsBuffer::new();
        iws.insert(t(4, 44));
        iws.insert(t(9, 99));
        assert_eq!(iws.len(), 2);
        assert!(iws.acknowledge(SeqNo(4)));
        assert!(!iws.acknowledge(SeqNo(4)));
        assert_eq!(iws.len(), 1);
        let mut seen = Vec::new();
        let cmp = iws.scan_matches(|v| *v == 99, |m| seen.push(m.seq));
        assert_eq!(cmp, 1);
        assert_eq!(seen, vec![SeqNo(9)]);
        assert_eq!(iws.iter().count(), 1);
        assert!(!iws.is_empty());
    }

    #[test]
    fn indexed_iws_probe_matches_scan_and_survives_acks() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| v % 10);
        let mut indexed = IwsBuffer::with_index(key_fn);
        let mut plain = IwsBuffer::new();
        assert!(indexed.has_index());
        assert!(!plain.has_index());
        for i in 0..100u64 {
            indexed.insert(t(i, i * 3));
            plain.insert(t(i, i * 3));
        }
        // Probe for value 33 (key 33 % 10 = 3).
        let mut probe_hits = Vec::new();
        let probe_cmp = indexed.probe_matches(3, |v| *v == 33, |m| probe_hits.push(m.seq));
        let mut scan_hits = Vec::new();
        let scan_cmp = plain.scan_matches(|v| *v == 33, |m| scan_hits.push(m.seq));
        assert_eq!(probe_hits, scan_hits);
        assert_eq!(probe_hits, vec![SeqNo(11)]);
        assert!(
            probe_cmp < scan_cmp / 5,
            "probe touches only the bucket: {probe_cmp} vs {scan_cmp}"
        );
        // Acknowledging removes the tuple from the bucket too.
        assert!(indexed.acknowledge(SeqNo(11)));
        let cmp = indexed.probe_matches(3, |v| *v == 33, |_| panic!("acked tuple matched"));
        assert!(cmp <= scan_cmp);
        // A probe for an empty bucket touches nothing.
        assert_eq!(indexed.probe_matches(777, |_| true, |_| ()), 0);
    }

    #[test]
    fn empty_windows_behave() {
        let w: ColumnarWindow<u64> = ColumnarWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.scan_matches(false, |_| true, |_| panic!("no tuples")), 0);
        assert_eq!(
            w.scan_band(
                BandSpec { lo: 0, hi: 100 },
                false,
                true,
                |_| true,
                |_| { panic!("no tuples") }
            ),
            0
        );
        w.check_invariants().unwrap();
        let iws: IwsBuffer<u64> = IwsBuffer::new();
        assert!(iws.is_empty());
    }
}
