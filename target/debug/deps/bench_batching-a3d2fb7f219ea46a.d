/root/repo/target/debug/deps/bench_batching-a3d2fb7f219ea46a.d: crates/bench/src/bin/bench_batching.rs

/root/repo/target/debug/deps/bench_batching-a3d2fb7f219ea46a: crates/bench/src/bin/bench_batching.rs

crates/bench/src/bin/bench_batching.rs:
