//! Smoke tests over the figure-reproduction harness: every experiment of
//! the paper's evaluation section can be regenerated end to end (at the
//! tiny smoke scale) and reports the qualitative shape the paper describes.

use llhj_bench::experiments;
use llhj_bench::Scale;

#[test]
fn every_experiment_runs_and_reports() {
    let scale = Scale::smoke();

    let fig05 = experiments::fig05::run(&scale);
    assert!(!fig05.equal_windows.points.is_empty());

    let fig18 = experiments::fig18::run(&scale);
    assert_eq!(fig18.model.len(), scale.model_cores.len());
    assert_eq!(fig18.measured.len(), scale.sim_cores.len());

    let fig19 = experiments::fig19::run(&scale);
    assert!(!fig19.equal_windows.points.is_empty());

    let fig20 = experiments::fig20::run(&scale);
    assert!(!fig20.config.points.is_empty());

    let fig21 = experiments::fig21::run(&scale);
    assert_eq!(fig21.rows.len(), scale.sim_cores.len());

    let table2 = experiments::table2::run(&scale);
    assert_eq!(table2.rows.len(), 3);

    // The headline comparison across experiments: the plateau latency of
    // the original handshake join (Figure 5) is orders of magnitude above
    // the low-latency variant's latency (Figure 19) for the same windows.
    let hsj_peak = fig05
        .equal_windows
        .points
        .iter()
        .map(|p| p.avg_ms)
        .fold(0.0f64, f64::max);
    let llhj_peak = fig19
        .equal_windows
        .points
        .iter()
        .map(|p| p.avg_ms)
        .fold(0.0f64, f64::max);
    assert!(
        hsj_peak > 3.0 * llhj_peak,
        "HSJ peak {hsj_peak} ms should dwarf LLHJ peak {llhj_peak} ms"
    );
}

#[test]
fn figure_17_runs_and_scales() {
    let scale = Scale::smoke();
    let fig17 = experiments::fig17::run(&scale);
    assert_eq!(fig17.model.len(), scale.model_cores.len());
    assert_eq!(fig17.measured.len(), scale.sim_cores.len());
    // Model throughput at 40 cores must exceed the 8-core value.
    let small = fig17.model.first().unwrap();
    let large = fig17.model.last().unwrap();
    assert!(large.llhj > small.llhj);
}
