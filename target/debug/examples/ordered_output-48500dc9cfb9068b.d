/root/repo/target/debug/examples/ordered_output-48500dc9cfb9068b.d: examples/ordered_output.rs

/root/repo/target/debug/examples/ordered_output-48500dc9cfb9068b: examples/ordered_output.rs

examples/ordered_output.rs:
