/root/repo/target/debug/deps/llhj_baselines-4563c23ec5de0c76.d: crates/baselines/src/lib.rs crates/baselines/src/celljoin.rs crates/baselines/src/kang.rs

/root/repo/target/debug/deps/libllhj_baselines-4563c23ec5de0c76.rmeta: crates/baselines/src/lib.rs crates/baselines/src/celljoin.rs crates/baselines/src/kang.rs

crates/baselines/src/lib.rs:
crates/baselines/src/celljoin.rs:
crates/baselines/src/kang.rs:
