/root/repo/target/debug/deps/all_experiments-07e2410cec355732.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/liball_experiments-07e2410cec355732.rmeta: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
