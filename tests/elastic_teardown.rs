//! Teardown and cancellation tests for the elastic runtime.
//!
//! The fence/handoff protocol must never wedge: a shutdown requested while
//! a migration is in flight has to wait for the handoff to complete (a
//! segment that has been exported but not acknowledged rests nowhere — a
//! crash there would lose every pending match against it), then drain and
//! return.  These tests use the pipeline's migration-stall instrumentation
//! to hold a handoff open for a known wall-time window and land a cancel
//! inside it; every test is timeout-guarded so a deadlock fails fast
//! instead of hanging the suite.

mod common;

use common::{assert_sound, cancel_after, with_deadline};
use handshake_join::prelude::*;
use llhj_sync::time::{Duration, Instant};

fn band_schedule(
    rate: f64,
    duration_ms: u64,
    seed: u64,
) -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(rate, TimeDelta::from_millis(duration_ms), 220, seed);
    band_join_schedule(
        &workload,
        WindowSpec::Time(TimeDelta::from_millis(150)),
        WindowSpec::Time(TimeDelta::from_millis(150)),
    )
}

/// A shutdown issued *while a migration is in flight* (the absorb side is
/// stalled for a full second) must wait for the handoff to complete, drain
/// the chain and return — without deadlock and without losing the migrated
/// frames.
#[test]
fn cancel_during_an_in_flight_migration_drains_without_losing_frames() {
    let schedule = band_schedule(200.0, 2_000, 11);
    let oracle = handshake_join::baselines::run_kang(BandPredicate::default(), &schedule);
    let oracle_keys = oracle.result_keys();
    let events = schedule.events().len();

    let cancel = CancelToken::new();
    // The shrink fires at ~25% of the 2 s schedule (~0.5 s of wall time)
    // and its absorb stalls for 1 s, so a cancel at 0.7 s lands inside
    // the migration window with ±0.2 s of slack on both sides.
    let canceller = cancel_after(&cancel, Duration::from_millis(700));

    let outcome = with_deadline(Duration::from_secs(30), move || {
        let mut pipeline = ElasticPipeline::new(
            4,
            llhj_factory(BandPredicate::default()),
            BandPredicate::default(),
            RoundRobin,
            PipelineOptions {
                batch_size: 4,
                pacing: Pacing::RealTime { speedup: 1.0 },
                cancel: Some(cancel),
                ..Default::default()
            },
        );
        pipeline.set_migration_stall(Duration::from_secs(1));
        let plan = ScalePlan::new(vec![ScaleStep {
            after_events: events / 4,
            target_nodes: 2,
        }]);
        pipeline.run_schedule(&schedule, &plan);
        pipeline.finish()
    });
    canceller.join().unwrap();

    assert!(outcome.cancelled, "the cancel must be reported");
    assert_eq!(
        outcome.resize_log.len(),
        1,
        "the in-flight migration must complete despite the shutdown"
    );
    assert!(
        outcome.resize_log[0].migrated_tuples > 0,
        "the stalled handoff carried real window state"
    );
    assert!(
        outcome.results.len() < oracle_keys.len(),
        "the cancel interrupted the run early, so only a prefix was joined"
    );
    assert_sound(&outcome.result_keys(), &oracle_keys, "cancelled run");
}

/// `finish()` issued immediately after a stalled migration (no cancel, no
/// remaining input) must serialise behind the handoff and produce the full
/// exact result set.
#[test]
fn finish_right_after_a_stalled_migration_is_exact() {
    let schedule = band_schedule(400.0, 400, 23);
    let oracle = handshake_join::baselines::run_kang(BandPredicate::default(), &schedule);
    let events = schedule.events().len();

    let outcome = with_deadline(Duration::from_secs(30), move || {
        let mut pipeline = ElasticPipeline::new(
            4,
            llhj_factory(BandPredicate::default()),
            BandPredicate::default(),
            RoundRobin,
            PipelineOptions {
                batch_size: 4,
                pacing: Pacing::RealTime { speedup: 1.0 },
                ..Default::default()
            },
        );
        pipeline.set_migration_stall(Duration::from_millis(200));
        // The resize fires on the very last event; finish() follows
        // immediately, while the stalled handoff is still in flight.
        let plan = ScalePlan::new(vec![ScaleStep {
            after_events: events,
            target_nodes: 2,
        }]);
        pipeline.run_schedule(&schedule, &plan);
        pipeline.finish()
    });

    assert!(!outcome.cancelled);
    assert_eq!(outcome.resize_log.len(), 1);
    assert_eq!(
        outcome.result_keys(),
        oracle.result_keys(),
        "a shutdown racing a migration must not drop or duplicate results"
    );
}

/// A cancel arriving before any planned resize skips the remaining scale
/// steps: the pipeline drains at its current width instead of fencing for
/// a pointless reconfiguration.
#[test]
fn cancel_before_the_planned_resize_skips_it_and_drains() {
    let schedule = band_schedule(200.0, 5_000, 31);
    let oracle = handshake_join::baselines::run_kang(BandPredicate::default(), &schedule);
    let events = schedule.events().len();

    let cancel = CancelToken::new();
    let canceller = cancel_after(&cancel, Duration::from_millis(300));
    let started = Instant::now();
    let outcome = with_deadline(Duration::from_secs(30), move || {
        run_elastic_pipeline(
            2,
            llhj_factory(BandPredicate::default()),
            BandPredicate::default(),
            RoundRobin,
            &schedule,
            // Planned near the end of the 5 s schedule — the cancel at
            // 0.3 s must win long before it.
            &ScalePlan::new(vec![ScaleStep {
                after_events: events * 9 / 10,
                target_nodes: 4,
            }]),
            &PipelineOptions {
                batch_size: 4,
                pacing: Pacing::RealTime { speedup: 1.0 },
                cancel: Some(cancel),
                ..Default::default()
            },
        )
    });
    canceller.join().unwrap();

    assert!(outcome.cancelled);
    assert!(
        outcome.resize_log.is_empty(),
        "a cancelled run must not fence for resizes it never reached"
    );
    assert_eq!(outcome.nodes, 2);
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "the cancel must cut the 5 s replay short (took {:?})",
        started.elapsed()
    );
    assert_sound(
        &outcome.result_keys(),
        &oracle.result_keys(),
        "early cancel",
    );
}
