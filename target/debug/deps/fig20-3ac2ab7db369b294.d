/root/repo/target/debug/deps/fig20-3ac2ab7db369b294.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/libfig20-3ac2ab7db369b294.rmeta: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
