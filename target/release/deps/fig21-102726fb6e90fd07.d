/root/repo/target/release/deps/fig21-102726fb6e90fd07.d: crates/bench/src/bin/fig21.rs

/root/repo/target/release/deps/fig21-102726fb6e90fd07: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
