//! Conformance suite for the lock-free SPSC ring transport.
//!
//! The ring transport is pure plumbing: swapping the per-edge
//! mutex/condvar channel for the bounded lock-free ring must not change a
//! single result byte, at any batch granularity, under either paper
//! workload, and across live grow/shrink reconfigurations.  These sweeps
//! pin that claim three ways for every seeded case:
//!
//! * **byte-identical to the mutex path** — the exact sorted
//!   `(r_seq, s_seq)` key vectors, not counts;
//! * **byte-identical to the Kang oracle** — so the two transports cannot
//!   agree by being wrong together;
//! * **bounded allocations** — the frame arenas recycle emptied batch
//!   buffers back upstream, so a steady-state run allocates a small
//!   constant number of buffers rather than one per injected frame.
//!
//! A final smoke run turns `pin_cores` on: on a host with too few cores
//! pinning degrades to a no-op, and either way the results must stay
//! byte-identical — placement is not semantics.

use handshake_join::baselines::run_kang;
use handshake_join::prelude::*;
use llhj_workload::WorkloadRng;

fn band_schedule(seed: u64) -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(400.0, TimeDelta::from_millis(400), 220, seed);
    band_join_schedule(
        &workload,
        WindowSpec::Time(TimeDelta::from_millis(150)),
        WindowSpec::Time(TimeDelta::from_millis(150)),
    )
}

fn equi_schedule(seed: u64) -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = EquiJoinWorkload {
        rate_per_sec: 400.0,
        duration: TimeDelta::from_millis(400),
        domain: 60,
        seed,
    };
    equi_join_schedule(
        &workload,
        WindowSpec::Time(TimeDelta::from_millis(150)),
        WindowSpec::Time(TimeDelta::from_millis(150)),
    )
}

fn options(transport: Transport, batch_size: usize) -> PipelineOptions {
    PipelineOptions {
        batch_size,
        transport,
        pacing: Pacing::RealTime { speedup: 4.0 },
        ..Default::default()
    }
}

/// Fixed pipelines: both transports, both predicates, batch 1/16/64,
/// seeded widths — every combination byte-identical to the oracle.
#[test]
fn ring_transport_matches_mutex_path_and_kang_across_substrates() {
    let mut rng = WorkloadRng::seed_from_u64(0x51_C0DE);
    for case in 0..4u64 {
        let seed = 0x51EED ^ case;
        let nodes = rng.gen_range_u32(2, 5) as usize;
        let band = band_schedule(seed);
        let equi = equi_schedule(seed);
        let band_oracle = run_kang(BandPredicate::default(), &band).result_keys();
        let equi_oracle = run_kang(EquiXaPredicate, &equi).result_keys();
        assert!(
            band_oracle.len() > 10,
            "case {case}: degenerate band workload"
        );
        assert!(
            equi_oracle.len() > 10,
            "case {case}: degenerate equi workload"
        );

        for batch_size in [1usize, 16, 64] {
            let label = format!("case {case}, {nodes} nodes, batch {batch_size}");
            let pred = BandPredicate::default();
            let ring = run_pipeline(
                llhj_nodes(nodes, pred),
                pred,
                RoundRobin,
                &band,
                &options(Transport::Ring, batch_size),
            );
            let mutex = run_pipeline(
                llhj_nodes(nodes, pred),
                pred,
                RoundRobin,
                &band,
                &options(Transport::Mutex, batch_size),
            );
            assert_eq!(
                ring.result_keys(),
                band_oracle,
                "{label}: band ring vs oracle"
            );
            assert_eq!(
                mutex.result_keys(),
                band_oracle,
                "{label}: band mutex vs oracle"
            );

            let ring = run_pipeline(
                llhj_indexed_nodes(nodes, EquiXaPredicate),
                EquiXaPredicate,
                HashKey,
                &equi,
                &options(Transport::Ring, batch_size),
            );
            let mutex = run_pipeline(
                llhj_indexed_nodes(nodes, EquiXaPredicate),
                EquiXaPredicate,
                HashKey,
                &equi,
                &options(Transport::Mutex, batch_size),
            );
            assert_eq!(
                ring.result_keys(),
                equi_oracle,
                "{label}: equi ring vs oracle"
            );
            assert_eq!(
                mutex.result_keys(),
                equi_oracle,
                "{label}: equi mutex vs oracle"
            );
        }
    }
}

/// Elastic pipelines resized mid-run: a grow and a shrink at seeded
/// points, on both transports, byte-identical to the oracle and to each
/// other.  The resize fences drain, detach and re-wire the ring edges at
/// the chain boundaries — the window where a transport bug would lose or
/// duplicate a frame.
#[test]
fn ring_transport_survives_grow_and_shrink_mid_run() {
    let mut rng = WorkloadRng::seed_from_u64(0xE1A_571C);
    for case in 0..3u64 {
        let schedule = band_schedule(0xB4D ^ case);
        let events = schedule.events().len();
        let lo = events / 10;
        let hi = events * 9 / 10;
        let a = lo + rng.gen_range_u32(0, (hi - lo) as u32 - 1) as usize;
        let b = lo + rng.gen_range_u32(0, (hi - lo) as u32 - 1) as usize;
        let (grow_at, shrink_at) = (a.min(b), a.max(b).max(a.min(b) + 1));
        let plan = ScalePlan::new(vec![
            ScaleStep {
                after_events: grow_at,
                target_nodes: 4,
            },
            ScaleStep {
                after_events: shrink_at,
                target_nodes: 2,
            },
        ]);
        let pred = BandPredicate::default();
        let oracle = run_kang(pred, &schedule).result_keys();

        let mut keys = Vec::new();
        for transport in [Transport::Ring, Transport::Mutex] {
            let opts = PipelineOptions {
                batch_size: 16,
                transport,
                pacing: Pacing::RealTime { speedup: 1.0 },
                ..Default::default()
            };
            let outcome = run_elastic_pipeline(
                3,
                llhj_factory(pred),
                pred,
                RoundRobin,
                &schedule,
                &plan,
                &opts,
            );
            assert_eq!(
                outcome.resize_log.len(),
                2,
                "case {case} ({transport:?}): both resizes must have run"
            );
            keys.push(outcome.result_keys());
        }
        assert_eq!(keys[0], oracle, "case {case}: ring vs oracle");
        assert_eq!(keys[1], oracle, "case {case}: mutex vs oracle");
        assert_eq!(keys[0], keys[1], "case {case}: transports must agree");
    }
}

/// The arena satellite: with buffers flowing back upstream, a run that
/// injects hundreds of frames allocates only a bounded handful of batch
/// buffers — steady state runs out of the recycled pool, not the
/// allocator.
#[test]
fn frame_arenas_bound_steady_state_allocations() {
    let pred = BandPredicate::default();
    let schedule = band_schedule(0xA110C);
    // Recycling throughput is scheduling-dependent: on a host saturated
    // by the rest of the suite the flow-back rings lag and the driver
    // allocates fresh buffers it would normally reuse.  One clean
    // attempt out of three proves the mechanism; a regression to
    // allocate-per-frame fails all three by 4x.
    let mut last = (0u64, 0u64);
    for attempt in 0..3 {
        let outcome = run_pipeline(
            llhj_nodes(3, pred),
            pred,
            RoundRobin,
            &schedule,
            &options(Transport::Ring, 1),
        );
        assert!(
            outcome.frames_injected > 100,
            "workload too small to exercise recycling: {} frames",
            outcome.frames_injected
        );
        // Warm-up fills the per-worker pools and the flow-back rings;
        // after that every entry frame reuses a recycled buffer.  The
        // bound is deliberately generous (a quarter of the frames) —
        // the honest claim is "bounded, not proportional".
        if outcome.batch_allocs * 4 < outcome.frames_injected {
            return;
        }
        last = (outcome.batch_allocs, outcome.frames_injected);
        eprintln!(
            "attempt {attempt}: {} fresh allocations for {} frames (loaded host?), retrying",
            last.0, last.1
        );
    }
    panic!(
        "arenas must recycle: {} fresh allocations for {} frames on every attempt",
        last.0, last.1
    );
}

/// `pin_cores` is placement, not semantics: results stay byte-identical
/// whether pinning engages or (cores < threads) silently no-ops.
#[test]
fn pinned_run_is_byte_identical_to_unpinned() {
    let pred = BandPredicate::default();
    let schedule = band_schedule(0x1D_CA7);
    let oracle = run_kang(pred, &schedule).result_keys();
    for pin_cores in [false, true] {
        let opts = PipelineOptions {
            batch_size: 16,
            pin_cores,
            pacing: Pacing::RealTime { speedup: 4.0 },
            ..Default::default()
        };
        let outcome = run_pipeline(llhj_nodes(3, pred), pred, RoundRobin, &schedule, &opts);
        assert_eq!(outcome.result_keys(), oracle, "pin_cores = {pin_cores}");
    }
}
