//! Elastic node-chain scaling: grow or shrink a live pipeline.
//!
//! [`crate::run_pipeline`] freezes the node count at construction time, so
//! the paper's "sweep the core count" story (Section 6) can only be told by
//! re-deploying.  This module makes the chain *elastic*: an
//! [`ElasticPipeline`] owns the worker threads and channel wiring and can
//! insert or retire join nodes **mid-run** without dropping or duplicating
//! a single result.  The control path is the [`ScalePipeline`] trait:
//! `grow(n)` / `shrink(n)` / `scale_to(n)`; the *closed-loop* path — a
//! controller that decides when to call them — is [`crate::autoscale`].
//!
//! The data plane (worker loop, entry batching, collector) is the shared
//! machinery of the crate-private `exec` module — exactly the code the fixed pipeline
//! runs.  This module only adds the control plane of a *resizable*
//! deployment: owned (rather than scoped) workers behind handles, command
//! mailboxes, and the reconfiguration protocol below.
//!
//! ## The reconfiguration protocol
//!
//! Every resize runs the same three-phase protocol:
//!
//! 1. **Fence.**  The driver flushes its partial entry frames and stops
//!    injecting, then waits for the global in-flight frame counter to reach
//!    zero.  Because every emitted frame (forwards, acknowledgements,
//!    expedition ends, expiries) is counted, a zero counter means the chain
//!    is *quiescent*: no message anywhere.  For low-latency handshake join
//!    quiescence implies settled state — all expedition flags cleared, all
//!    `IWS` buffers empty — which the export path asserts.
//! 2. **Handoff** (shrink only).  Retiring nodes hand their window
//!    segments to the surviving side over the *existing* neighbour
//!    channels, as [`llhj_core::message::Handoff`] frames: the rightmost
//!    retiree exports and sends left; each inner retiree absorbs the
//!    incoming segment, acknowledges it, merges it with its own state and
//!    forwards the union left; the surviving boundary node installs the
//!    final segment and acknowledges.  A retiree only exits after its ack
//!    arrives, so a segment always rests on exactly one node — the
//!    invariant LLHJ's matching rules need (a stored tuple is matched by
//!    every traversing arrival and found by its traversing expiry message
//!    wherever it rests).  Growth needs no handoff: new nodes start empty
//!    and fill as the windows slide.
//! 3. **Rewire.**  Worker threads receive renumbering and replacement
//!    channel endpoints through per-worker command mailboxes (woken
//!    through the same `WaitSet`s that deliver frames); new workers are
//!    spawned, retired ones joined, and the driver's right entry channel
//!    moves to the new rightmost node.  Once every worker confirms, the
//!    driver resumes the schedule with an injector rebuilt for the new
//!    node count.
//!
//! Old tuples keep resting where the reconfiguration left them; the
//! windows rebalance naturally as old tuples expire and new arrivals are
//! homed across the new chain.  Punctuation safety is untouched: high-water
//! marks only advance, no result is produced while fenced, and a result
//! joining an old stored tuple carries the *later* timestamp of the pair.
//!
//! ## When to scale vs. when to batch
//!
//! `batch_size` buys per-message efficiency on a fixed chain and acts
//! within microseconds; scaling changes aggregate scan capacity (windows
//! per node) and costs one fence (typically well under a millisecond plus
//! the drain time of in-flight frames).  Chase sustained rate changes with
//! the chain length, absorb short bursts with batching — the
//! `bench_elastic` binary measures exactly this trade-off, and the
//! [`crate::autoscale`] controller automates the chain-length half.

use crate::autoscale::{AutoscaleOptions, Controller};
use crate::channel::{bounded, spsc_bounded, spsc_unbounded, unbounded, Receiver, Sender, WaitSet};
use crate::exec::{
    spawn_collector, CensusReport, CollectorConfig, CoreMap, EntryState, InFlight, ScaleConfirm,
    StreamClock, Worker, WorkerCommand, WorkerHandle, WorkerShared, WorkerWiring,
};
use crate::metrics::MetricsBus;
use crate::options::{Pacing, PipelineOptions, Transport};
use llhj_core::checkpoint::{
    load_latest_checkpoint, ChainCheckpoint, ChainCheckpointer, CheckpointError, CheckpointPayload,
    CheckpointStore, ReplayLog,
};
use llhj_core::driver::{DriverSchedule, Injector, StreamEvent};
use llhj_core::homing::HomePolicy;
use llhj_core::message::{LeftToRight, MessageBatch, RightToLeft};
use llhj_core::metrics::AutoscaleReport;
use llhj_core::node::PipelineNode;
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::{HighWaterMarks, OutputItem};
use llhj_core::rebalance::{EdgeTransfer, MigrationConstraint, RedistributionPlan};
use llhj_core::result::TimedResult;
use llhj_core::stats::{LatencyPoint, LatencySummary, NodeCounters};
use llhj_core::time::Timestamp;
use llhj_core::tuple::SeqNo;
use llhj_sync::sync::atomic::{AtomicBool, Ordering};
use llhj_sync::sync::Arc;
use llhj_sync::thread::JoinHandle;
use llhj_sync::time::{Duration, Instant};

/// How long the control plane waits for a single protocol step (a worker
/// confirmation or a retiring worker's exit) before declaring the fence
/// protocol wedged.  Generous: steps complete in microseconds.
const PROTOCOL_STEP_TIMEOUT: Duration = Duration::from_secs(30);

type Frame<R, S> = MessageBatch<R, S>;

/// A freshly created link: the sender half plus the (not yet handed out)
/// receiver half.
type NewLink<R, S> = (Sender<Frame<R, S>>, Option<Receiver<Frame<R, S>>>);

/// Both halves of a frame link, as returned by the channel constructors.
type Link<R, S> = (Sender<Frame<R, S>>, Receiver<Frame<R, S>>);

/// A bounded driver entry link for the consumer parking on `waiter`,
/// honouring the configured transport.  Ring channels bind the wait set at
/// construction, which is why every call site threads the *consuming*
/// worker's wait set through here.
fn entry_link<R, S>(options: &PipelineOptions, waiter: &WaitSet) -> Link<R, S> {
    match options.transport {
        Transport::Ring => spsc_bounded(options.channel_capacity, Some(waiter)),
        Transport::Mutex => bounded(options.channel_capacity),
    }
}

/// An unbounded inner link (worker → worker), same waiter contract.
fn inner_link<R, S>(options: &PipelineOptions, waiter: &WaitSet) -> Link<R, S> {
    match options.transport {
        Transport::Ring => spsc_unbounded(options.ring_capacity, Some(waiter)),
        Transport::Mutex => unbounded(),
    }
}

/// Builds one pipeline node for position `id` of `nodes`.  The elastic
/// pipeline re-invokes the factory whenever growth adds nodes.
pub type NodeFactory<R, S> = Arc<dyn Fn(usize, usize) -> Box<dyn PipelineNode<R, S>> + Send + Sync>;

/// A [`NodeFactory`] producing plain low-latency handshake join nodes.
pub fn llhj_factory<R, S, P>(predicate: P) -> NodeFactory<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
{
    Arc::new(move |id, nodes| {
        Box::new(llhj_core::node_llhj::LlhjNode::new(
            id,
            nodes,
            predicate.clone(),
        ))
    })
}

/// A [`NodeFactory`] producing hash-indexed low-latency handshake join
/// nodes (requires a predicate exposing equi-keys).
pub fn llhj_indexed_factory<R, S, P>(predicate: P) -> NodeFactory<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
{
    Arc::new(move |id, nodes| {
        Box::new(llhj_core::node_llhj::LlhjNode::with_index(
            id,
            nodes,
            predicate.clone(),
        ))
    })
}

/// A [`NodeFactory`] producing original handshake join nodes with
/// age-based flow — the exact configuration (with `batch_size = 1`) under
/// which HSJ reproduces the oracle result set.  Elastic since the capacity
/// renegotiation refactor: resizes redistribute under the stream-monotone
/// constraint and migrated segments are installed with matching.
pub fn hsj_age_factory<R, S, P>(
    window_r: llhj_core::time::TimeDelta,
    window_s: llhj_core::time::TimeDelta,
    predicate: P,
) -> NodeFactory<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
{
    Arc::new(move |id, nodes| {
        Box::new(llhj_core::node_hsj::HsjNode::with_age_flow(
            id,
            nodes,
            window_r,
            window_s,
            predicate.clone(),
        ))
    })
}

/// The elastic control path: resize a live pipeline.
///
/// Every method fences the pipeline (drains all in-flight frames), runs
/// the state-handoff protocol if nodes retire, rewires the chain and
/// resumes.  Calls are synchronous: when they return, the pipeline is
/// processing again at the new width.
pub trait ScalePipeline {
    /// Inserts `delta` nodes: at the right end for free node types, split
    /// across both ends for stream-monotone ones (HSJ), so each stream's
    /// migration constraint can reach fresh nodes.
    fn grow(&mut self, delta: usize);
    /// Retires the `delta` rightmost nodes, migrating their window state
    /// into the surviving chain.
    fn shrink(&mut self, delta: usize);
    /// Resizes to exactly `target` nodes (≥ 1).
    fn scale_to(&mut self, target: usize);
}

/// One entry of a [`ScalePlan`]: after `after_events` schedule events have
/// been injected, resize the pipeline to `target_nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleStep {
    /// Number of schedule events (arrivals *and* expiries) to inject
    /// before this resize fires.
    pub after_events: usize,
    /// The pipeline width to resize to.
    pub target_nodes: usize,
}

/// A schedule-driven resize plan for [`run_elastic_pipeline`].
#[derive(Debug, Clone, Default)]
pub struct ScalePlan {
    steps: Vec<ScaleStep>,
}

impl ScalePlan {
    /// A plan with no resizes.
    pub fn none() -> Self {
        ScalePlan::default()
    }

    /// Builds a plan from steps; they are sorted by event index.
    pub fn new(mut steps: Vec<ScaleStep>) -> Self {
        steps.sort_by_key(|s| s.after_events);
        ScalePlan { steps }
    }

    /// The ordered steps.
    pub fn steps(&self) -> &[ScaleStep] {
        &self.steps
    }
}

/// One completed reconfiguration, for the outcome's resize log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResizeEvent {
    /// Stream time at which the fence completed.
    pub at: Timestamp,
    /// Chain width before the resize.
    pub from_nodes: usize,
    /// Chain width after the resize.
    pub to_nodes: usize,
    /// Window tuples the retirement handoff moved into the surviving
    /// boundary (0 for growth).
    pub migrated_tuples: usize,
    /// Window-tuple hops the chain-wide redistribution performed after
    /// the width change (a tuple crossing two edges counts twice).
    pub rebalanced_tuples: usize,
    /// Per-node stored-window census `(|WR_k|, |WS_k|)` immediately after
    /// the redistribution, indexed by node id — what the balance
    /// assertions of the conformance suite read.
    pub residence_after: Vec<(usize, usize)>,
    /// Wall-clock duration of the whole reconfiguration (fence, handoff,
    /// rewire, redistribution).
    pub fence_wall_micros: u64,
}

/// Everything measured during one elastic run.
#[derive(Debug)]
pub struct ElasticOutcome<R, S> {
    /// All produced results, in collection order.
    pub results: Vec<TimedResult<R, S>>,
    /// The punctuated output stream (empty unless `punctuate` was set).
    pub output: Vec<OutputItem<TimedResult<R, S>>>,
    /// Work counters of the nodes alive at shutdown, indexed by node id.
    pub counters: Vec<NodeCounters>,
    /// Work counters of nodes retired by shrink operations, in retirement
    /// order.
    pub retired_counters: Vec<NodeCounters>,
    /// Latency statistics (meaningful only for paced runs).
    pub latency: LatencySummary,
    /// Latency time series.
    pub latency_series: Vec<LatencyPoint>,
    /// Wall-clock time the run took.
    pub elapsed: Duration,
    /// Number of punctuations emitted.
    pub punctuation_count: u64,
    /// Number of R/S arrivals injected.
    pub arrivals_per_stream: (usize, usize),
    /// Number of frames the driver injected into the pipeline ends.
    pub frames_injected: u64,
    /// Idle wake-ups accumulated across all workers (alive and retired).
    pub idle_wakeups: u64,
    /// Every reconfiguration the pipeline went through, in order.
    pub resize_log: Vec<ResizeEvent>,
    /// Final chain width.
    pub nodes: usize,
    /// True if the run was interrupted by [`PipelineOptions::cancel`].
    pub cancelled: bool,
}

impl<R, S> ElasticOutcome<R, S> {
    /// Sorted `(r_seq, s_seq)` result keys for comparison with the oracle.
    pub fn result_keys(&self) -> Vec<(SeqNo, SeqNo)> {
        let mut keys: Vec<_> = self.results.iter().map(|t| t.result.key()).collect();
        keys.sort_unstable();
        keys
    }

    /// Total predicate evaluations across all workers, retired included.
    pub fn total_comparisons(&self) -> u64 {
        self.counters
            .iter()
            .chain(self.retired_counters.iter())
            .map(|c| c.comparisons)
            .sum()
    }
}

/// A live, resizable handshake-join pipeline.
///
/// Unlike [`crate::run_pipeline`] (fixed chain), the elastic pipeline owns
/// its workers and wiring behind a handle, so the chain can be resized
/// between schedule events via [`ScalePipeline`].  Use
/// [`run_elastic_pipeline`] for the common replay-with-plan case,
/// [`crate::autoscale::run_autoscaled_pipeline`] for the closed loop, or
/// drive [`ElasticPipeline::run_schedule`] / [`ScalePipeline::scale_to`] /
/// [`ElasticPipeline::finish`] directly.
pub struct ElasticPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    predicate: P,
    policy: H,
    factory: NodeFactory<R, S>,
    /// The node type's migration semantics, probed from the factory once:
    /// the redistribution planner clamps flows the node type forbids.
    constraint: MigrationConstraint,
    options: PipelineOptions,
    workers: Vec<WorkerHandle<R, S>>,
    entry: EntryState<R, S>,
    in_flight: Arc<InFlight>,
    clock: Arc<StreamClock>,
    stop: Arc<AtomicBool>,
    stop_signal: WaitSet,
    hwm: Arc<HighWaterMarks>,
    metrics: Arc<MetricsBus>,
    result_tx: Option<Sender<TimedResult<R, S>>>,
    collector: Option<JoinHandle<crate::exec::CollectorOutcome<R, S>>>,
    injector: Injector<R, S, P, H>,
    started: Instant,
    resize_log: Vec<ResizeEvent>,
    retired_counters: Vec<NodeCounters>,
    retired_idle_wakeups: u64,
    migration_stall: Option<Duration>,
    seen_r: usize,
    seen_s: usize,
    cancelled: bool,
    /// Core placement for worker/collector threads; `None` when pinning is
    /// off or unavailable.  The elastic driver itself stays unpinned: it
    /// is the caller's thread, and resizes change its working set anyway.
    core_map: Option<CoreMap>,
    /// Next pin slot to hand a newly spawned worker (grown workers keep
    /// taking fresh slots; the map wraps modulo the core count).
    next_pin_slot: usize,
}

impl<R, S, P, H> ElasticPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    /// Deploys an elastic pipeline of `initial_nodes` nodes built by
    /// `factory`.  Every node the factory produces must support state
    /// migration ([`PipelineNode::supports_migration`]).
    pub fn new(
        initial_nodes: usize,
        factory: NodeFactory<R, S>,
        predicate: P,
        policy: H,
        options: PipelineOptions,
    ) -> Self {
        assert!(initial_nodes > 0, "pipeline needs at least one node");
        options
            .validate()
            .unwrap_or_else(|err| panic!("invalid PipelineOptions: {err}"));

        let in_flight = Arc::new(InFlight::new());
        let clock = Arc::new(StreamClock::new(options.pacing));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_signal = WaitSet::new();
        let hwm = HighWaterMarks::new();
        let metrics = Arc::new(MetricsBus::new());
        let (result_tx, result_rx) = unbounded();

        // Channel chain, exactly as in the fixed runtime: bounded entry
        // channels (driver backpressure), unbounded inner links (two
        // neighbours may send to each other simultaneously).  The wait
        // sets are created first — ring channels bind their consumer's
        // wait set at construction.
        let n = initial_nodes;
        let waitsets: Vec<WaitSet> = (0..n).map(|_| WaitSet::new()).collect();
        let mut ltr_tx: Vec<Option<Sender<Frame<R, S>>>> = Vec::with_capacity(n);
        let mut ltr_rx: Vec<Option<Receiver<Frame<R, S>>>> = Vec::with_capacity(n);
        let mut rtl_tx: Vec<Option<Sender<Frame<R, S>>>> = Vec::with_capacity(n);
        let mut rtl_rx: Vec<Option<Receiver<Frame<R, S>>>> = Vec::with_capacity(n);
        for (k, waitset) in waitsets.iter().enumerate() {
            let (tx, rx) = if k == 0 {
                entry_link(&options, waitset)
            } else {
                inner_link(&options, waitset)
            };
            ltr_tx.push(Some(tx));
            ltr_rx.push(Some(rx));
            let (tx, rx) = if k == n - 1 {
                entry_link(&options, waitset)
            } else {
                inner_link(&options, waitset)
            };
            rtl_tx.push(Some(tx));
            rtl_rx.push(Some(rx));
        }
        let left_tx = ltr_tx[0].take().expect("entry channel");
        let right_tx = rtl_tx[n - 1].take().expect("entry channel");

        // Workers plus collector; the driver (caller's thread) stays
        // unpinned on the elastic path.
        let core_map = CoreMap::new(options.pin_cores, n + 1, options.pin_core_offset);

        let constraint = factory(0, 1).migration_constraint();
        let mut pipeline = ElasticPipeline {
            predicate: predicate.clone(),
            policy: policy.clone(),
            factory,
            constraint,
            workers: Vec::with_capacity(n),
            entry: EntryState::new(left_tx, right_tx),
            in_flight,
            clock,
            stop,
            stop_signal,
            hwm,
            metrics,
            result_tx: Some(result_tx),
            collector: None,
            injector: Injector::new(predicate, policy, n),
            started: Instant::now(),
            resize_log: Vec::new(),
            retired_counters: Vec::new(),
            retired_idle_wakeups: 0,
            migration_stall: None,
            seen_r: 0,
            seen_s: 0,
            cancelled: false,
            core_map,
            next_pin_slot: 0,
            options,
        };

        let mut waitsets_iter = waitsets.into_iter();
        for k in 0..n {
            let left_rx = ltr_rx[k].take().expect("left input");
            let right_rx = rtl_rx[k].take().expect("right input");
            let to_right = if k + 1 < n {
                ltr_tx[k + 1].take()
            } else {
                None
            };
            let to_left = if k > 0 { rtl_tx[k - 1].take() } else { None };
            let waitset = waitsets_iter.next().expect("one wait set per worker");
            let handle = pipeline.spawn_worker(k, n, left_rx, right_rx, to_left, to_right, waitset);
            pipeline.workers.push(handle);
        }
        let collector = spawn_collector(
            vec![result_rx],
            Arc::clone(&pipeline.stop),
            pipeline.stop_signal.clone(),
            Arc::clone(&pipeline.hwm),
            Some(Arc::clone(&pipeline.metrics)),
            CollectorConfig {
                punctuate: pipeline.options.punctuate,
                interval: pipeline.options.collect_interval,
                latency_bucket: pipeline.options.latency_bucket,
                pin_core: pipeline.take_pin_slot(),
            },
        );
        pipeline.collector = Some(collector);
        pipeline.metrics.set_nodes(n);
        pipeline.register_occupancy_probe();
        pipeline
    }

    /// Current chain width.
    pub fn nodes(&self) -> usize {
        self.workers.len()
    }

    /// The resize log so far.
    pub fn resize_log(&self) -> &[ResizeEvent] {
        &self.resize_log
    }

    /// The pipeline's metrics bus (the auto-scaler samples it; tests and
    /// dashboards may too).
    pub fn metrics_bus(&self) -> Arc<MetricsBus> {
        Arc::clone(&self.metrics)
    }

    pub(crate) fn stream_clock(&self) -> Arc<StreamClock> {
        Arc::clone(&self.clock)
    }

    /// Test instrumentation: stalls every segment absorption by `stall`,
    /// widening the handoff window so teardown tests can deterministically
    /// overlap a shutdown with an in-flight migration.
    pub fn set_migration_stall(&mut self, stall: Duration) {
        self.migration_stall = Some(stall);
    }

    /// (Re-)points the metrics bus's occupancy probe at the current entry
    /// channels (the right entry moves whenever the rightmost node
    /// changes).
    fn register_occupancy_probe(&self) {
        let left = self.entry.left.sender().clone();
        let right = self.entry.right.sender().clone();
        self.metrics
            .set_occupancy_probe(move || (left.len(), right.len()));
    }

    /// The next core slot for a newly spawned thread, `None` when pinning
    /// is off.  Slots are never reused (a retired worker's core simply
    /// goes idle); the map wraps modulo the core count, so a long
    /// grow/shrink history degrades to core sharing, not failure.
    fn take_pin_slot(&mut self) -> Option<usize> {
        let map = self.core_map.as_ref()?;
        let core = map.core(self.next_pin_slot);
        self.next_pin_slot += 1;
        Some(core)
    }

    /// Spawns one worker on `waitset`.  The wait set must be the one every
    /// ring channel handed to this worker was constructed with — the
    /// channels bind it at construction, and `Worker::spawn`'s
    /// `set_waiter` calls assert the binding.
    #[allow(clippy::too_many_arguments)]
    fn spawn_worker(
        &mut self,
        id: usize,
        nodes: usize,
        left_rx: Receiver<Frame<R, S>>,
        right_rx: Receiver<Frame<R, S>>,
        to_left: Option<Sender<Frame<R, S>>>,
        to_right: Option<Sender<Frame<R, S>>>,
        waitset: WaitSet,
    ) -> WorkerHandle<R, S> {
        let node = (self.factory)(id, nodes);
        assert!(
            node.supports_migration(),
            "elastic pipelines require nodes that support state migration \
             (node {id} does not)"
        );
        let shared = WorkerShared {
            hwm: Arc::clone(&self.hwm),
            clock: Arc::clone(&self.clock),
            stop: Arc::clone(&self.stop),
            in_flight: Arc::clone(&self.in_flight),
            results: self
                .result_tx
                .as_ref()
                .expect("workers spawn before finish")
                .clone(),
            busy_ns: Some(self.metrics.register_node(id)),
        };
        // Elastic workers recycle frame buffers through their local pools
        // only: the chain ends move on every resize, so a driver flow-back
        // edge would need re-wiring inside the fence for no measured gain.
        let mut wiring = WorkerWiring::new(waitset);
        wiring.pin_core = self.take_pin_slot();
        Worker::spawn(
            id, nodes, node, left_rx, right_rx, to_left, to_right, shared, true, wiring,
        )
    }

    // -- driver-side entry batching -------------------------------------

    fn flush_both(&mut self) {
        self.entry.flush_both(&self.in_flight);
    }

    /// Injects one driver event, applying `batch_size` / `flush_interval`
    /// exactly like the fixed runtime's driver (same [`EntryState`]).
    fn inject(
        &mut self,
        event: &llhj_core::driver::DriverEvent<R, S>,
        schedule_r: usize,
        schedule_s: usize,
    ) {
        self.clock.note_injection(event.at);
        if let Some(interval) = self.options.flush_interval {
            self.entry
                .flush_older_than(event.at, interval, &self.in_flight);
        }
        let entry = &mut self.entry;
        match &event.event {
            StreamEvent::ArrivalR(r) => {
                entry
                    .left
                    .push_arrival(self.injector.inject_r(r.clone()), event.at);
                self.metrics.note_arrival();
                self.seen_r += 1;
                if entry.left.arrivals >= self.options.batch_size || self.seen_r == schedule_r {
                    entry
                        .left
                        .flush(&self.in_flight, &mut entry.frames_injected);
                }
            }
            StreamEvent::ExpireS(seq) => {
                // An expiry must never overtake its own arrival: if the
                // arrival is still parked in the opposite entry buffer
                // (possible on a sparse mesh shard whose partial frames
                // outwait the window), flush it ahead of the expiry and
                // let it settle at its home node before the expiry even
                // enters — the two travel in opposite directions on
                // different channels, so only this driver-side barrier
                // orders them.
                if entry
                    .right
                    .holds_pending(|m| matches!(m, RightToLeft::ArrivalS(t) if t.tuple.seq == *seq))
                {
                    entry
                        .right
                        .flush(&self.in_flight, &mut entry.frames_injected);
                    self.in_flight.wait_for_quiescence();
                }
                entry.left.push(LeftToRight::ExpiryS(*seq), event.at);
            }
            StreamEvent::ArrivalS(s) => {
                entry
                    .right
                    .push_arrival(self.injector.inject_s(s.clone()), event.at);
                self.metrics.note_arrival();
                self.seen_s += 1;
                if entry.right.arrivals >= self.options.batch_size || self.seen_s == schedule_s {
                    entry
                        .right
                        .flush(&self.in_flight, &mut entry.frames_injected);
                }
            }
            StreamEvent::ExpireR(seq) => {
                if entry
                    .left
                    .holds_pending(|m| matches!(m, LeftToRight::ArrivalR(t) if t.tuple.seq == *seq))
                {
                    entry
                        .left
                        .flush(&self.in_flight, &mut entry.frames_injected);
                    self.in_flight.wait_for_quiescence();
                }
                entry.right.push(RightToLeft::ExpiryR(*seq), event.at);
            }
        }
    }

    /// Real-time pacing wait before injecting an event scheduled at `at`.
    /// Returns `true` if the wait was cancelled.
    ///
    /// With a `flush_interval` configured the wait is sliced at half the
    /// interval of wall time: the fixed runtime bounds a partial entry
    /// frame's wait with a dedicated timer thread, but the elastic driver
    /// owns its entry buffers, so it plays that role itself — a stream
    /// that goes silent mid-run still cannot hold an assembled frame
    /// beyond the interval.
    ///
    /// With a `controller` attached the wait also *actuates* the
    /// auto-scaler: the slice additionally caps at the controller's
    /// sampling tick, and every slice applies a newly published desired
    /// width through the usual fenced protocol.  This is what makes the
    /// closed loop converge on a *silent* stream — a desired resize
    /// published during an arrival gap lands on the next tick instead of
    /// waiting for traffic to resume (fencing an idle chain is nearly
    /// free: there is nothing in flight to drain).
    fn pace_until(
        &mut self,
        at: Timestamp,
        cancel: &crate::channel::CancelToken,
        controller: Option<&Controller>,
    ) -> bool {
        if !matches!(self.options.pacing, Pacing::RealTime { .. }) {
            return false;
        }
        let target = self
            .options
            .stream_to_wall(at.saturating_since(Timestamp::ZERO));
        let deadline = self.started + target;
        let floor = Duration::from_micros(50);
        let flush_slice = self
            .options
            .flush_interval
            .map(|i| (self.options.stream_to_wall(i) / 2).max(floor));
        let tick_slice = controller.map(|c| c.tick().max(floor));
        let slice = match (flush_slice, tick_slice) {
            (Some(f), Some(t)) => Some(f.min(t)),
            (s, None) | (None, s) => s,
        };
        loop {
            if let Some(controller) = controller {
                if let Some(width) = controller.desired_if_changed(self.nodes()) {
                    self.scale_to(width);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let wake = match slice {
                Some(slice) => deadline.min(now + slice),
                None => deadline,
            };
            if cancel.wait_until(wake) {
                return true;
            }
            if let Some(interval) = self.options.flush_interval {
                let now_ts = self.clock.now();
                self.entry
                    .flush_older_than(now_ts, interval, &self.in_flight);
            }
        }
    }

    /// Replays a driver schedule against the live pipeline, firing the
    /// plan's resizes at their event indexes.  Returns `true` if the
    /// replay was cancelled.  Call once per pipeline; then [`Self::finish`].
    pub fn run_schedule(&mut self, schedule: &DriverSchedule<R, S>, plan: &ScalePlan) -> bool {
        let cancel = self.options.cancel.clone().unwrap_or_default();
        let mut steps = plan.steps().iter().peekable();
        for (idx, event) in schedule.events().iter().enumerate() {
            while let Some(step) = steps.next_if(|s| s.after_events <= idx) {
                let target = step.target_nodes;
                self.scale_to(target);
            }
            if cancel.is_cancelled() || self.pace_until(event.at, &cancel, None) {
                self.cancelled = true;
                break;
            }
            self.inject(event, schedule.r_count(), schedule.s_count());
        }
        // Trailing resizes (plan points at or past the schedule end) still
        // run: a conformance sweep may place a resize on the very last
        // event.
        if !self.cancelled {
            let remaining: Vec<ScaleStep> = steps.copied().collect();
            for step in remaining {
                self.scale_to(step.target_nodes);
            }
        }
        self.flush_both();
        self.cancelled
    }

    /// Replays a driver schedule with the **closed loop** engaged: an
    /// [`AutoscaleOptions`] controller thread samples the metrics bus and
    /// publishes a desired width; the driver applies it through the same
    /// fence+handoff protocol a [`ScalePlan`] uses — before every event,
    /// *and* on every controller tick inside an arrival gap (the pacing
    /// wait actuates), so the width converges while the stream is idle
    /// too.  Returns the controller's report (every sample and resize
    /// decision).
    ///
    /// Requires real-time pacing: the loop chases an observed arrival
    /// rate, which an unpaced replay (stream time decoupled from wall
    /// time) does not have.
    pub fn run_schedule_autoscaled(
        &mut self,
        schedule: &DriverSchedule<R, S>,
        autoscale: &AutoscaleOptions,
    ) -> AutoscaleReport {
        assert!(
            matches!(self.options.pacing, Pacing::RealTime { .. }),
            "autoscaling requires Pacing::RealTime (the controller chases \
             a wall-clock arrival rate)"
        );
        let controller = Controller::spawn(
            autoscale,
            &self.options,
            self.metrics_bus(),
            self.stream_clock(),
        );
        let cancel = self.options.cancel.clone().unwrap_or_default();
        for event in schedule.events() {
            if cancel.is_cancelled() || self.pace_until(event.at, &cancel, Some(&controller)) {
                self.cancelled = true;
                break;
            }
            self.inject(event, schedule.r_count(), schedule.s_count());
        }
        self.flush_both();
        controller.finish()
    }

    // -- the reconfiguration protocol ------------------------------------

    /// Fences the pipeline: flushes partial entry frames, then waits until
    /// no frame is in flight anywhere in the chain.
    fn fence(&mut self) {
        self.flush_both();
        self.in_flight.wait_for_quiescence();
    }

    fn confirm(&self, done_rx: &Receiver<ScaleConfirm>, expected: usize, what: &str) -> usize {
        let mut migrated = 0;
        for _ in 0..expected {
            match done_rx.recv_timeout(PROTOCOL_STEP_TIMEOUT) {
                Ok(c) => migrated += c.migrated_tuples,
                Err(_) => panic!("fence protocol stalled waiting for {what}"),
            }
        }
        migrated
    }

    fn shrink_to(&mut self, target: usize) -> usize {
        let current = self.nodes();
        let (done_tx, done_rx) = unbounded();
        let stall = self.migration_stall;

        // Retiring workers, rightmost first: each exports (after absorbing
        // its right neighbour's segment) and hands the union left.
        let retiring: Vec<WorkerHandle<R, S>> = self.workers.split_off(target);
        for (offset, handle) in retiring.iter().enumerate().rev() {
            let k = target + offset;
            let _ = handle.commands().send(WorkerCommand::Retire {
                absorb_first: k + 1 < current,
                stall,
            });
        }

        // The surviving boundary node absorbs the final segment, then
        // becomes the new rightmost: its right input switches to a fresh
        // driver entry channel and its right output disappears.
        let boundary = &self.workers[target - 1];
        let (new_right_tx, new_right_rx) = entry_link(&self.options, &boundary.waitset);
        new_right_rx.set_waiter(&boundary.waitset);
        let _ = boundary.commands().send(WorkerCommand::Absorb {
            from: llhj_core::message::Direction::Right,
            stall,
            done: done_tx.clone(),
        });
        let _ = boundary.commands().send(WorkerCommand::Rewire {
            id: target - 1,
            nodes: target,
            left_rx: None,
            right_rx: Some(new_right_rx),
            to_left: None,
            to_right: Some(None),
            done: done_tx.clone(),
        });
        for (k, handle) in self.workers.iter().enumerate().take(target - 1) {
            let _ = handle.commands().send(WorkerCommand::Rewire {
                id: k,
                nodes: target,
                left_rx: None,
                right_rx: None,
                to_left: None,
                to_right: None,
                done: done_tx.clone(),
            });
        }

        // Retiring workers exit once their segments are acknowledged.
        for handle in retiring {
            let exit = handle.handle.join().expect("retiring worker panicked");
            self.retired_counters.push(exit.counters);
            self.retired_idle_wakeups += exit.idle_wakeups;
        }
        // One Absorb plus `target` Rewires confirm the surviving chain.
        let migrated = self.confirm(&done_rx, target + 1, "shrink confirmations");
        self.entry.right.set_sender(new_right_tx);
        migrated
    }

    fn grow_to(&mut self, target: usize) {
        let current = self.nodes();
        let delta = target - current;
        // Stream-monotone node types (HSJ) grow at BOTH ends: stored S
        // tuples may only migrate leftward, so a purely right-end grow
        // would leave every new node unreachable for the whole resident S
        // window (the historical "S rebalances only by flow" caveat).
        // Splitting the extension — the left end gets the ceiling half —
        // gives each stream fresh nodes its constraint can actually reach.
        // Free node types keep the plain right-end grow.
        let left_delta = if self.constraint == MigrationConstraint::free() {
            0
        } else {
            delta.div_ceil(2)
        };
        let right_delta = delta - left_delta;
        let (done_tx, done_rx) = unbounded();

        // Fresh links for the right extension: link i connects new node
        // `left_delta + current + i` to its left neighbour; the new
        // rightmost gets a fresh bounded entry channel.  Each new worker's
        // wait set exists before its channels (ring binding).
        let right_ws: Vec<WaitSet> = (0..right_delta).map(|_| WaitSet::new()).collect();
        let mut ltr: Vec<NewLink<R, S>> = Vec::new();
        let mut rtl: Vec<NewLink<R, S>> = Vec::new();
        for i in 0..right_delta {
            // ltr[i] feeds new worker i's left input.
            let (tx, rx) = inner_link(&self.options, &right_ws[i]);
            ltr.push((tx, Some(rx)));
            // rtl[i] flows leftward: rtl[0] into the old rightmost, rtl[i]
            // into new worker i − 1.
            let waiter = if i == 0 {
                &self.workers[current - 1].waitset
            } else {
                &right_ws[i - 1]
            };
            let (tx, rx) = inner_link(&self.options, waiter);
            rtl.push((tx, Some(rx)));
        }
        // Spawn the new workers first so the extension is ready before any
        // old worker is rewired towards it.  (New ids renumber the old
        // workers by `left_delta`; their busy slots stay registered under
        // the old position, so per-position busy attribution is
        // approximate across a both-end grow while the totals stay exact.)
        let mut new_right_entry = None;
        if right_delta > 0 {
            let (tx, rx) = entry_link(&self.options, &right_ws[right_delta - 1]);
            new_right_entry = Some(tx);
            let mut new_right_rx = Some(rx);
            for i in 0..right_delta {
                let id = left_delta + current + i;
                let left_rx = ltr[i].1.take().expect("new left input");
                let to_left = Some(rtl[i].0.clone());
                let (right_rx, to_right) = if i + 1 < right_delta {
                    (
                        rtl[i + 1].1.take().expect("new right input"),
                        Some(ltr[i + 1].0.clone()),
                    )
                } else {
                    (new_right_rx.take().expect("new entry"), None)
                };
                let handle = self.spawn_worker(
                    id,
                    target,
                    left_rx,
                    right_rx,
                    to_left,
                    to_right,
                    right_ws[i].clone(),
                );
                self.workers.push(handle);
            }
        }

        // Fresh links for the left extension, the mirror image: `lltr[i]`
        // carries frames from new node i to node i + 1, `lrtl[i]` the
        // reverse; the new leftmost gets a fresh bounded left entry.
        let left_ws: Vec<WaitSet> = (0..left_delta).map(|_| WaitSet::new()).collect();
        let mut lltr: Vec<NewLink<R, S>> = Vec::new();
        let mut lrtl: Vec<NewLink<R, S>> = Vec::new();
        for i in 0..left_delta {
            // lltr[i] flows rightward out of new worker i: into new worker
            // i + 1, or into the old leftmost for the last link.
            let waiter = if i + 1 < left_delta {
                &left_ws[i + 1]
            } else {
                &self.workers[0].waitset
            };
            let (tx, rx) = inner_link(&self.options, waiter);
            lltr.push((tx, Some(rx)));
            // lrtl[i] feeds new worker i's right input.
            let (tx, rx) = inner_link(&self.options, &left_ws[i]);
            lrtl.push((tx, Some(rx)));
        }
        let mut new_left_entry = None;
        let mut left_workers: Vec<WorkerHandle<R, S>> = Vec::new();
        if left_delta > 0 {
            let (tx, rx) = entry_link(&self.options, &left_ws[0]);
            new_left_entry = Some(tx);
            let mut new_left_rx = Some(rx);
            for i in 0..left_delta {
                let left_rx = if i == 0 {
                    new_left_rx.take().expect("new entry")
                } else {
                    lltr[i - 1].1.take().expect("new left input")
                };
                let right_rx = lrtl[i].1.take().expect("new right input");
                let to_left = if i == 0 {
                    None
                } else {
                    Some(lrtl[i - 1].0.clone())
                };
                let to_right = Some(lltr[i].0.clone());
                let handle = self.spawn_worker(
                    i,
                    target,
                    left_rx,
                    right_rx,
                    to_left,
                    to_right,
                    left_ws[i].clone(),
                );
                left_workers.push(handle);
            }
        }

        // The old end nodes become inner nodes: they gain a neighbour on
        // the new links.  Each replacement receiver must be registered
        // with the owning worker's wait set *before* the worker receives
        // it — a send into an unregistered channel would not wake the
        // parked worker, leaving every frame crossing the old/new
        // boundary to the 10 ms safety-net timeout.
        let mut boundary_right_rx = if right_delta > 0 {
            let rx = rtl[0].1.take().expect("old rightmost right input");
            rx.set_waiter(&self.workers[current - 1].waitset);
            Some(rx)
        } else {
            None
        };
        let mut boundary_left_rx = if left_delta > 0 {
            let rx = lltr[left_delta - 1]
                .1
                .take()
                .expect("old leftmost left input");
            rx.set_waiter(&self.workers[0].waitset);
            Some(rx)
        } else {
            None
        };
        for k in 0..current {
            let (right_rx, to_right) = if k + 1 == current && right_delta > 0 {
                (
                    Some(boundary_right_rx.take().expect("handed over once")),
                    Some(Some(ltr[0].0.clone())),
                )
            } else {
                (None, None)
            };
            let (left_rx, to_left) = if k == 0 && left_delta > 0 {
                (
                    Some(boundary_left_rx.take().expect("handed over once")),
                    Some(Some(lrtl[left_delta - 1].0.clone())),
                )
            } else {
                (None, None)
            };
            let _ = self.workers[k].commands().send(WorkerCommand::Rewire {
                id: left_delta + k,
                nodes: target,
                left_rx,
                right_rx,
                to_left,
                to_right,
                done: done_tx.clone(),
            });
        }
        self.confirm(&done_rx, current, "grow confirmations");
        // Splice the new left workers in at the front so `workers[k]` is
        // the worker running node id `k` again.
        if !left_workers.is_empty() {
            self.workers.splice(0..0, left_workers);
        }
        if let Some(tx) = new_right_entry {
            self.entry.right.set_sender(tx);
        }
        if let Some(tx) = new_left_entry {
            self.entry.left.set_sender(tx);
        }
    }

    /// Takes the per-node stored-window census `(|WR_k|, |WS_k|)` of the
    /// live chain.  Only meaningful while fenced (the planner's input must
    /// not race frame processing).
    fn census(&self) -> Vec<(usize, usize)> {
        let (done_tx, done_rx) = unbounded();
        for handle in &self.workers {
            let _ = handle.commands().send(WorkerCommand::Census {
                done: done_tx.clone(),
            });
        }
        let mut census = vec![(0, 0); self.workers.len()];
        for _ in 0..self.workers.len() {
            match done_rx.recv_timeout(PROTOCOL_STEP_TIMEOUT) {
                Ok(CensusReport { node, wr, ws }) => census[node] = (wr, ws),
                Err(_) => panic!("fence protocol stalled waiting for census replies"),
            }
        }
        census
    }

    /// Executes one redistribution hop: the shedding worker exports the
    /// plan's slice and hands it over the existing neighbour channel; the
    /// absorbing worker installs it (matching where the node type requires
    /// it) and acks.  The control plane waits for both confirmations, so
    /// transfers execute strictly in plan order — which is what makes the
    /// cascading multi-hop flows feasible and the runtime's placement
    /// identical to the simulator's.
    fn execute_transfer(&mut self, transfer: EdgeTransfer) -> usize {
        let (done_tx, done_rx) = unbounded();
        let direction = transfer.direction();
        let _ = self.workers[transfer.from]
            .commands()
            .send(WorkerCommand::Shed {
                direction,
                r: transfer.r,
                s: transfer.s,
                done: done_tx.clone(),
            });
        let _ = self.workers[transfer.to]
            .commands()
            .send(WorkerCommand::Absorb {
                from: direction.opposite(),
                stall: self.migration_stall,
                done: done_tx,
            });
        self.confirm(&done_rx, 2, "redistribution transfer confirmations")
    }

    /// The chain-wide redistribution pass every resize ends with: census
    /// the (still fenced) chain, compute the balanced
    /// [`RedistributionPlan`] under the node type's constraint, route the
    /// plan's segments hop by hop along the existing channels, and return
    /// the moved-tuple count plus the post-redistribution census.
    fn rebalance(&mut self) -> (usize, Vec<(usize, usize)>) {
        let census = self.census();
        let plan = RedistributionPlan::balanced(&census, self.constraint);
        if plan.is_noop() {
            return (0, census);
        }
        let mut moved = 0;
        for transfer in plan.transfers() {
            moved += self.execute_transfer(transfer);
        }
        let after = self.census();
        (moved, after)
    }

    // -- mesh hooks (crate-private) --------------------------------------
    //
    // The shard mesh (`crate::mesh`) drives N of these pipelines as the
    // chains of a key-partitioned mesh: one external router feeds events
    // to the owning chain, and a shard split/merge moves window state
    // *across* chains.  These hooks expose exactly the pieces the mesh
    // layer needs — online injection, the fence, and the cross-shard
    // export/install protocol — without widening the public API.

    /// Injects one routed driver event.  The mesh router decides online
    /// which chain sees an event, so no per-chain schedule totals exist;
    /// partial frames are flushed by `batch_size`, `flush_interval` and
    /// the fences instead of the end-of-schedule count.
    pub(crate) fn inject_routed(&mut self, event: &llhj_core::driver::DriverEvent<R, S>) {
        self.inject(event, usize::MAX, usize::MAX);
    }

    /// Fences the chain for a mesh-wide reshard (public protocol step).
    pub(crate) fn fence_for_reshard(&mut self) {
        self.fence();
    }

    /// Exports every node's full window, leaving the chain empty.  Only
    /// valid while fenced; segment `k` is node `k`'s window.
    pub(crate) fn export_all_segments(&mut self) -> Vec<llhj_core::message::WindowSegment<R, S>> {
        let mut segments = Vec::with_capacity(self.workers.len());
        for handle in &self.workers {
            let (done_tx, done_rx) = unbounded();
            let _ = handle
                .commands()
                .send(WorkerCommand::ExportAll { done: done_tx });
            match done_rx.recv_timeout(PROTOCOL_STEP_TIMEOUT) {
                Ok(segment) => segments.push(segment),
                Err(_) => panic!("fence protocol stalled waiting for a full export"),
            }
        }
        segments
    }

    /// Installs a segment silently into node `k`.  Only valid while
    /// fenced, and only for cross-shard movement (the rows re-enter at the
    /// pipeline position they held in the source chain, so no
    /// migration-hop matching is due).
    pub(crate) fn install_segment(
        &mut self,
        k: usize,
        segment: llhj_core::message::WindowSegment<R, S>,
    ) -> usize {
        let (done_tx, done_rx) = unbounded();
        let _ = self.workers[k].commands().send(WorkerCommand::Install {
            segment,
            done: done_tx,
        });
        self.confirm(&done_rx, 1, "a silent install confirmation")
    }

    /// Runs the chain-wide redistribution pass (census → plan → hops).
    /// Only valid while fenced; the mesh calls it after a reshard changed
    /// the chain's resident state.
    pub(crate) fn rebalance_fenced(&mut self) -> usize {
        self.rebalance().0
    }
}

/// Driver-side checkpoint cadence for
/// [`ElasticPipeline::run_schedule_checkpointed`].
#[derive(Clone)]
pub struct CheckpointConfig {
    /// Where checkpoint blobs are persisted.
    pub store: Arc<dyn CheckpointStore>,
    /// Take a checkpoint after every this many consumed schedule events.
    pub every_events: usize,
    /// Every `full_interval`-th checkpoint is a self-contained full blob;
    /// the ones between are deltas (see
    /// [`llhj_core::checkpoint::ChainCheckpointer`]).
    pub full_interval: u64,
    /// The store slot this chain checkpoints into (shard index of a mesh
    /// deployment; 0 for a standalone chain).
    pub shard: usize,
    /// Bound of the driver-side replay log.  Must comfortably exceed
    /// `every_events`, or a recovery can find its suffix already evicted
    /// ([`CheckpointError::LogTruncated`]).
    pub replay_capacity: usize,
}

impl CheckpointConfig {
    /// A standalone-chain config checkpointing every `every_events` events
    /// into `store`, with a full blob every 4th checkpoint and a generous
    /// replay-log bound.
    pub fn new(store: Arc<dyn CheckpointStore>, every_events: usize) -> Self {
        CheckpointConfig {
            store,
            every_events: every_events.max(1),
            full_interval: 4,
            shard: 0,
            replay_capacity: 1 << 16,
        }
    }
}

impl<R, S, P, H> ElasticPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + CheckpointPayload + 'static,
    S: Clone + Send + Sync + CheckpointPayload + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    /// Captures the chain's durable state inside a fence.
    ///
    /// The fence drains every in-flight frame, so the chain is quiescent
    /// with *settled* state (no open expedition, every `IWS` empty) —
    /// exactly the precondition of `export_all_segments`.  The export
    /// empties the chain; silently reinstalling each segment at the same
    /// position restores it byte-for-byte (the cross-shard install path of
    /// the mesh protocol), so a checkpoint is observationally a fence.
    /// The punctuation high-water marks are read inside the same fence —
    /// with no frame in flight they are exact, not racing advances.
    pub(crate) fn capture_checkpoint(
        &mut self,
        epoch: u64,
        shards: u32,
        events_consumed: u64,
    ) -> ChainCheckpoint<R, S> {
        self.fence();
        let segments = self.export_all_segments();
        for (k, segment) in segments.iter().enumerate() {
            self.install_segment(k, segment.clone());
        }
        ChainCheckpoint {
            epoch,
            events_consumed,
            shards,
            hwm_r: self.hwm.r(),
            hwm_s: self.hwm.s(),
            segments,
        }
    }

    /// Restores a checkpoint into the (idle, freshly built) chain: installs
    /// segment `k` into node `k` and re-advances the high-water marks.
    pub(crate) fn restore_checkpoint(&mut self, ckpt: ChainCheckpoint<R, S>) {
        assert_eq!(
            ckpt.width(),
            self.nodes(),
            "a checkpoint restores only into a chain of its own width"
        );
        self.fence();
        for (k, segment) in ckpt.segments.into_iter().enumerate() {
            self.install_segment(k, segment);
        }
        self.hwm.observe_r(ckpt.hwm_r);
        self.hwm.observe_s(ckpt.hwm_s);
    }

    /// Replays recovered driver events (paced exactly like a schedule
    /// replay) until exhausted or cancelled.
    pub(crate) fn replay_events(&mut self, events: &[llhj_core::driver::DriverEvent<R, S>]) {
        let cancel = self.options.cancel.clone().unwrap_or_default();
        for event in events {
            if cancel.is_cancelled() || self.pace_until(event.at, &cancel, None) {
                self.cancelled = true;
                break;
            }
            self.inject_routed(event);
        }
        self.flush_both();
    }

    /// [`ElasticPipeline::run_schedule`] with durability: every consumed
    /// event is recorded into a bounded [`ReplayLog`] before injection,
    /// and every `every_events` events the driver takes a fenced
    /// checkpoint, persists it and trims the log.  Returns the cancel flag
    /// plus the replay log — together with the store, everything a
    /// [`recover_elastic_pipeline`] call needs after a crash.
    pub fn run_schedule_checkpointed(
        &mut self,
        schedule: &DriverSchedule<R, S>,
        plan: &ScalePlan,
        cfg: &CheckpointConfig,
    ) -> (bool, ReplayLog<R, S>) {
        let mut checkpointer: ChainCheckpointer<R, S> =
            ChainCheckpointer::new(cfg.shard, cfg.full_interval);
        let mut log: ReplayLog<R, S> = ReplayLog::new(cfg.replay_capacity);
        let cancel = self.options.cancel.clone().unwrap_or_default();
        let mut steps = plan.steps().iter().peekable();
        for (idx, event) in schedule.events().iter().enumerate() {
            while let Some(step) = steps.next_if(|s| s.after_events <= idx) {
                self.scale_to(step.target_nodes);
            }
            if cancel.is_cancelled() || self.pace_until(event.at, &cancel, None) {
                self.cancelled = true;
                break;
            }
            log.record(event.clone());
            self.inject(event, schedule.r_count(), schedule.s_count());
            let consumed = idx + 1;
            if consumed.is_multiple_of(cfg.every_events) {
                let ckpt = self.capture_checkpoint(0, 1, consumed as u64);
                // A failed store write is not fatal to the run — the log
                // simply is not trimmed, so recoverability degrades to the
                // previous durable checkpoint instead of silently lying.
                if checkpointer.append(cfg.store.as_ref(), ckpt).is_ok() {
                    log.trim_to(consumed);
                }
            }
        }
        if !self.cancelled {
            let remaining: Vec<ScaleStep> = steps.copied().collect();
            for step in remaining {
                self.scale_to(step.target_nodes);
            }
        }
        self.flush_both();
        (self.cancelled, log)
    }
}

/// Rebuilds a crashed chain from its newest decodable checkpoint plus the
/// replay log's suffix, and runs it to completion.
///
/// The recovery invariants, in order:
///
/// 1. the checkpoint was taken inside a fence, so every result involving
///    only pre-checkpoint events was already emitted by the crashed run;
/// 2. replaying the logged suffix through an exactly restored chain
///    regenerates precisely the results that involve at least one suffix
///    event (replay is deterministic: the schedule totally orders
///    arrivals and expiries);
/// 3. therefore `crashed ∪ recovered`, deduplicated by `(r_seq, s_seq)`,
///    equals the oracle result set — which is what
///    [`llhj_core::checkpoint::splice_recovered_stream`] assembles and the
///    crash-recovery conformance suite asserts byte-for-byte.
///
/// If the store holds no checkpoint at all (the crash predates the first
/// cadence point), recovery degrades to a cold replay of the full log at
/// `cold_start_nodes` — correct as long as the bounded log has not
/// evicted anything, which [`CheckpointError::LogTruncated`] reports
/// otherwise.
#[allow(clippy::too_many_arguments)]
pub fn recover_elastic_pipeline<R, S, P, H>(
    store: &dyn CheckpointStore,
    shard: usize,
    cold_start_nodes: usize,
    factory: NodeFactory<R, S>,
    predicate: P,
    policy: H,
    options: &PipelineOptions,
    log: &ReplayLog<R, S>,
) -> Result<ElasticOutcome<R, S>, CheckpointError>
where
    R: Clone + Send + Sync + CheckpointPayload + 'static,
    S: Clone + Send + Sync + CheckpointPayload + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    let restored = match load_latest_checkpoint::<R, S>(store, shard) {
        Ok((_seq, ckpt)) => Some(ckpt),
        Err(CheckpointError::NotFound) => None,
        Err(e) => return Err(e),
    };
    let width = restored.as_ref().map_or(cold_start_nodes, |c| c.width());
    let replay_from = restored.as_ref().map_or(0, |c| c.events_consumed as usize);
    let suffix = log.suffix(replay_from)?;
    let mut pipeline = ElasticPipeline::new(width, factory, predicate, policy, options.clone());
    if let Some(ckpt) = restored {
        pipeline.restore_checkpoint(ckpt);
    }
    pipeline.replay_events(&suffix);
    Ok(pipeline.finish())
}

impl<R, S, P, H> ScalePipeline for ElasticPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    fn grow(&mut self, delta: usize) {
        self.scale_to(self.nodes() + delta);
    }

    fn shrink(&mut self, delta: usize) {
        assert!(delta < self.nodes(), "cannot retire the whole pipeline");
        self.scale_to(self.nodes() - delta);
    }

    fn scale_to(&mut self, target: usize) {
        assert!(target > 0, "pipeline needs at least one node");
        let current = self.nodes();
        if target == current {
            return;
        }
        let wall_start = Instant::now();
        self.fence();
        let migrated = if target < current {
            self.shrink_to(target)
        } else {
            self.grow_to(target);
            0
        };
        // The chain is still fenced (injection paused, no data frame
        // anywhere): spread the window state evenly across the new width
        // before resuming, so the resized chain is warm immediately
        // instead of after a window turnover.
        let (rebalanced, residence_after) = self.rebalance();
        self.injector = Injector::new(self.predicate.clone(), self.policy.clone(), target);
        self.metrics.set_nodes(target);
        self.register_occupancy_probe();
        self.resize_log.push(ResizeEvent {
            at: self.clock.now(),
            from_nodes: current,
            to_nodes: target,
            migrated_tuples: migrated,
            rebalanced_tuples: rebalanced,
            residence_after,
            fence_wall_micros: wall_start.elapsed().as_micros() as u64,
        });
    }
}

impl<R, S, P, H> ElasticPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    /// Drains the pipeline, stops every thread and returns the outcome.
    pub fn finish(mut self) -> ElasticOutcome<R, S> {
        self.fence();
        self.stop.store(true, Ordering::SeqCst);
        for worker in &self.workers {
            worker.waitset.notify();
        }
        self.stop_signal.notify();

        let mut counters = Vec::with_capacity(self.workers.len());
        let mut idle_wakeups = self.retired_idle_wakeups;
        let nodes = self.workers.len();
        for worker in self.workers.drain(..) {
            let exit = worker.handle.join().expect("worker thread panicked");
            counters.push(exit.counters);
            idle_wakeups += exit.idle_wakeups;
        }
        drop(self.result_tx.take());
        let collected = self
            .collector
            .take()
            .expect("finish called once")
            .join()
            .expect("collector thread panicked");

        ElasticOutcome {
            results: collected.results,
            output: collected.output,
            counters,
            retired_counters: std::mem::take(&mut self.retired_counters),
            latency: collected.latency,
            latency_series: collected.series.finish(),
            elapsed: self.started.elapsed(),
            punctuation_count: collected.punctuation_count,
            arrivals_per_stream: (self.seen_r, self.seen_s),
            frames_injected: self.entry.frames_injected,
            idle_wakeups,
            resize_log: std::mem::take(&mut self.resize_log),
            nodes,
            cancelled: self.cancelled,
        }
    }
}

impl<R, S, P, H> Drop for ElasticPipeline<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    /// A pipeline dropped without [`ElasticPipeline::finish`] (e.g. by a
    /// panic) signals its threads to exit rather than joining them —
    /// joining from a panic path could hang on a thread that is itself
    /// stuck.  After `finish` this is a no-op.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for worker in &self.workers {
            worker.waitset.notify();
        }
        self.stop_signal.notify();
        drop(self.result_tx.take());
    }
}

/// Replays `schedule` through an elastic pipeline of `initial_nodes`
/// nodes, resizing at the plan's event indexes, and returns the drained
/// outcome.  The convenience wrapper around [`ElasticPipeline`] used by
/// the conformance suite and the `bench_elastic` binary.
pub fn run_elastic_pipeline<R, S, P, H>(
    initial_nodes: usize,
    factory: NodeFactory<R, S>,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    plan: &ScalePlan,
    options: &PipelineOptions,
) -> ElasticOutcome<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    let mut pipeline =
        ElasticPipeline::new(initial_nodes, factory, predicate, policy, options.clone());
    pipeline.run_schedule(schedule, plan);
    pipeline.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhj_baselines::run_kang;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::FnPredicate;
    use llhj_core::time::TimeDelta;
    use llhj_core::window::WindowSpec;

    fn eq_pred() -> FnPredicate<fn(&u32, &u32) -> bool> {
        fn eq(r: &u32, s: &u32) -> bool {
            r == s
        }
        FnPredicate(eq as fn(&u32, &u32) -> bool)
    }

    fn schedule(tuples: u64, window_ms: u64) -> DriverSchedule<u32, u32> {
        let r: Vec<_> = (0..tuples)
            .map(|i| (Timestamp::from_millis(i), (i % 13) as u32))
            .collect();
        let s: Vec<_> = (0..tuples)
            .map(|i| (Timestamp::from_millis(i), (i % 17) as u32))
            .collect();
        DriverSchedule::build(
            r,
            s,
            WindowSpec::Time(TimeDelta::from_millis(window_ms)),
            WindowSpec::Time(TimeDelta::from_millis(window_ms)),
        )
    }

    fn paced_opts(batch_size: usize) -> PipelineOptions {
        PipelineOptions {
            batch_size,
            pacing: Pacing::RealTime { speedup: 1.0 },
            ..Default::default()
        }
    }

    #[test]
    fn elastic_without_resizes_matches_the_oracle() {
        let sched = schedule(300, 150);
        let oracle = run_kang(eq_pred(), &sched);
        let outcome = run_elastic_pipeline(
            2,
            llhj_factory(eq_pred()),
            eq_pred(),
            RoundRobin,
            &sched,
            &ScalePlan::none(),
            &paced_opts(8),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.nodes, 2);
        assert!(outcome.resize_log.is_empty());
        assert!(!outcome.cancelled);
        assert_eq!(outcome.counters.len(), 2);
    }

    #[test]
    fn grow_mid_run_preserves_the_exact_result_set() {
        let sched = schedule(300, 150);
        let oracle = run_kang(eq_pred(), &sched);
        let plan = ScalePlan::new(vec![ScaleStep {
            after_events: sched.events().len() / 2,
            target_nodes: 4,
        }]);
        let outcome = run_elastic_pipeline(
            2,
            llhj_factory(eq_pred()),
            eq_pred(),
            RoundRobin,
            &sched,
            &plan,
            &paced_opts(8),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.nodes, 4);
        assert_eq!(outcome.resize_log.len(), 1);
        assert_eq!(outcome.resize_log[0].from_nodes, 2);
        assert_eq!(outcome.resize_log[0].to_nodes, 4);
        assert_eq!(outcome.counters.len(), 4);
        // The grown nodes actually participated.
        assert!(outcome.counters[3].arrivals > 0);
    }

    #[test]
    fn shrink_mid_run_migrates_state_and_preserves_the_result_set() {
        let sched = schedule(300, 150);
        let oracle = run_kang(eq_pred(), &sched);
        let plan = ScalePlan::new(vec![ScaleStep {
            after_events: sched.events().len() / 2,
            target_nodes: 2,
        }]);
        let outcome = run_elastic_pipeline(
            4,
            llhj_factory(eq_pred()),
            eq_pred(),
            RoundRobin,
            &sched,
            &plan,
            &paced_opts(8),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.nodes, 2);
        assert_eq!(outcome.retired_counters.len(), 2);
        assert_eq!(outcome.resize_log.len(), 1);
        assert!(
            outcome.resize_log[0].migrated_tuples > 0,
            "a mid-run shrink must migrate resident window tuples"
        );
    }

    #[test]
    fn repeated_resizes_keep_the_pipeline_exact() {
        let sched = schedule(400, 150);
        let oracle = run_kang(eq_pred(), &sched);
        let third = sched.events().len() / 3;
        let plan = ScalePlan::new(vec![
            ScaleStep {
                after_events: third,
                target_nodes: 5,
            },
            ScaleStep {
                after_events: 2 * third,
                target_nodes: 2,
            },
        ]);
        let outcome = run_elastic_pipeline(
            3,
            llhj_factory(eq_pred()),
            eq_pred(),
            RoundRobin,
            &sched,
            &plan,
            &paced_opts(4),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.nodes, 2);
        assert_eq!(outcome.resize_log.len(), 2);
        assert_eq!(outcome.retired_counters.len(), 3);
    }

    /// The elastic counterpart of the fixed runtime's flush-timer
    /// guarantee: a stream that goes silent mid-run must not hold a
    /// partial entry frame hostage until the next schedule event — the
    /// sliced pacing wait flushes it within `flush_interval` of wall time.
    #[test]
    fn silent_gap_cannot_hold_a_partial_entry_frame() {
        let eq = eq_pred();
        let mk = |v: u32| {
            vec![
                (Timestamp::from_millis(1), v),
                (Timestamp::from_millis(700), v + 1_000),
                (Timestamp::from_millis(710), v + 2_000),
            ]
        };
        let sched = DriverSchedule::build(
            mk(7),
            mk(7),
            WindowSpec::Time(TimeDelta::from_secs(2)),
            WindowSpec::Time(TimeDelta::from_secs(2)),
        );
        let opts = PipelineOptions {
            // Far larger than the pre-gap tuple count: without the sliced
            // wait the first frame would sit out the whole 700 ms gap.
            batch_size: 64,
            flush_interval: Some(TimeDelta::from_millis(10)),
            pacing: Pacing::RealTime { speedup: 1.0 },
            ..Default::default()
        };
        let outcome = run_elastic_pipeline(
            2,
            llhj_factory(eq.clone()),
            eq,
            RoundRobin,
            &sched,
            &ScalePlan::none(),
            &opts,
        );
        let first = outcome
            .results
            .iter()
            .find(|t| t.result.key() == (SeqNo(0), SeqNo(0)))
            .expect("the pre-gap pair must be found");
        let latency = first.latency();
        assert!(
            latency < TimeDelta::from_millis(200),
            "pre-gap result waited {latency} — the sliced pacing wait \
             should have flushed it near the 10 ms interval"
        );
    }

    #[test]
    fn scale_to_same_width_is_a_noop() {
        let mut pipeline = ElasticPipeline::new(
            2,
            llhj_factory(eq_pred()),
            eq_pred(),
            RoundRobin,
            PipelineOptions::default(),
        );
        pipeline.scale_to(2);
        assert!(pipeline.resize_log().is_empty());
        let outcome = pipeline.finish();
        assert_eq!(outcome.nodes, 2);
        assert!(outcome.results.is_empty());
    }

    /// The metrics bus follows the pipeline through resizes: the arrival
    /// counter counts injected tuples, the published width tracks
    /// `scale_to`, and the collector feeds the latency EWMA.
    #[test]
    fn metrics_bus_tracks_arrivals_width_and_latency() {
        let sched = schedule(200, 150);
        let mut pipeline = ElasticPipeline::new(
            2,
            llhj_factory(eq_pred()),
            eq_pred(),
            RoundRobin,
            paced_opts(8),
        );
        let bus = pipeline.metrics_bus();
        assert_eq!(bus.nodes(), 2);
        pipeline.run_schedule(
            &sched,
            &ScalePlan::new(vec![ScaleStep {
                after_events: sched.events().len() / 2,
                target_nodes: 3,
            }]),
        );
        assert_eq!(bus.nodes(), 3);
        assert_eq!(bus.arrivals(), 400, "200 R + 200 S tuples injected");
        let outcome = pipeline.finish();
        assert!(outcome.results.len() > 10);
        assert_eq!(bus.results(), outcome.results.len() as u64);
        assert!(bus.latency_ewma() > TimeDelta::ZERO);
        let busy = bus.busy_ns(3);
        assert!(
            busy.iter().all(|&ns| ns > 0),
            "all nodes did work: {busy:?}"
        );
    }

    /// Every resize ends with the chain-wide redistribution: immediately
    /// after a mid-run grow the stored windows are spread evenly across
    /// the new width (within the integer rounding of the balanced
    /// targets), not concentrated on the old nodes.
    #[test]
    fn grow_rebalances_residence_immediately() {
        let sched = schedule(300, 150);
        let plan = ScalePlan::new(vec![ScaleStep {
            after_events: sched.events().len() / 2,
            target_nodes: 4,
        }]);
        let outcome = run_elastic_pipeline(
            2,
            llhj_factory(eq_pred()),
            eq_pred(),
            RoundRobin,
            &sched,
            &plan,
            &paced_opts(8),
        );
        let resize = &outcome.resize_log[0];
        assert!(
            resize.rebalanced_tuples > 0,
            "a loaded grow must move window state into the new nodes"
        );
        assert_eq!(resize.residence_after.len(), 4);
        let totals: Vec<usize> = resize
            .residence_after
            .iter()
            .map(|&(wr, ws)| wr + ws)
            .collect();
        let (min, max) = (*totals.iter().min().unwrap(), *totals.iter().max().unwrap());
        assert!(
            max - min <= 2,
            "post-grow residence must be balanced to the rounding unit, got {totals:?}"
        );
        assert!(min > 0, "every node holds state right after the rebalance");
    }

    /// Checkpointing is observationally transparent: a checkpointed run
    /// (fences, exports, reinstalls, store writes every N events) produces
    /// exactly the oracle result set, persists decodable blobs, and trims
    /// the replay log up to the last durable checkpoint.
    #[test]
    fn checkpointed_run_is_transparent_and_persists_blobs() {
        use llhj_core::checkpoint::{load_latest_checkpoint, MemoryStore};
        let sched = schedule(300, 150);
        let oracle = run_kang(eq_pred(), &sched);
        let store = Arc::new(MemoryStore::new());
        let mut pipeline = ElasticPipeline::new(
            2,
            llhj_factory(eq_pred()),
            eq_pred(),
            RoundRobin,
            paced_opts(8),
        );
        let cfg = CheckpointConfig::new(Arc::clone(&store) as _, 100);
        let plan = ScalePlan::new(vec![ScaleStep {
            after_events: sched.events().len() / 2,
            target_nodes: 3,
        }]);
        let (cancelled, log) = pipeline.run_schedule_checkpointed(&sched, &plan, &cfg);
        assert!(!cancelled);
        let outcome = pipeline.finish();
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.resize_log.len(), 1);
        let events = sched.events().len();
        let checkpoints = store.seqs(0).unwrap();
        assert_eq!(checkpoints.len(), events / 100);
        assert_eq!(
            log.oldest(),
            (events / 100) * 100,
            "log trimmed to the last checkpoint"
        );
        let (_seq, latest) = load_latest_checkpoint::<u32, u32>(store.as_ref(), 0).unwrap();
        assert_eq!(latest.width(), 3, "the post-resize width is captured");
        assert!(latest.hwm_r > Timestamp::ZERO && latest.hwm_s > Timestamp::ZERO);
    }

    /// The original handshake join deploys on the elastic pipeline since
    /// the capacity renegotiation refactor (it was the one non-elastic
    /// node type for two PRs).
    #[test]
    fn hsj_pipeline_is_elastic_and_exact_at_batch_one() {
        use llhj_core::time::TimeDelta;
        // Tail traffic keeps the streams flowing so every real pair
        // physically meets before the run ends (HSJ matches pairs only
        // when they cross).
        let mk = |sentinel: u32| {
            let real = (0..200u64).map(move |i| (Timestamp::from_millis(i), (i % 13) as u32));
            let tail =
                (0..110u64).map(move |i| (Timestamp::from_millis(200 + i), sentinel + i as u32));
            real.chain(tail).collect::<Vec<_>>()
        };
        let w = WindowSpec::Time(TimeDelta::from_millis(100));
        let sched = DriverSchedule::build(mk(1_000_000), mk(2_000_000), w, w);
        let oracle = run_kang(eq_pred(), &sched);
        let plan = ScalePlan::new(vec![ScaleStep {
            after_events: sched.events().len() / 2,
            target_nodes: 4,
        }]);
        let outcome = run_elastic_pipeline(
            2,
            super::hsj_age_factory(
                TimeDelta::from_millis(100),
                TimeDelta::from_millis(100),
                eq_pred(),
            ),
            eq_pred(),
            RoundRobin,
            &sched,
            &plan,
            &paced_opts(1),
        );
        assert_eq!(outcome.result_keys(), oracle.result_keys());
        assert_eq!(outcome.nodes, 4);
        assert_eq!(outcome.resize_log.len(), 1);
    }
}
