/root/repo/target/release/deps/table2-e4d268f0d54f6a24.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e4d268f0d54f6a24: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
