//! Maximum-sustainable-throughput search (Figure 17 / Table 2 methodology).
//!
//! The paper determines, for each core count, "the maximum throughput that
//! the system could sustain without dropping any data".  The simulator
//! reproduces this by binary-searching the per-stream input rate: a rate is
//! sustainable if no pipeline node's utilization exceeds the configured
//! threshold over the simulated span.

use crate::config::SimConfig;
use crate::engine::run_simulation;
use crate::report::SimReport;
use llhj_core::driver::DriverSchedule;
use llhj_core::homing::HomePolicy;
use llhj_core::predicate::JoinPredicate;

/// Parameters of the binary search.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputSearch {
    /// A run is sustainable if every node's utilization stays at or below
    /// this value.
    pub utilization_threshold: f64,
    /// Lower bound of the search range (tuples/second per stream).
    pub min_rate: f64,
    /// Upper bound of the search range.
    pub max_rate: f64,
    /// Number of bisection steps (each step runs one simulation).
    pub steps: usize,
}

impl Default for ThroughputSearch {
    fn default() -> Self {
        ThroughputSearch {
            utilization_threshold: 0.95,
            min_rate: 50.0,
            max_rate: 50_000.0,
            steps: 12,
        }
    }
}

/// Result of a throughput search.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Highest sustainable per-stream rate found (tuples/second).
    pub rate_per_stream: f64,
    /// Utilization observed at that rate.
    pub utilization: f64,
}

/// Binary-searches the maximum sustainable per-stream rate.
///
/// `make_schedule` builds a driver schedule for a candidate rate (typically
/// by generating a workload of that rate over a fixed duration), and
/// `configure` lets the caller adjust the configuration to the candidate
/// rate (the original handshake join sizes its segments from the expected
/// rate).
pub fn max_sustainable_rate<R, S, P, H, F, C>(
    base_config: &SimConfig,
    predicate: P,
    policy: H,
    mut make_schedule: F,
    mut configure: C,
    search: &ThroughputSearch,
) -> ThroughputResult
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
    F: FnMut(f64) -> DriverSchedule<R, S>,
    C: FnMut(&mut SimConfig, f64),
{
    assert!(search.min_rate > 0.0 && search.max_rate > search.min_rate);
    let mut lo = search.min_rate;
    let mut hi = search.max_rate;
    let mut best = (search.min_rate, 0.0f64);

    let mut evaluate = |rate: f64| -> SimReport<R, S> {
        let mut config = base_config.clone();
        config.expected_rate_per_sec = rate;
        configure(&mut config, rate);
        let schedule = make_schedule(rate);
        run_simulation(&config, predicate.clone(), policy.clone(), &schedule)
    };

    for _ in 0..search.steps {
        let mid = (lo + hi) / 2.0;
        let report = evaluate(mid);
        if report.is_sustainable(search.utilization_threshold) {
            best = (mid, report.max_utilization());
            lo = mid;
        } else {
            hi = mid;
        }
    }

    ThroughputResult {
        rate_per_stream: best.0,
        utilization: best.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::AlwaysFalse;
    use llhj_core::time::TimeDelta;
    use llhj_core::tuple::SeqNo;
    use llhj_core::window::WindowSpec;
    use llhj_core::Timestamp;

    fn schedule_at(rate: f64, duration_s: f64, window: WindowSpec) -> DriverSchedule<u32, u32> {
        let n = (rate * duration_s) as u64;
        let gap = (1e6 / rate) as u64;
        let r: Vec<_> = (0..n)
            .map(|i| (Timestamp::from_micros(i * gap), (i % 97) as u32))
            .collect();
        let s: Vec<_> = (0..n)
            .map(|i| (Timestamp::from_micros(i * gap), (i % 89) as u32))
            .collect();
        DriverSchedule::build(r, s, window, window)
    }

    #[test]
    fn more_nodes_sustain_a_higher_rate() {
        // Use a count-based window so the scan cost per probe does not
        // change with the rate being probed, and make each comparison
        // expensive enough that the scan dominates the per-message
        // overhead -- the regime in which adding cores pays off.
        let window = WindowSpec::Count(200);
        let search = ThroughputSearch {
            utilization_threshold: 0.9,
            min_rate: 100.0,
            max_rate: 20_000.0,
            steps: 8,
        };
        let mut rates = Vec::new();
        for nodes in [1usize, 4] {
            let mut cfg = SimConfig::new(nodes, Algorithm::Llhj);
            cfg.batch_size = 16;
            cfg.cost.per_comparison_ns = 400.0;
            cfg.window_r = window;
            cfg.window_s = window;
            cfg.latency_bucket = 1_000_000;
            cfg.collect_interval = TimeDelta::from_millis(10);
            let result = max_sustainable_rate(
                &cfg,
                AlwaysFalse,
                RoundRobin,
                |rate| schedule_at(rate, 0.25, window),
                |_, _| {},
                &search,
            );
            rates.push(result.rate_per_stream);
            assert!(result.utilization <= 0.9 + 1e-9);
        }
        assert!(
            rates[1] > rates[0] * 1.5,
            "4 nodes should sustain well above 1 node: {rates:?}"
        );
    }

    #[test]
    fn search_returns_a_rate_within_bounds() {
        let window = WindowSpec::Count(50);
        let cfg = SimConfig::new(2, Algorithm::Hsj);
        let search = ThroughputSearch {
            steps: 5,
            ..Default::default()
        };
        let result = max_sustainable_rate(
            &cfg,
            AlwaysFalse,
            RoundRobin,
            |rate| schedule_at(rate, 0.2, window),
            |cfg, rate| cfg.expected_rate_per_sec = rate,
            &search,
        );
        assert!(result.rate_per_stream >= search.min_rate);
        assert!(result.rate_per_stream <= search.max_rate);
        // Silence the unused-import warning for SeqNo while keeping the
        // import available for future assertions.
        let _ = SeqNo(0);
    }
}
