/root/repo/target/debug/deps/bench_batching-3bbcf50321fa6393.d: crates/bench/src/bin/bench_batching.rs

/root/repo/target/debug/deps/libbench_batching-3bbcf50321fa6393.rmeta: crates/bench/src/bin/bench_batching.rs

crates/bench/src/bin/bench_batching.rs:
