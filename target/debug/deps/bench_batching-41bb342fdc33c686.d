/root/repo/target/debug/deps/bench_batching-41bb342fdc33c686.d: crates/bench/src/bin/bench_batching.rs Cargo.toml

/root/repo/target/debug/deps/libbench_batching-41bb342fdc33c686.rmeta: crates/bench/src/bin/bench_batching.rs Cargo.toml

crates/bench/src/bin/bench_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
