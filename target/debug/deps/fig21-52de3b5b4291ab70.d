/root/repo/target/debug/deps/fig21-52de3b5b4291ab70.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/fig21-52de3b5b4291ab70: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
