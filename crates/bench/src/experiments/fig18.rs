//! Figure 18: average result latency as a function of the core count,
//! original handshake join vs. low-latency handshake join (log scale in the
//! paper), computed over a 15-minute window.
//!
//! The headline result of the paper: low-latency handshake join improves
//! average latency by roughly four orders of magnitude (hundreds of seconds
//! down to tens of milliseconds), and the HSJ latency barely depends on the
//! core count because it is governed by the window size alone.

use crate::{fmt_f, Scale, TextTable};
use llhj_sim::{Algorithm, AnalyticModel};

/// Paper-scale latency prediction for one core count.
#[derive(Debug, Clone, Copy)]
pub struct ModelRow {
    /// Number of cores.
    pub cores: usize,
    /// Handshake join average latency (seconds).
    pub hsj_secs: f64,
    /// Low-latency handshake join average latency (seconds).
    pub llhj_secs: f64,
}

/// Scaled, simulator-measured latency for one core count.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredRow {
    /// Number of cores.
    pub cores: usize,
    /// Handshake join average latency (milliseconds).
    pub hsj_ms: f64,
    /// Low-latency handshake join average latency (milliseconds).
    pub llhj_ms: f64,
}

/// The complete Figure 18 reproduction.
#[derive(Debug)]
pub struct Fig18Report {
    /// Paper-scale model rows (15-minute windows).
    pub model: Vec<ModelRow>,
    /// Scaled simulator rows.
    pub measured: Vec<MeasuredRow>,
    /// Rendered report.
    pub text: String,
}

/// Runs the Figure 18 reproduction.
pub fn run(scale: &Scale) -> Fig18Report {
    let model: Vec<ModelRow> = scale
        .model_cores
        .iter()
        .map(|&cores| {
            let m = AnalyticModel::paper_benchmark(cores);
            let sustained = m.max_rate(Algorithm::Llhj);
            ModelRow {
                cores,
                hsj_secs: m.hsj_average_latency().as_secs_f64(),
                llhj_secs: m.llhj_average_latency(sustained, 64).as_secs_f64(),
            }
        })
        .collect();

    let measured: Vec<MeasuredRow> = scale
        .sim_cores
        .iter()
        .map(|&cores| {
            let hsj = super::run_band(
                scale,
                cores,
                Algorithm::Hsj,
                64,
                false,
                scale.window_secs,
                scale.window_secs,
            );
            let llhj = super::run_band(
                scale,
                cores,
                Algorithm::Llhj,
                64,
                false,
                scale.window_secs,
                scale.window_secs,
            );
            MeasuredRow {
                cores,
                hsj_ms: hsj.latency.mean().as_millis_f64(),
                llhj_ms: llhj.latency.mean().as_millis_f64(),
            }
        })
        .collect();

    let mut model_table = TextTable::new(["cores", "HSJ avg (s, model)", "LLHJ avg (s, model)"]);
    for row in &model {
        model_table.row([
            row.cores.to_string(),
            fmt_f(row.hsj_secs, 1),
            fmt_f(row.llhj_secs, 4),
        ]);
    }
    let mut measured_table = TextTable::new(["cores", "HSJ avg (ms, sim)", "LLHJ avg (ms, sim)"]);
    for row in &measured {
        measured_table.row([
            row.cores.to_string(),
            fmt_f(row.hsj_ms, 1),
            fmt_f(row.llhj_ms, 2),
        ]);
    }
    let text = format!(
        "Figure 18: average latency vs. core count\n\n\
         Paper-scale model (15-minute window, batch 64):\n{}\n\
         Scaled event-driven simulation ({}-second windows, rate {} t/s):\n{}",
        model_table.render(),
        scale.window_secs,
        scale.rate_per_sec,
        measured_table.render()
    );
    Fig18Report {
        model,
        measured,
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_gap_is_orders_of_magnitude() {
        let report = run(&Scale::smoke());
        for row in &report.model {
            assert!(
                row.hsj_secs / row.llhj_secs > 1_000.0,
                "model gap at {} cores: {} vs {}",
                row.cores,
                row.hsj_secs,
                row.llhj_secs
            );
        }
        for row in &report.measured {
            // The scaled simulation uses small windows, so the measured gap
            // is compressed compared to the paper's 15-minute windows; the
            // full orders-of-magnitude gap is asserted on the model rows
            // above.
            assert!(
                row.hsj_ms > 3.0 * row.llhj_ms,
                "simulated gap at {} cores: {} vs {} ms",
                row.cores,
                row.hsj_ms,
                row.llhj_ms
            );
        }
        assert!(report.text.contains("Figure 18"));
    }

    #[test]
    fn hsj_latency_is_insensitive_to_core_count() {
        let report = run(&Scale::smoke());
        let first = report.model.first().unwrap();
        let last = report.model.last().unwrap();
        let ratio = first.hsj_secs / last.hsj_secs;
        assert!(
            (0.9..1.1).contains(&ratio),
            "HSJ latency should not depend on cores: {ratio}"
        );
    }
}
