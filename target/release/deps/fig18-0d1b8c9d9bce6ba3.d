/root/repo/target/release/deps/fig18-0d1b8c9d9bce6ba3.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-0d1b8c9d9bce6ba3: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
