/root/repo/target/debug/deps/fig21-6a02edf73d53a179.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/libfig21-6a02edf73d53a179.rmeta: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
