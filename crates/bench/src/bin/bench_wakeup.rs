//! Paced-run wakeup/latency measurement: the companion binary of the
//! `paced_latency` criterion bench.  It replays an equi-join workload in
//! real time (the operating mode whose tail latency the event-driven
//! scheduler exists for), and reports the number of idle worker wake-ups
//! together with the frame-latency distribution.  `BENCH_wakeup.json` at
//! the repo root snapshots this output before and after the switch from
//! 100 µs idle polling to condvar wake-ups.

use llhj_core::homing::RoundRobin;
use llhj_core::time::TimeDelta;
use llhj_core::window::WindowSpec;
use llhj_runtime::{llhj_indexed_nodes, run_pipeline, Pacing, PipelineOptions};
use llhj_workload::{equi_join_schedule, EquiJoinWorkload, EquiXaPredicate};

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let workload = EquiJoinWorkload {
        rate_per_sec: 1_000.0,
        duration: TimeDelta::from_secs(2),
        domain: 4_000,
        seed: 0xC0FFEE,
    };
    let window = WindowSpec::Count(250);
    let schedule = equi_join_schedule(&workload, window, window);
    let nodes = 4;

    println!("{{\n  \"experiment\": \"paced_wakeups\",");
    println!("  \"host\": {},", llhj_bench::host_meta_json());
    println!(
        "  \"rate_per_sec\": {}, \"stream_secs\": 2, \"nodes\": {nodes}, \"speedup\": 1.0,",
        workload.rate_per_sec
    );
    println!("  \"rows\": [");
    let batches = [1usize, 8, 64];
    for (i, &batch_size) in batches.iter().enumerate() {
        let opts = PipelineOptions {
            batch_size,
            pacing: Pacing::RealTime { speedup: 1.0 },
            flush_interval: Some(TimeDelta::from_millis(5)),
            ..Default::default()
        };
        let outcome = run_pipeline(
            llhj_indexed_nodes(nodes, EquiXaPredicate),
            EquiXaPredicate,
            RoundRobin,
            &schedule,
            &opts,
        );
        let mut lat: Vec<f64> = outcome
            .results
            .iter()
            .map(|t| t.latency().as_millis_f64())
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "    {{\"batch_size\": {}, \"idle_wakeups\": {}, \"frames_injected\": {}, \
             \"results\": {}, \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"max_ms\": {:.3}, \"elapsed_s\": {:.3}}}{}",
            batch_size,
            outcome.idle_wakeups,
            outcome.frames_injected,
            outcome.results.len(),
            outcome.latency.mean().as_millis_f64(),
            percentile_ms(&lat, 0.50),
            percentile_ms(&lat, 0.99),
            outcome.latency.max().as_millis_f64(),
            outcome.elapsed.as_secs_f64(),
            if i + 1 < batches.len() { "," } else { "" },
        );
    }
    println!("  ]\n}}");
}
