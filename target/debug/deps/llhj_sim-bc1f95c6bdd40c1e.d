/root/repo/target/debug/deps/llhj_sim-bc1f95c6bdd40c1e.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs Cargo.toml

/root/repo/target/debug/deps/libllhj_sim-bc1f95c6bdd40c1e.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/model.rs:
crates/sim/src/report.rs:
crates/sim/src/throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
