//! # llhj-bench — figure and table reproduction harness
//!
//! One module per experiment of the paper's evaluation (Section 7).  Every
//! module exposes a `run(&Scale)` function that returns the measured rows
//! and a human-readable report; the binaries in `src/bin/` are thin
//! wrappers that print the report, and the integration tests call the same
//! functions with a tiny [`Scale`] to keep the whole evaluation wired into
//! `cargo test`.
//!
//! The paper's full-scale operating point (15-minute windows, thousands of
//! tuples per second, 40 cores) is reported through the calibrated
//! [`llhj_sim::AnalyticModel`]; the event-driven simulator measures the
//! same experiment at a scaled-down operating point, and `EXPERIMENTS.md`
//! records both next to the paper's numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;

use std::fmt::Write as _;

/// Number of logical cores the host exposes.
pub fn host_cores() -> usize {
    llhj_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The host's CPU model string (from `/proc/cpuinfo`; `"unknown"` where
/// that is unavailable).
pub fn host_cpu_model() -> String {
    std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .filter(|m| !m.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Escapes a string for interpolation into a JSON string literal:
/// backslash, double quote, and every control character below `0x20`
/// (the characters RFC 8259 requires escaping).  Everything the
/// snapshot files embed from the host — notably the `/proc/cpuinfo`
/// model string — must pass through here.
pub fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The `"host"` object every `BENCH_*.json` snapshot embeds: core count,
/// CPU model, and the standing ROADMAP caveat that threaded-runtime
/// numbers snapshotted on the 1-core CI container underestimate real
/// multicore hardware (the simulator sections are host-independent).
/// Interpolated fields are escaped with [`json_escape`], so a hostile
/// model string cannot break the snapshot out of valid JSON.
pub fn host_meta_json() -> String {
    host_meta_json_pinned(false)
}

/// [`host_meta_json`] for snapshots whose runtime sections may have been
/// taken with core pinning: records `available_parallelism` explicitly
/// (the honest upper bound on real concurrency) and whether pinning was
/// actually active while measuring — `pinning_active: false` on a host
/// where `pin_cores` silently degraded to a no-op, so a snapshot can
/// never pass itself off as a pinned measurement.
pub fn host_meta_json_pinned(pinning_active: bool) -> String {
    let cores = host_cores();
    let model = json_escape(&host_cpu_model());
    let caveat = if cores == 1 {
        "measured on a 1-core container: threaded-runtime numbers cannot \
         show real parallelism and underestimate multicore hardware \
         (ROADMAP open item: re-snapshot on real multicore); simulator \
         sections are host-independent"
    } else {
        "simulator sections are host-independent; runtime sections depend \
         on this host"
    };
    format!(
        "{{\"cores\": {cores}, \"available_parallelism\": {cores}, \
         \"pinning_active\": {pinning_active}, \"cpu_model\": \"{model}\", \
         \"caveat\": \"{caveat}\"}}"
    )
}

/// Whether a *parallel* speedup floor may be asserted on this host.  A
/// 1-core container time-slices the two sides of every "parallel"
/// measurement, so any floor claiming real concurrency (ring vs mutex
/// transport, pinned vs unpinned) is meaningless there — such bins
/// annotate the measurement instead of asserting it.  Single-threaded
/// algorithmic floors (e.g. columnar vs scalar scan) are unaffected.
pub fn can_assert_parallel_floor() -> bool {
    host_cores() > 1
}

/// Renders a speedup-floor object for a `BENCH_*.json` snapshot and
/// returns whether the caller should enforce it.  On a multi-core host
/// the floor is `"enforced": true` and the caller asserts; on a 1-core
/// host it is annotated with the reason and never asserted, so the
/// snapshot records the measurement without claiming a parallelism
/// result the host cannot demonstrate.
pub fn parallel_floor_json(name: &str, measured: f64, required: f64) -> (String, bool) {
    let enforce = can_assert_parallel_floor();
    let json = if enforce {
        format!(
            "{{\"{}\": {measured:.2}, \"required\": {required:.2}, \"enforced\": true}}",
            json_escape(name)
        )
    } else {
        format!(
            "{{\"{}\": {measured:.2}, \"required\": {required:.2}, \"enforced\": false, \
             \"note\": \"cores == 1: parallel floor annotated, not asserted\"}}",
            json_escape(name)
        )
    };
    (json, enforce)
}

/// Scale factors shared by all experiments.
///
/// `Scale::default()` is the configuration used to regenerate
/// `EXPERIMENTS.md` on a laptop-class machine; `Scale::smoke()` is a tiny
/// configuration used by the integration tests.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Per-stream input rate (tuples per second) for latency experiments.
    pub rate_per_sec: f64,
    /// Window span in seconds for the "equal windows" configuration.
    pub window_secs: u64,
    /// Length of each simulated run in seconds of stream time.
    pub duration_secs: u64,
    /// Join-attribute domain (the paper uses 10,000; scaled runs shrink it
    /// so the number of matches per input tuple stays comparable).
    pub domain: u32,
    /// Core counts swept by the scaled simulator runs.
    pub sim_cores: Vec<usize>,
    /// Core counts swept by the paper-scale analytic model.
    pub model_cores: Vec<usize>,
    /// Bisection steps of each throughput search.
    pub throughput_steps: usize,
    /// Upper bound of the throughput searches (tuples/s per stream).
    pub max_search_rate: f64,
    /// Latency series bucket (output tuples per data point; the paper uses
    /// 200,000).
    pub latency_bucket: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            rate_per_sec: 150.0,
            window_secs: 20,
            duration_secs: 50,
            domain: 800,
            sim_cores: vec![2, 4, 8],
            model_cores: vec![4, 8, 12, 16, 20, 24, 28, 32, 36, 40],
            throughput_steps: 6,
            max_search_rate: 1_500.0,
            latency_bucket: 2_000,
            seed: 0xC0FFEE,
        }
    }
}

impl Scale {
    /// A very small configuration for smoke tests.
    pub fn smoke() -> Self {
        Scale {
            rate_per_sec: 150.0,
            window_secs: 4,
            duration_secs: 8,
            domain: 200,
            sim_cores: vec![2, 3],
            model_cores: vec![8, 40],
            throughput_steps: 3,
            max_search_rate: 500.0,
            latency_bucket: 200,
            seed: 7,
        }
    }
}

/// A simple fixed-width text table used by all experiment reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I: IntoIterator<Item = T>, T: Into<String>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<I: IntoIterator<Item = T>, T: Into<String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(columns) {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with the given precision, used by the report tables.
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Nearest-rank percentile of an ascending-sorted sample (0 when empty).
/// Shared by the bench binaries so their per-phase latency rows stay
/// comparable across snapshots.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The bursty band-join schedule the elasticity benches replay: base
/// `rate` per stream with a `factor`× burst between `from_pct`% and
/// `to_pct`% of `duration`, on the scaled 220-value domain, over
/// symmetric time windows of `window`.  One definition so
/// `BENCH_elastic.json` and `BENCH_autoscale.json` measure the same
/// workload shape.
pub fn bursty_band_schedule(
    rate: f64,
    duration: llhj_core::time::TimeDelta,
    factor: u32,
    from_pct: u8,
    to_pct: u8,
    window: llhj_core::time::TimeDelta,
    seed: u64,
) -> llhj_core::driver::DriverSchedule<llhj_workload::RTuple, llhj_workload::STuple> {
    let workload = llhj_workload::BandJoinWorkload {
        domain: 220,
        seed,
        ..llhj_workload::BandJoinWorkload::bursty(rate, duration, factor, from_pct, to_pct)
    };
    llhj_workload::band_join_schedule(
        &workload,
        llhj_core::window::WindowSpec::Time(window),
        llhj_core::window::WindowSpec::Time(window),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["cores", "throughput"]);
        t.row(["4", "1000"]);
        t.row(["40", "3750.5"]);
        let rendered = t.render();
        assert!(rendered.contains("cores"));
        assert!(rendered.contains("3750.5"));
        assert_eq!(rendered.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn json_escape_neutralises_hostile_model_strings() {
        // A CPU model string with quotes, backslashes and control
        // characters must stay inside one JSON string literal.
        let hostile = "Evil\" CPU \\ v1\n\t\u{1}";
        let escaped = json_escape(hostile);
        assert_eq!(escaped, "Evil\\\" CPU \\\\ v1\\n\\t\\u0001");
        // No raw quote, backslash or control character survives.
        let mut chars = escaped.chars().peekable();
        while let Some(c) = chars.next() {
            assert!((c as u32) >= 0x20, "raw control character leaked");
            if c == '\\' {
                chars.next(); // the escaped character, whatever it is
            } else {
                assert_ne!(c, '"', "raw quote leaked");
            }
        }
        // Benign strings pass through untouched.
        assert_eq!(
            json_escape("AMD Opteron(tm) Processor 6174 @ 2.20GHz"),
            "AMD Opteron(tm) Processor 6174 @ 2.20GHz"
        );
    }

    #[test]
    fn host_meta_json_is_structurally_valid() {
        let meta = host_meta_json();
        assert!(meta.starts_with('{') && meta.ends_with('}'));
        // Crude but dependency-free balance check: an even number of
        // unescaped quotes, and the three expected fields are present.
        let unescaped_quotes = meta
            .as_bytes()
            .iter()
            .enumerate()
            .filter(|&(i, &b)| b == b'"' && (i == 0 || meta.as_bytes()[i - 1] != b'\\'))
            .count();
        assert_eq!(unescaped_quotes % 2, 0);
        assert!(meta.contains("\"cores\""));
        assert!(meta.contains("\"available_parallelism\""));
        assert!(meta.contains("\"pinning_active\": false"));
        assert!(meta.contains("\"cpu_model\""));
        assert!(meta.contains("\"caveat\""));
        assert!(host_meta_json_pinned(true).contains("\"pinning_active\": true"));
    }

    #[test]
    fn parallel_floors_are_annotated_not_asserted_on_one_core() {
        let (json, enforce) = parallel_floor_json("ring_vs_mutex_batch_1", 1.7, 1.5);
        assert!(json.contains("\"ring_vs_mutex_batch_1\": 1.70"));
        assert!(json.contains("\"required\": 1.50"));
        assert_eq!(enforce, can_assert_parallel_floor());
        if !enforce {
            assert!(json.contains("annotated, not asserted"));
        } else {
            assert!(json.contains("\"enforced\": true"));
        }
    }

    #[test]
    fn scales_are_distinct() {
        let full = Scale::default();
        let smoke = Scale::smoke();
        assert!(full.duration_secs > smoke.duration_secs);
        assert!(full.window_secs > smoke.window_secs);
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }
}
