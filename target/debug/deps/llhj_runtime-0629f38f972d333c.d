/root/repo/target/debug/deps/llhj_runtime-0629f38f972d333c.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/options.rs crates/runtime/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libllhj_runtime-0629f38f972d333c.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/options.rs crates/runtime/src/pipeline.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/options.rs:
crates/runtime/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
