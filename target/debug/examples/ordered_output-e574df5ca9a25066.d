/root/repo/target/debug/examples/ordered_output-e574df5ca9a25066.d: examples/ordered_output.rs Cargo.toml

/root/repo/target/debug/examples/libordered_output-e574df5ca9a25066.rmeta: examples/ordered_output.rs Cargo.toml

examples/ordered_output.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
