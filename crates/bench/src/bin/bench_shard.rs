//! Shard-mesh scaling measurement, snapshotted to `BENCH_shard.json`.
//!
//! For each shard count the discrete-event mesh simulator binary-searches
//! the maximum per-stream arrival rate at which every node of every shard
//! stays under 90% utilization — the same max-sustainable-rate methodology
//! as the Figure 17 chain experiment, extended to the second scaling axis.
//! The cost model is scan-dominated (non-indexed LLHJ, 400 ns per
//! comparison): each probe scans the shard-local R window, so halving a
//! shard's key range halves both its arrival rate *and* the window each
//! arrival scans — the regime where key partitioning pays quadratically
//! and the mesh should scale near-linearly in shard count.
//!
//! The CI smoke run executes this binary and the final assertion guards
//! the claim the snapshot exists for: 4 shards must sustain at least
//! twice the rate of 1 shard.

use llhj_core::driver::DriverSchedule;
use llhj_core::homing::RoundRobin;
use llhj_core::shard::RouteMode;
use llhj_core::time::{TimeDelta, Timestamp};
use llhj_core::window::WindowSpec;
use llhj_sim::{max_sustainable_mesh_rate, Algorithm, SimConfig, ThroughputSearch};
use llhj_workload::{EquiXaPredicate, RTuple, STuple};

/// Skew-free equi trace: co-prime key cycles on the two streams so every
/// shard owns a near-equal slice of both key spaces.
fn make_schedule(rate: f64, window: WindowSpec) -> DriverSchedule<RTuple, STuple> {
    let n = (rate * 0.25) as u64; // a quarter virtual second per probe
    let gap = (1e6 / rate) as u64;
    let r: Vec<_> = (0..n)
        .map(|i| {
            (
                Timestamp::from_micros(i * gap),
                RTuple::new((i % 97) as i32, 0.0),
            )
        })
        .collect();
    let s: Vec<_> = (0..n)
        .map(|i| {
            (
                Timestamp::from_micros(i * gap),
                STuple::new((i % 89) as i32, 0.0),
            )
        })
        .collect();
    DriverSchedule::build(r, s, window, window)
}

fn main() {
    let window = WindowSpec::Count(200);
    let search = ThroughputSearch {
        utilization_threshold: 0.9,
        min_rate: 100.0,
        max_rate: 200_000.0,
        steps: 12,
    };
    let mut cfg = SimConfig::new(2, Algorithm::Llhj);
    cfg.batch_size = 16;
    cfg.cost.per_comparison_ns = 400.0;
    cfg.window_r = window;
    cfg.window_s = window;
    cfg.latency_bucket = 1_000_000;
    cfg.collect_interval = TimeDelta::from_millis(10);

    println!("{{");
    println!("  \"experiment\": \"shard_mesh_scaling\",");
    println!("  \"host\": {},", llhj_bench::host_meta_json());
    println!(
        "  \"setup\": \"non-indexed LLHJ, 400ns/comparison, count-200 windows, \
         width 2 per shard, co-partitioned equi keys (mod 97 x mod 89), \
         max rate with all nodes under 90% utilization\","
    );

    let shard_counts = [1usize, 2, 4];
    let mut rates = Vec::new();
    println!("  \"shards\": [");
    for (i, &shards) in shard_counts.iter().enumerate() {
        let result = max_sustainable_mesh_rate(
            &cfg,
            EquiXaPredicate,
            RoundRobin,
            RouteMode::CoPartition,
            shards,
            |rate| make_schedule(rate, window),
            &search,
        );
        println!(
            "    {{\"shards\": {}, \"nodes_total\": {}, \
             \"max_rate_per_stream_per_s\": {:.0}, \"utilization\": {:.3}, \
             \"speedup_vs_1\": {:.2}}}{}",
            shards,
            shards * 2,
            result.rate_per_stream,
            result.utilization,
            if rates.is_empty() {
                1.0
            } else {
                result.rate_per_stream / rates[0]
            },
            if i + 1 < shard_counts.len() { "," } else { "" },
        );
        rates.push(result.rate_per_stream);
    }
    println!("  ],");

    // The claim this snapshot exists for, asserted so the CI smoke run
    // guards it.
    let speedup4 = rates[2] / rates[0];
    assert!(
        speedup4 >= 2.0,
        "4 shards must sustain at least twice 1 shard: {:.0}/s vs {:.0}/s \
         (speedup {speedup4:.2}x)",
        rates[0],
        rates[2],
    );
    println!("  \"speedup_4_shards\": {speedup4:.2}");
    println!("}}");
}
