//! Crash-recovery cost measurement, snapshotted to `BENCH_recovery.json`.
//!
//! The discrete-event mesh simulator crashes a checkpointed run at 90% of
//! a Zipf-skewed equi-join trace and rebuilds it two ways:
//!
//! * **cold** — no checkpoint: the whole replay log runs again from event
//!   zero (`recover_mesh_simulation(.., None)`);
//! * **warm** — from the latest coordinated checkpoint: pay the blob
//!   install cost, then replay only the suffix past the checkpoint's
//!   consumed-event cut.
//!
//! Both paths produce byte-identical result sets (the crash-recovery
//! conformance suite proves that on the threaded runtime too); what this
//! snapshot records is the *time-to-recover* gap between them, per shard
//! count.  The CI smoke run executes this binary and the final assertion
//! guards the claim the durability layer exists for: recovering from a
//! checkpoint must beat cold replay by at least 2x.

use llhj_core::driver::DriverSchedule;
use llhj_core::homing::RoundRobin;
use llhj_core::shard::{MeshPlan, RouteMode};
use llhj_core::time::TimeDelta;
use llhj_core::window::WindowSpec;
use llhj_sim::{recover_mesh_simulation, run_checkpointed_mesh_simulation, Algorithm, SimConfig};
use llhj_workload::{
    zipf_equi_join_schedule, EquiXaPredicate, RTuple, STuple, ZipfEquiJoinWorkload,
};

/// Zipf-skewed equi trace (theta 1.0 over 60 keys): the same workload
/// family the crash-recovery conformance suite kills mid-migration.
fn make_schedule(rate: f64, duration_ms: u64) -> DriverSchedule<RTuple, STuple> {
    let workload = ZipfEquiJoinWorkload {
        rate_per_sec: rate,
        duration: TimeDelta::from_millis(duration_ms),
        domain: 60,
        theta: 1.0,
        seed: 0x5A4D_4301,
    };
    zipf_equi_join_schedule(
        &workload,
        WindowSpec::Time(TimeDelta::from_millis(150)),
        WindowSpec::Time(TimeDelta::from_millis(150)),
    )
}

fn main() {
    let mut cfg = SimConfig::new(2, Algorithm::LlhjIndexed);
    cfg.batch_size = 4;
    cfg.punctuate = true;
    cfg.window_r = WindowSpec::Time(TimeDelta::from_millis(150));
    cfg.window_s = cfg.window_r;
    cfg.latency_bucket = 1_000_000;

    let schedule = make_schedule(2_000.0, 3_000);
    let events = schedule.events().len();
    let every_events = 500;
    let crash_at = events * 9 / 10;

    println!("{{");
    println!("  \"experiment\": \"crash_recovery\",");
    println!("  \"host\": {},", llhj_bench::host_meta_json());
    println!(
        "  \"setup\": \"indexed LLHJ mesh, zipf(60, 1.0) equi keys at 2000/s for 3 \
         virtual seconds ({events} events), 150ms windows, width 2 per shard, \
         co-partitioned; checkpoint every {every_events} events, crash at 90%, \
         virtual-time makespans\","
    );

    let shard_counts = [1usize, 2, 4];
    let mut speedups = Vec::new();
    println!("  \"shards\": [");
    for (i, &shards) in shard_counts.iter().enumerate() {
        let (_, ckpt_log, latest) = run_checkpointed_mesh_simulation(
            &cfg,
            EquiXaPredicate,
            RoundRobin,
            RouteMode::CoPartition,
            shards,
            &schedule,
            &MeshPlan::none(),
            every_events,
            Some(crash_at),
        );
        let latest = latest.expect("crash at 90% lands long after the first checkpoint");
        let checkpoint_cost_ns: u64 = ckpt_log.iter().map(|e| e.cost_ns).sum();
        let warm = recover_mesh_simulation(
            &cfg,
            EquiXaPredicate,
            RoundRobin,
            RouteMode::CoPartition,
            shards,
            &schedule,
            Some(&latest),
        );
        let cold = recover_mesh_simulation(
            &cfg,
            EquiXaPredicate,
            RoundRobin,
            RouteMode::CoPartition,
            shards,
            &schedule,
            None,
        );
        // Warm recovery rebuilds only the post-checkpoint suffix (the
        // crashed run already emitted the prefix); every result it
        // produces must appear in the cold full replay.  The conformance
        // suite proves the stronger splice-exactness claim.
        let cold_keys = cold.result_keys();
        for key in warm.result_keys() {
            assert!(
                cold_keys.binary_search(&key).is_ok(),
                "warm recovery produced {key:?}, absent from the cold replay"
            );
        }
        let speedup = cold.makespan_ns as f64 / warm.makespan_ns.max(1) as f64;
        println!(
            "    {{\"shards\": {}, \"checkpoint_cut\": {}, \
             \"checkpoint_overhead_ns\": {}, \"cold_replay_ns\": {}, \
             \"warm_recovery_ns\": {}, \"speedup\": {:.2}}}{}",
            shards,
            latest.after_events,
            checkpoint_cost_ns,
            cold.makespan_ns,
            warm.makespan_ns,
            speedup,
            if i + 1 < shard_counts.len() { "," } else { "" },
        );
        speedups.push(speedup);
    }
    println!("  ],");

    // The claim this snapshot exists for, asserted so the CI smoke run
    // guards it.
    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        min_speedup >= 2.0,
        "recovery from a checkpoint must beat cold replay by at least 2x \
         at every shard count (worst {min_speedup:.2}x)"
    );
    println!("  \"min_speedup\": {min_speedup:.2}");
    println!("}}");
}
