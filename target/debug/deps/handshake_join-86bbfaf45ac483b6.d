/root/repo/target/debug/deps/handshake_join-86bbfaf45ac483b6.d: src/lib.rs

/root/repo/target/debug/deps/libhandshake_join-86bbfaf45ac483b6.rmeta: src/lib.rs

src/lib.rs:
