//! Node-local tuple stores.
//!
//! Each pipeline node keeps three stores (Section 4.3 of the paper):
//!
//! * `WR_k` — the node-local window of stream R tuples whose home node is
//!   this node, each carrying an *expedition flag*;
//! * `WS_k` — the node-local window of stream S tuples homed here;
//! * `IWS_k` — the buffer of S tuples that were forwarded to the left
//!   neighbour but have not been acknowledged yet.
//!
//! [`LocalWindow`] implements the first two (the expedition flag is simply
//! unused on the S side), optionally maintaining a hash index over an
//! equi-key for the index acceleration experiment (Table 2).  [`IwsBuffer`]
//! implements the third.

use crate::tuple::{SeqNo, StreamTuple};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Key extractor used by the optional hash index of a [`LocalWindow`].
pub type KeyFn<T> = Arc<dyn Fn(&T) -> u64 + Send + Sync>;

/// One entry of a node-local window.
#[derive(Debug, Clone)]
struct Entry<T> {
    tuple: StreamTuple<T>,
    /// True while the pipeline copy of this tuple is still travelling
    /// ("in expedition"); only meaningful for R-side windows.
    in_expedition: bool,
}

/// A node-local sliding-window segment.
///
/// Tuples are inserted in strictly increasing sequence-number order (the
/// drivers guarantee this), which lets all lookups by sequence number use
/// binary search on a `VecDeque`.
pub struct LocalWindow<T> {
    entries: VecDeque<Entry<T>>,
    in_expedition_count: usize,
    index: Option<WindowIndex<T>>,
}

struct WindowIndex<T> {
    key_fn: KeyFn<T>,
    buckets: HashMap<u64, Vec<SeqNo>>,
}

impl<T> Default for LocalWindow<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LocalWindow<T> {
    /// Creates an empty, unindexed window.
    pub fn new() -> Self {
        LocalWindow {
            entries: VecDeque::new(),
            in_expedition_count: 0,
            index: None,
        }
    }

    /// Creates an empty window with a hash index over `key_fn`.
    pub fn with_index(key_fn: KeyFn<T>) -> Self {
        LocalWindow {
            entries: VecDeque::new(),
            in_expedition_count: 0,
            index: Some(WindowIndex {
                key_fn,
                buckets: HashMap::new(),
            }),
        }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the window holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of stored tuples whose expedition has not finished yet.
    pub fn in_expedition(&self) -> usize {
        self.in_expedition_count
    }

    /// True if this window maintains a hash index.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Inserts a tuple.  `in_expedition` should be true for R-side windows
    /// (the flag is cleared later by an expedition-end message) and false
    /// for S-side windows.
    ///
    /// Panics in debug builds if sequence numbers are not inserted in
    /// increasing order.
    pub fn insert(&mut self, tuple: StreamTuple<T>, in_expedition: bool) {
        debug_assert!(
            self.entries.back().is_none_or(|e| e.tuple.seq < tuple.seq),
            "window insertions must be in increasing sequence order"
        );
        if let Some(index) = &mut self.index {
            let key = (index.key_fn)(&tuple.payload);
            index.buckets.entry(key).or_default().push(tuple.seq);
        }
        if in_expedition {
            self.in_expedition_count += 1;
        }
        self.entries.push_back(Entry {
            tuple,
            in_expedition,
        });
    }

    /// Position of `seq` in the entry deque, if present.
    fn position(&self, seq: SeqNo) -> Option<usize> {
        self.entries
            .binary_search_by(|e| e.tuple.seq.cmp(&seq))
            .ok()
    }

    /// Removes the tuple with the given sequence number, returning it if it
    /// was present.
    pub fn remove(&mut self, seq: SeqNo) -> Option<StreamTuple<T>> {
        let pos = self.position(seq)?;
        let entry = self.entries.remove(pos).expect("position was valid");
        if entry.in_expedition {
            self.in_expedition_count -= 1;
        }
        if let Some(index) = &mut self.index {
            let key = (index.key_fn)(&entry.tuple.payload);
            if let MapEntry::Occupied(mut bucket) = index.buckets.entry(key) {
                bucket.get_mut().retain(|&s| s != seq);
                if bucket.get().is_empty() {
                    bucket.remove();
                }
            }
        }
        Some(entry.tuple)
    }

    /// Clears the expedition flag of the tuple with the given sequence
    /// number.  Returns true if the tuple was found in this window.
    pub fn finish_expedition(&mut self, seq: SeqNo) -> bool {
        match self.position(seq) {
            Some(pos) => {
                let entry = &mut self.entries[pos];
                if entry.in_expedition {
                    entry.in_expedition = false;
                    self.in_expedition_count -= 1;
                }
                true
            }
            None => false,
        }
    }

    /// Returns a reference to the tuple with the given sequence number.
    pub fn get(&self, seq: SeqNo) -> Option<&StreamTuple<T>> {
        self.position(seq).map(|pos| &self.entries[pos].tuple)
    }

    /// Iterates over all stored tuples in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = &StreamTuple<T>> {
        self.entries.iter().map(|e| &e.tuple)
    }

    /// Scans the window, invoking `on_match` for every tuple that satisfies
    /// `pred`.  When `only_finished` is set, tuples whose expedition flag is
    /// still set are skipped (this is how stored/stored double matches are
    /// avoided, Section 4.2.3).
    ///
    /// Returns the number of predicate evaluations performed.
    pub fn scan_matches<F, M>(&self, only_finished: bool, mut pred: F, mut on_match: M) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(&StreamTuple<T>),
    {
        let mut comparisons = 0;
        for entry in &self.entries {
            if only_finished && entry.in_expedition {
                continue;
            }
            comparisons += 1;
            if pred(&entry.tuple.payload) {
                on_match(&entry.tuple);
            }
        }
        comparisons
    }

    /// Probes the hash index with `key`, invoking `on_match` for every
    /// candidate tuple that additionally satisfies `pred` (the residual
    /// predicate re-check keeps the probe correct for composite predicates).
    ///
    /// Returns the number of candidate evaluations.  Callers must check
    /// [`LocalWindow::has_index`] first; probing an unindexed window falls
    /// back to a full scan.
    pub fn probe_matches<F, M>(
        &self,
        key: u64,
        only_finished: bool,
        mut pred: F,
        mut on_match: M,
    ) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(&StreamTuple<T>),
    {
        let Some(index) = &self.index else {
            return self.scan_matches(only_finished, pred, on_match);
        };
        let mut comparisons = 0;
        if let Some(bucket) = index.buckets.get(&key) {
            for &seq in bucket {
                let pos = self
                    .position(seq)
                    .expect("index bucket references a stored tuple");
                let entry = &self.entries[pos];
                if only_finished && entry.in_expedition {
                    continue;
                }
                comparisons += 1;
                if pred(&entry.tuple.payload) {
                    on_match(&entry.tuple);
                }
            }
        }
        comparisons
    }

    /// Removes and returns the oldest stored tuple (lowest sequence number).
    /// Used by the original handshake join when a segment overflows.
    pub fn pop_oldest(&mut self) -> Option<(StreamTuple<T>, bool)> {
        let entry = self.entries.pop_front()?;
        if entry.in_expedition {
            self.in_expedition_count -= 1;
        }
        if let Some(index) = &mut self.index {
            let key = (index.key_fn)(&entry.tuple.payload);
            if let MapEntry::Occupied(mut bucket) = index.buckets.entry(key) {
                bucket.get_mut().retain(|&s| s != entry.tuple.seq);
                if bucket.get().is_empty() {
                    bucket.remove();
                }
            }
        }
        Some((entry.tuple, entry.in_expedition))
    }

    /// Returns a reference to the oldest stored tuple (lowest sequence
    /// number) without removing it.
    pub fn peek_oldest(&self) -> Option<&StreamTuple<T>> {
        self.entries.front().map(|e| &e.tuple)
    }

    /// Removes every stored tuple, returning them in sequence order.  Used
    /// by elastic reconfiguration to export a node's window segment; the
    /// caller must have cleared all expedition flags first (the elastic
    /// fence guarantees this).
    pub fn drain_sorted(&mut self) -> Vec<StreamTuple<T>> {
        assert_eq!(
            self.in_expedition_count, 0,
            "cannot export a window that still holds in-expedition tuples"
        );
        if let Some(index) = &mut self.index {
            index.buckets.clear();
        }
        self.entries.drain(..).map(|e| e.tuple).collect()
    }

    /// Removes and returns the tuples at the given *positions* of the
    /// seq-sorted window (position 0 = oldest), in sequence order.  The
    /// elastic redistribution uses this to shed an arbitrary slice — the
    /// oldest or newest `k` tuples — instead of the whole window.
    ///
    /// Like [`LocalWindow::drain_sorted`], only valid for settled state:
    /// panics if the range contains an in-expedition tuple (the elastic
    /// fence guarantees there are none anywhere).
    pub fn drain_range(&mut self, range: std::ops::Range<usize>) -> Vec<StreamTuple<T>> {
        assert!(
            range.end <= self.entries.len(),
            "drain range {range:?} out of bounds for window of {}",
            self.entries.len()
        );
        let drained: Vec<Entry<T>> = self
            .entries
            .drain(range)
            .inspect(|e| {
                assert!(
                    !e.in_expedition,
                    "cannot export a window slice that holds in-expedition tuples"
                );
            })
            .collect();
        if let Some(index) = &mut self.index {
            for entry in &drained {
                let key = (index.key_fn)(&entry.tuple.payload);
                if let MapEntry::Occupied(mut bucket) = index.buckets.entry(key) {
                    bucket.get_mut().retain(|&s| s != entry.tuple.seq);
                    if bucket.get().is_empty() {
                        bucket.remove();
                    }
                }
            }
        }
        drained.into_iter().map(|e| e.tuple).collect()
    }

    /// Installs a migrated batch of tuples (sorted by sequence number, none
    /// in expedition), interleaving it with the resident entries so the
    /// window stays sorted.  The hash index, if any, absorbs the new
    /// tuples.
    ///
    /// Sequence numbers must be disjoint from the resident ones: a tuple
    /// rests on exactly one node, so a migration can never deliver a
    /// duplicate.
    pub fn merge_sorted(&mut self, incoming: Vec<StreamTuple<T>>) {
        debug_assert!(
            incoming.windows(2).all(|w| w[0].seq < w[1].seq),
            "migrated tuples must arrive in increasing sequence order"
        );
        if incoming.is_empty() {
            return;
        }
        if let Some(index) = &mut self.index {
            for tuple in &incoming {
                let key = (index.key_fn)(&tuple.payload);
                index.buckets.entry(key).or_default().push(tuple.seq);
            }
        }
        // Classic two-way merge of two sorted runs.
        let resident: Vec<Entry<T>> = std::mem::take(&mut self.entries).into();
        let mut resident = resident.into_iter().peekable();
        let mut incoming = incoming.into_iter().peekable();
        let mut merged = VecDeque::with_capacity(resident.len() + incoming.len());
        loop {
            match (resident.peek(), incoming.peek()) {
                (Some(r), Some(i)) => {
                    assert_ne!(
                        r.tuple.seq, i.seq,
                        "a migrated tuple already rests in this window"
                    );
                    if r.tuple.seq < i.seq {
                        merged.push_back(resident.next().expect("peeked"));
                    } else {
                        merged.push_back(Entry {
                            tuple: incoming.next().expect("peeked"),
                            in_expedition: false,
                        });
                    }
                }
                (Some(_), None) => merged.push_back(resident.next().expect("peeked")),
                (None, Some(_)) => merged.push_back(Entry {
                    tuple: incoming.next().expect("peeked"),
                    in_expedition: false,
                }),
                (None, None) => break,
            }
        }
        self.entries = merged;
    }

    /// Consistency check used by tests and debug assertions: the expedition
    /// counter matches the flags, sequence numbers are strictly increasing
    /// and every index bucket references stored tuples.
    pub fn check_invariants(&self) -> Result<(), String> {
        let flagged = self.entries.iter().filter(|e| e.in_expedition).count();
        if flagged != self.in_expedition_count {
            return Err(format!(
                "expedition counter {} does not match flags {flagged}",
                self.in_expedition_count
            ));
        }
        for pair in self.entries.iter().zip(self.entries.iter().skip(1)) {
            if pair.0.tuple.seq >= pair.1.tuple.seq {
                return Err("sequence numbers are not strictly increasing".into());
            }
        }
        if let Some(index) = &self.index {
            let indexed: usize = index.buckets.values().map(Vec::len).sum();
            if indexed != self.entries.len() {
                return Err(format!(
                    "index holds {indexed} entries but window holds {}",
                    self.entries.len()
                ));
            }
            for bucket in index.buckets.values() {
                for &seq in bucket {
                    if self.position(seq).is_none() {
                        return Err(format!("index references missing tuple {seq}"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Buffer of S tuples forwarded to the left neighbour but not yet
/// acknowledged (`IWS_k` in Figures 13/14).
///
/// The buffer is scanned by arriving R tuples to detect pairs that would
/// otherwise pass each other "in flight" between two neighbouring nodes.
pub struct IwsBuffer<T> {
    entries: VecDeque<StreamTuple<T>>,
    index: Option<IwsIndex<T>>,
}

struct IwsIndex<T> {
    key_fn: KeyFn<T>,
    buckets: HashMap<u64, Vec<SeqNo>>,
}

impl<T> Default for IwsBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IwsBuffer<T> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        IwsBuffer {
            entries: VecDeque::new(),
            index: None,
        }
    }

    /// Creates an empty buffer with a hash index over `key_fn`.
    ///
    /// The IWS buffer is scanned by *every* R arrival passing the node
    /// (Table 1 of the paper), and unlike the windows it grows with the
    /// acknowledgement round-trip time rather than with the window span —
    /// under bursty or backpressured transport it can hold thousands of
    /// tuples, so an unindexed scan here dominates the whole pipeline.
    pub fn with_index(key_fn: KeyFn<T>) -> Self {
        IwsBuffer {
            entries: VecDeque::new(),
            index: Some(IwsIndex {
                key_fn,
                buckets: HashMap::new(),
            }),
        }
    }

    /// True if this buffer maintains a hash index.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Number of unacknowledged tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no tuple awaits acknowledgement.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a forwarded-but-unacknowledged tuple.
    pub fn insert(&mut self, tuple: StreamTuple<T>) {
        debug_assert!(
            self.entries.back().is_none_or(|e| e.seq < tuple.seq),
            "IWS insertions must be in increasing sequence order"
        );
        if let Some(index) = &mut self.index {
            let key = (index.key_fn)(&tuple.payload);
            index.buckets.entry(key).or_default().push(tuple.seq);
        }
        self.entries.push_back(tuple);
    }

    /// Removes the tuple acknowledged by the left neighbour.  Returns true
    /// if it was present.
    pub fn acknowledge(&mut self, seq: SeqNo) -> bool {
        match self.entries.binary_search_by(|e| e.seq.cmp(&seq)) {
            Ok(pos) => {
                let removed = self.entries.remove(pos).expect("position just found");
                if let Some(index) = &mut self.index {
                    let key = (index.key_fn)(&removed.payload);
                    if let MapEntry::Occupied(mut bucket) = index.buckets.entry(key) {
                        bucket.get_mut().retain(|s| *s != seq);
                        if bucket.get().is_empty() {
                            bucket.remove();
                        }
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Scans the buffer, invoking `on_match` for matching tuples.  Returns
    /// the number of predicate evaluations.
    pub fn scan_matches<F, M>(&self, mut pred: F, mut on_match: M) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(&StreamTuple<T>),
    {
        let mut comparisons = 0;
        for tuple in &self.entries {
            comparisons += 1;
            if pred(&tuple.payload) {
                on_match(tuple);
            }
        }
        comparisons
    }

    /// Probes the hash index for candidates with the given key, invoking
    /// `on_match` for those the predicate confirms.  Returns the number of
    /// predicate evaluations.  Panics if the buffer has no index.
    pub fn probe_matches<F, M>(&self, key: u64, mut pred: F, mut on_match: M) -> u64
    where
        F: FnMut(&T) -> bool,
        M: FnMut(&StreamTuple<T>),
    {
        let index = self.index.as_ref().expect("probe on unindexed IWS buffer");
        let mut comparisons = 0;
        if let Some(bucket) = index.buckets.get(&key) {
            for seq in bucket {
                if let Ok(pos) = self.entries.binary_search_by(|e| e.seq.cmp(seq)) {
                    let tuple = &self.entries[pos];
                    comparisons += 1;
                    if pred(&tuple.payload) {
                        on_match(tuple);
                    }
                }
            }
        }
        comparisons
    }

    /// Iterates over buffered tuples.
    pub fn iter(&self) -> impl Iterator<Item = &StreamTuple<T>> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn t(seq: u64, v: u64) -> StreamTuple<u64> {
        StreamTuple::new(SeqNo(seq), Timestamp::from_millis(seq), v)
    }

    #[test]
    fn insert_get_remove() {
        let mut w = LocalWindow::new();
        w.insert(t(1, 10), true);
        w.insert(t(3, 30), false);
        w.insert(t(5, 50), true);
        assert_eq!(w.len(), 3);
        assert_eq!(w.in_expedition(), 2);
        assert_eq!(w.get(SeqNo(3)).unwrap().payload, 30);
        assert!(w.get(SeqNo(2)).is_none());
        let removed = w.remove(SeqNo(1)).unwrap();
        assert_eq!(removed.payload, 10);
        assert_eq!(w.in_expedition(), 1);
        assert!(w.remove(SeqNo(1)).is_none());
        w.check_invariants().unwrap();
    }

    #[test]
    fn finish_expedition_clears_flag_once() {
        let mut w = LocalWindow::new();
        w.insert(t(2, 0), true);
        assert!(w.finish_expedition(SeqNo(2)));
        assert_eq!(w.in_expedition(), 0);
        // Clearing twice is harmless.
        assert!(w.finish_expedition(SeqNo(2)));
        assert_eq!(w.in_expedition(), 0);
        // Unknown tuples report false so the caller forwards the message.
        assert!(!w.finish_expedition(SeqNo(99)));
        w.check_invariants().unwrap();
    }

    #[test]
    fn scan_respects_expedition_filter() {
        let mut w = LocalWindow::new();
        w.insert(t(1, 7), true);
        w.insert(t(2, 7), false);
        w.insert(t(3, 8), false);

        let mut seen = Vec::new();
        let cmp = w.scan_matches(false, |v| *v == 7, |m| seen.push(m.seq));
        assert_eq!(cmp, 3);
        assert_eq!(seen, vec![SeqNo(1), SeqNo(2)]);

        seen.clear();
        let cmp = w.scan_matches(true, |v| *v == 7, |m| seen.push(m.seq));
        assert_eq!(cmp, 2, "in-expedition tuples are not even evaluated");
        assert_eq!(seen, vec![SeqNo(2)]);
    }

    #[test]
    fn pop_oldest_returns_fifo_order() {
        let mut w = LocalWindow::new();
        w.insert(t(1, 1), true);
        w.insert(t(2, 2), false);
        let (first, flagged) = w.pop_oldest().unwrap();
        assert_eq!(first.seq, SeqNo(1));
        assert!(flagged);
        assert_eq!(w.in_expedition(), 0);
        let (second, flagged) = w.pop_oldest().unwrap();
        assert_eq!(second.seq, SeqNo(2));
        assert!(!flagged);
        assert!(w.pop_oldest().is_none());
    }

    #[test]
    fn hash_index_probe_finds_only_matching_bucket() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 10);
        let mut w = LocalWindow::with_index(key_fn);
        for i in 0..100u64 {
            w.insert(t(i, i), false);
        }
        let mut hits = Vec::new();
        let cmp = w.probe_matches(3, false, |v| *v % 10 == 3, |m| hits.push(m.payload));
        assert_eq!(hits.len(), 10);
        assert_eq!(cmp, 10, "probe only touches one bucket");
        assert!(hits.iter().all(|v| v % 10 == 3));
        w.check_invariants().unwrap();
    }

    #[test]
    fn hash_index_stays_consistent_under_removal() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 4);
        let mut w = LocalWindow::with_index(key_fn);
        for i in 0..40u64 {
            w.insert(t(i, i), false);
        }
        for i in (0..40u64).step_by(2) {
            assert!(w.remove(SeqNo(i)).is_some());
        }
        w.check_invariants().unwrap();
        let mut hits = 0;
        w.probe_matches(1, false, |_| true, |_| hits += 1);
        assert_eq!(hits, 10);
        // pop_oldest also maintains the index.
        while w.pop_oldest().is_some() {}
        w.check_invariants().unwrap();
        assert!(w.is_empty());
    }

    #[test]
    fn probe_without_index_falls_back_to_scan() {
        let mut w = LocalWindow::new();
        w.insert(t(0, 5), false);
        w.insert(t(1, 6), false);
        let mut hits = 0;
        let cmp = w.probe_matches(123, false, |v| *v == 6, |_| hits += 1);
        assert_eq!(cmp, 2);
        assert_eq!(hits, 1);
        assert!(!w.has_index());
    }

    #[test]
    fn drain_and_merge_interleave_and_keep_the_index_consistent() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 4);
        let mut donor = LocalWindow::with_index(Arc::clone(&key_fn));
        let mut survivor = LocalWindow::with_index(key_fn);
        // Round-robin-style interleaved homes: donor holds odd seqs,
        // survivor even ones.
        for i in 0..40u64 {
            if i % 2 == 1 {
                donor.insert(t(i, i), false);
            } else {
                survivor.insert(t(i, i), false);
            }
        }
        let migrated = donor.drain_sorted();
        assert!(donor.is_empty());
        assert_eq!(migrated.len(), 20);
        assert!(migrated.windows(2).all(|w| w[0].seq < w[1].seq));
        survivor.merge_sorted(migrated);
        assert_eq!(survivor.len(), 40);
        survivor.check_invariants().unwrap();
        // Lookups, probes and removals keep working on the merged window.
        assert_eq!(survivor.get(SeqNo(13)).unwrap().payload, 13);
        let mut hits = 0;
        survivor.probe_matches(1, false, |_| true, |_| hits += 1);
        assert_eq!(hits, 10);
        assert!(survivor.remove(SeqNo(13)).is_some());
        survivor.check_invariants().unwrap();
    }

    #[test]
    fn drain_range_sheds_a_slice_and_keeps_the_index_consistent() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| *v % 4);
        let mut w = LocalWindow::with_index(key_fn);
        for i in 0..10u64 {
            w.insert(t(i, i), false);
        }
        // Shed the oldest three (positions 0..3).
        let oldest = w.drain_range(0..3);
        assert_eq!(
            oldest.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![SeqNo(0), SeqNo(1), SeqNo(2)]
        );
        assert_eq!(w.len(), 7);
        w.check_invariants().unwrap();
        // Shed the newest two (positions len-2..len).
        let newest = w.drain_range(5..7);
        assert_eq!(
            newest.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![SeqNo(8), SeqNo(9)]
        );
        w.check_invariants().unwrap();
        // The drained tuples are gone from the index too.
        let mut hits = Vec::new();
        w.probe_matches(0, false, |_| true, |m| hits.push(m.seq));
        assert_eq!(hits, vec![SeqNo(4)]);
        // An empty range is a no-op.
        assert!(w.drain_range(2..2).is_empty());
        assert_eq!(w.len(), 5);
    }

    #[test]
    #[should_panic(expected = "in-expedition")]
    fn drain_range_rejects_live_expeditions() {
        let mut w = LocalWindow::new();
        w.insert(t(1, 1), true);
        let _ = w.drain_range(0..1);
    }

    #[test]
    fn merge_into_empty_and_empty_into_full_are_noops_or_copies() {
        let mut w = LocalWindow::new();
        w.merge_sorted(vec![t(3, 3), t(7, 7)]);
        assert_eq!(w.len(), 2);
        w.merge_sorted(Vec::new());
        assert_eq!(w.len(), 2);
        w.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "in-expedition")]
    fn drain_rejects_windows_with_live_expeditions() {
        let mut w = LocalWindow::new();
        w.insert(t(1, 1), true);
        let _ = w.drain_sorted();
    }

    #[test]
    #[should_panic(expected = "already rests in this window")]
    fn merge_rejects_duplicate_residence() {
        let mut w = LocalWindow::new();
        w.insert(t(5, 5), false);
        w.merge_sorted(vec![t(5, 5)]);
    }

    #[test]
    fn iws_buffer_acknowledge() {
        let mut iws = IwsBuffer::new();
        iws.insert(t(4, 44));
        iws.insert(t(9, 99));
        assert_eq!(iws.len(), 2);
        assert!(iws.acknowledge(SeqNo(4)));
        assert!(!iws.acknowledge(SeqNo(4)));
        assert_eq!(iws.len(), 1);
        let mut seen = Vec::new();
        let cmp = iws.scan_matches(|v| *v == 99, |m| seen.push(m.seq));
        assert_eq!(cmp, 1);
        assert_eq!(seen, vec![SeqNo(9)]);
        assert_eq!(iws.iter().count(), 1);
        assert!(!iws.is_empty());
    }

    #[test]
    fn indexed_iws_probe_matches_scan_and_survives_acks() {
        let key_fn: KeyFn<u64> = Arc::new(|v: &u64| v % 10);
        let mut indexed = IwsBuffer::with_index(key_fn);
        let mut plain = IwsBuffer::new();
        assert!(indexed.has_index());
        assert!(!plain.has_index());
        for i in 0..100u64 {
            indexed.insert(t(i, i * 3));
            plain.insert(t(i, i * 3));
        }
        // Probe for value 33 (key 33 % 10 = 3).
        let mut probe_hits = Vec::new();
        let probe_cmp = indexed.probe_matches(3, |v| *v == 33, |m| probe_hits.push(m.seq));
        let mut scan_hits = Vec::new();
        let scan_cmp = plain.scan_matches(|v| *v == 33, |m| scan_hits.push(m.seq));
        assert_eq!(probe_hits, scan_hits);
        assert_eq!(probe_hits, vec![SeqNo(11)]);
        assert!(
            probe_cmp < scan_cmp / 5,
            "probe touches only the bucket: {probe_cmp} vs {scan_cmp}"
        );
        // Acknowledging removes the tuple from the bucket too.
        assert!(indexed.acknowledge(SeqNo(11)));
        let cmp = indexed.probe_matches(3, |v| *v == 33, |_| panic!("acked tuple matched"));
        assert!(cmp <= scan_cmp);
        // A probe for an empty bucket touches nothing.
        assert_eq!(indexed.probe_matches(777, |_| true, |_| ()), 0);
    }

    #[test]
    fn empty_windows_behave() {
        let w: LocalWindow<u64> = LocalWindow::new();
        assert!(w.is_empty());
        assert_eq!(w.scan_matches(false, |_| true, |_| panic!("no tuples")), 0);
        w.check_invariants().unwrap();
        let iws: IwsBuffer<u64> = IwsBuffer::new();
        assert!(iws.is_empty());
    }
}
