/root/repo/target/release/deps/fig17-155471877a07e611.d: crates/bench/src/bin/fig17.rs

/root/repo/target/release/deps/fig17-155471877a07e611: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
