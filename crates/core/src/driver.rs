//! The external window driver.
//!
//! Both handshake-join variants assume "an external driver that is aware of
//! the sliding window specification and determines when tuples enter or
//! leave one of the sliding windows" (Section 4.2.4).  This module builds
//! that driver in an engine-agnostic way: given the raw arrivals of both
//! streams and a window specification per stream, it produces a single
//! totally-ordered schedule of arrival and expiry events.  The threaded
//! runtime replays the schedule against the wall clock, the discrete-event
//! simulator replays it in virtual time, and the baseline algorithms consume
//! it directly — so every algorithm sees exactly the same window semantics.

use crate::homing::HomePolicy;
use crate::message::{LeftToRight, RightToLeft};
use crate::predicate::JoinPredicate;
use crate::time::Timestamp;
use crate::tuple::{PipelineTuple, SeqNo, StreamTuple};
use crate::window::{WindowSpec, WindowTracker};

/// One driver event: something enters or leaves a sliding window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent<R, S> {
    /// A new R tuple arrives (submitted to the left pipeline end).
    ArrivalR(StreamTuple<R>),
    /// A new S tuple arrives (submitted to the right pipeline end).
    ArrivalS(StreamTuple<S>),
    /// An R tuple leaves its window (submitted to the right pipeline end).
    ExpireR(SeqNo),
    /// An S tuple leaves its window (submitted to the left pipeline end).
    ExpireS(SeqNo),
}

impl<R, S> StreamEvent<R, S> {
    /// True for arrival events.
    pub fn is_arrival(&self) -> bool {
        matches!(self, StreamEvent::ArrivalR(_) | StreamEvent::ArrivalS(_))
    }
}

/// A timestamped driver event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverEvent<R, S> {
    /// The stream time at which the driver submits the event.
    pub at: Timestamp,
    /// What happens.
    pub event: StreamEvent<R, S>,
}

/// The fully-ordered schedule of driver events for one experiment run.
#[derive(Debug, Clone)]
pub struct DriverSchedule<R, S> {
    events: Vec<DriverEvent<R, S>>,
    r_count: usize,
    s_count: usize,
}

impl<R, S> DriverSchedule<R, S> {
    /// Builds a schedule from raw arrivals (timestamp, payload) of both
    /// streams and their window specifications.
    ///
    /// Arrivals must be sorted by timestamp within each stream; sequence
    /// numbers are assigned here in arrival order.  Expiry events that fall
    /// beyond the last arrival are retained (they flush the windows), which
    /// callers may or may not replay.
    pub fn build(
        r_arrivals: Vec<(Timestamp, R)>,
        s_arrivals: Vec<(Timestamp, S)>,
        window_r: WindowSpec,
        window_s: WindowSpec,
    ) -> Self {
        let r_count = r_arrivals.len();
        let s_count = s_arrivals.len();
        let mut events = Vec::with_capacity(2 * (r_count + s_count));

        let mut tracker_r = WindowTracker::new(window_r);
        let mut last = Timestamp::ZERO;
        for (i, (ts, payload)) in r_arrivals.into_iter().enumerate() {
            assert!(ts >= last, "R arrivals must be sorted by timestamp");
            last = ts;
            let seq = SeqNo(i as u64);
            for expiry in tracker_r.on_arrival(seq, ts) {
                events.push(DriverEvent {
                    at: expiry.at,
                    event: StreamEvent::ExpireR(expiry.seq),
                });
            }
            events.push(DriverEvent {
                at: ts,
                event: StreamEvent::ArrivalR(StreamTuple::new(seq, ts, payload)),
            });
        }

        let mut tracker_s = WindowTracker::new(window_s);
        let mut last = Timestamp::ZERO;
        for (i, (ts, payload)) in s_arrivals.into_iter().enumerate() {
            assert!(ts >= last, "S arrivals must be sorted by timestamp");
            last = ts;
            let seq = SeqNo(i as u64);
            for expiry in tracker_s.on_arrival(seq, ts) {
                events.push(DriverEvent {
                    at: expiry.at,
                    event: StreamEvent::ExpireS(expiry.seq),
                });
            }
            events.push(DriverEvent {
                at: ts,
                event: StreamEvent::ArrivalS(StreamTuple::new(seq, ts, payload)),
            });
        }

        // Stable ordering by time only.  Within one stream the generation
        // order is already correct (a count-window expiry is generated right
        // before the arrival that triggers it, a time-window expiry carries a
        // later timestamp), and `sort_by` is stable, so per-stream FIFO order
        // is preserved.  Cross-stream ties at the exact same microsecond are
        // broken in favour of R events; this convention is shared by every
        // algorithm that replays the schedule, so all of them agree on the
        // boundary cases.
        events.sort_by_key(|a| a.at);

        DriverSchedule {
            events,
            r_count,
            s_count,
        }
    }

    /// The ordered events.
    pub fn events(&self) -> &[DriverEvent<R, S>] {
        &self.events
    }

    /// Consumes the schedule, returning the ordered events.
    pub fn into_events(self) -> Vec<DriverEvent<R, S>> {
        self.events
    }

    /// Number of R arrivals in the schedule.
    pub fn r_count(&self) -> usize {
        self.r_count
    }

    /// Number of S arrivals in the schedule.
    pub fn s_count(&self) -> usize {
        self.s_count
    }

    /// A schedule holding only the first `events` events — the crash
    /// recovery suite replays such a prefix to model a driver that died
    /// mid-run with a clean injected prefix.  Arrival counts are recounted
    /// over the kept events.
    pub fn truncated(&self, events: usize) -> Self
    where
        R: Clone,
        S: Clone,
    {
        let kept = self.events[..events.min(self.events.len())].to_vec();
        let r_count = kept
            .iter()
            .filter(|e| matches!(e.event, StreamEvent::ArrivalR(_)))
            .count();
        let s_count = kept
            .iter()
            .filter(|e| matches!(e.event, StreamEvent::ArrivalS(_)))
            .count();
        DriverSchedule {
            events: kept,
            r_count,
            s_count,
        }
    }

    /// Timestamp of the last arrival (useful to stop replay once all input
    /// has been consumed).
    pub fn last_arrival_ts(&self) -> Option<Timestamp> {
        self.events
            .iter()
            .filter(|e| e.event.is_arrival())
            .map(|e| e.at)
            .next_back()
    }
}

/// Converts driver events into pipeline messages, assigning home nodes.
///
/// In the paper the home node is decided at the entry node of the pipeline
/// (line 6 of Figures 13/14).  Factoring the decision into this injector
/// keeps the node state machines independent of the placement policy while
/// remaining semantically identical: the injector is invoked exactly when a
/// tuple is submitted to its entry node.
pub struct Injector<R, S, P, H> {
    predicate: P,
    policy: H,
    nodes: usize,
    _marker: std::marker::PhantomData<fn() -> (R, S)>,
}

impl<R, S, P, H> Injector<R, S, P, H> {
    /// Creates an injector for a pipeline of `nodes` nodes.
    pub fn new(predicate: P, policy: H, nodes: usize) -> Self {
        assert!(nodes > 0, "a pipeline needs at least one node");
        Injector {
            predicate,
            policy,
            nodes,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of pipeline nodes the injector targets.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

impl<R, S, P, H> Injector<R, S, P, H>
where
    P: JoinPredicate<R, S>,
    H: HomePolicy,
{
    /// Wraps an R arrival for submission to the leftmost node.
    pub fn inject_r(&self, tuple: StreamTuple<R>) -> LeftToRight<R> {
        let key = self.predicate.r_key(&tuple.payload);
        let home = self.policy.assign(tuple.seq, key, self.nodes);
        LeftToRight::ArrivalR(PipelineTuple::fresh(tuple, home))
    }

    /// Wraps an S arrival for submission to the rightmost node.
    pub fn inject_s(&self, tuple: StreamTuple<S>) -> RightToLeft<S> {
        let key = self.predicate.s_key(&tuple.payload);
        let home = self.policy.assign(tuple.seq, key, self.nodes);
        RightToLeft::ArrivalS(PipelineTuple::fresh(tuple, home))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homing::RoundRobin;
    use crate::predicate::{EquiPredicate, FnPredicate};
    use crate::time::TimeDelta;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn schedule_orders_events_and_assigns_seqs() {
        let r = vec![(ts(1), 'a'), (ts(3), 'b')];
        let s = vec![(ts(2), 'x')];
        let sched = DriverSchedule::build(
            r,
            s,
            WindowSpec::Time(TimeDelta::from_secs(10)),
            WindowSpec::Time(TimeDelta::from_secs(10)),
        );
        assert_eq!(sched.r_count(), 2);
        assert_eq!(sched.s_count(), 1);
        let kinds: Vec<String> = sched
            .events()
            .iter()
            .map(|e| match &e.event {
                StreamEvent::ArrivalR(t) => format!("aR{}@{}", t.seq.0, e.at.as_secs_f64()),
                StreamEvent::ArrivalS(t) => format!("aS{}@{}", t.seq.0, e.at.as_secs_f64()),
                StreamEvent::ExpireR(q) => format!("eR{}@{}", q.0, e.at.as_secs_f64()),
                StreamEvent::ExpireS(q) => format!("eS{}@{}", q.0, e.at.as_secs_f64()),
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["aR0@1", "aS0@2", "aR1@3", "eR0@11", "eS0@12", "eR1@13"]
        );
        assert_eq!(sched.last_arrival_ts(), Some(ts(3)));
    }

    #[test]
    fn count_window_expiry_sits_between_the_two_arrivals() {
        // Count-based window of 1 on R with identical timestamps: the second
        // arrival expires the first at the same instant.  The expiry must
        // come after the first arrival (a tuple cannot expire before it
        // arrived) and before the arrival that triggered it.
        let r = vec![(ts(5), 1u32), (ts(5), 2u32)];
        let sched: DriverSchedule<u32, u32> =
            DriverSchedule::build(r, vec![], WindowSpec::Count(1), WindowSpec::Count(1));
        let pos = |pred: &dyn Fn(&StreamEvent<u32, u32>) -> bool| {
            sched.events().iter().position(|e| pred(&e.event)).unwrap()
        };
        let first_arrival = pos(&|e| matches!(e, StreamEvent::ArrivalR(t) if t.seq == SeqNo(0)));
        let expiry = pos(&|e| matches!(e, StreamEvent::ExpireR(SeqNo(0))));
        let second_arrival = pos(&|e| matches!(e, StreamEvent::ArrivalR(t) if t.seq == SeqNo(1)));
        assert!(first_arrival < expiry);
        assert!(expiry < second_arrival);
        assert_eq!(sched.events().len(), 3);
    }

    #[test]
    #[should_panic(expected = "sorted by timestamp")]
    fn unsorted_arrivals_are_rejected() {
        let r = vec![(ts(5), ()), (ts(3), ())];
        let _ = DriverSchedule::<(), ()>::build(
            r,
            vec![],
            WindowSpec::Unbounded,
            WindowSpec::Unbounded,
        );
    }

    #[test]
    fn injector_assigns_round_robin_homes() {
        let pred = FnPredicate(|_: &u32, _: &u32| true);
        let inj = Injector::new(pred, RoundRobin, 3);
        assert_eq!(inj.nodes(), 3);
        for i in 0..6u64 {
            let msg = inj.inject_r(StreamTuple::new(SeqNo(i), ts(i), i as u32));
            match msg {
                LeftToRight::ArrivalR(p) => {
                    assert_eq!(p.home, (i % 3) as usize);
                    assert!(p.is_fresh());
                }
                _ => panic!("expected arrival"),
            }
        }
    }

    #[test]
    fn injector_uses_predicate_keys_for_placement() {
        use crate::homing::HashKey;
        let pred = EquiPredicate::new(|r: &u64| *r, |s: &u64| *s);
        let inj = Injector::new(pred, HashKey, 4);
        // Same key on both sides must land on the same home node, which is
        // what makes hash placement co-partitioning.
        for key in 0..50u64 {
            let r_home = match inj.inject_r(StreamTuple::new(SeqNo(key), ts(1), key)) {
                LeftToRight::ArrivalR(p) => p.home,
                _ => unreachable!(),
            };
            let s_home = match inj.inject_s(StreamTuple::new(SeqNo(1000 + key), ts(1), key)) {
                RightToLeft::ArrivalS(p) => p.home,
                _ => unreachable!(),
            };
            assert_eq!(r_home, s_home);
        }
    }
}
