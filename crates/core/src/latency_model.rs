//! Analytic latency model of handshake join (Section 3.1 of the paper).
//!
//! Two tuples `r` and `s` that meet at pipeline position `α ∈ [0, 1]` at
//! time `T` satisfy `T = t_r + α·|W_R|` and `T = t_s + (1-α)·|W_S|`.  From
//! these the paper derives the bound of Equation 8:
//!
//! ```text
//! T - max(t_r, t_s)  <  |W_S| · |W_R| / (|W_R| + |W_S|)
//! ```
//!
//! which for equally-sized windows is `|W| / 2` — e.g. 7.5 minutes of
//! latency for the 15-minute benchmark window.  The low-latency variant
//! replaces the queueing delay with the expedition delay, which is
//! dominated by driver batching plus one pipeline traversal.

use crate::time::TimeDelta;

/// Latency bound of the original handshake join (Equation 8): the observed
/// latency of any result is strictly below this value once the windows are
/// full.
pub fn hsj_max_latency(window_r: TimeDelta, window_s: TimeDelta) -> TimeDelta {
    let wr = window_r.as_secs_f64();
    let ws = window_s.as_secs_f64();
    if wr + ws == 0.0 {
        return TimeDelta::ZERO;
    }
    TimeDelta::from_secs_f64(wr * ws / (wr + ws))
}

/// Latency of a match that happens at pipeline position `alpha` (0 = left
/// end, 1 = right end), as a function of which input tuple arrived later.
///
/// This is Equations 6 and 7: if the match position lies left of the
/// "meeting point" `|W_S| / (|W_R| + |W_S|)` the R tuple arrived later and
/// the latency is `α·|W_R|`; otherwise the S tuple arrived later and the
/// latency is `(1-α)·|W_S|`.
pub fn hsj_latency_at_position(alpha: f64, window_r: TimeDelta, window_s: TimeDelta) -> TimeDelta {
    let alpha = alpha.clamp(0.0, 1.0);
    let wr = window_r.as_secs_f64();
    let ws = window_s.as_secs_f64();
    let meeting = if wr + ws == 0.0 { 0.5 } else { ws / (wr + ws) };
    let latency = if alpha < meeting {
        alpha * wr
    } else {
        (1.0 - alpha) * ws
    };
    TimeDelta::from_secs_f64(latency)
}

/// Expected (average) latency of the original handshake join under the
/// uniform-meeting-position assumption: the average of
/// [`hsj_latency_at_position`] over `α ∈ [0, 1]`, which evaluates to half
/// the maximum bound.
pub fn hsj_expected_latency(window_r: TimeDelta, window_s: TimeDelta) -> TimeDelta {
    TimeDelta::from_secs_f64(hsj_max_latency(window_r, window_s).as_secs_f64() / 2.0)
}

/// Time after which the latency of handshake join reaches its steady state:
/// the windows must first fill up, which takes `max(|W_R|, |W_S|)`
/// (Section 3.2, "stable values at T = 200 seconds").
pub fn hsj_warmup(window_r: TimeDelta, window_s: TimeDelta) -> TimeDelta {
    if window_r >= window_s {
        window_r
    } else {
        window_s
    }
}

/// Parameters of the low-latency handshake join latency model
/// (Section 7.3): batching at the driver dominates, followed by the
/// pipeline traversal and the per-node scan time.
#[derive(Debug, Clone, Copy)]
pub struct LlhjLatencyModel {
    /// Driver batch size in tuples (64 in the paper's default setup, 4 in
    /// the reduced-batching experiment of Figure 20).
    pub batch_size: u64,
    /// Per-stream input rate in tuples per second.
    pub rate_per_sec: f64,
    /// Number of pipeline nodes.
    pub nodes: usize,
    /// One-hop messaging latency between neighbouring cores.
    pub hop_latency: TimeDelta,
    /// Time to scan one node-local window for one probe tuple.
    pub node_scan: TimeDelta,
}

impl LlhjLatencyModel {
    /// Average time a tuple waits for its batch to fill: half the batch
    /// period.  The paper observes ~9 ms for batch 64 at the 8-core rate
    /// and ~0.6 ms for batch 4.
    pub fn batching_delay(&self) -> TimeDelta {
        if self.rate_per_sec <= 0.0 {
            return TimeDelta::ZERO;
        }
        TimeDelta::from_secs_f64(self.batch_size as f64 / self.rate_per_sec / 2.0)
    }

    /// Delay contributed by fast-forwarding through the whole pipeline.
    pub fn traversal_delay(&self) -> TimeDelta {
        self.hop_latency
            .saturating_mul(self.nodes.saturating_sub(1) as u64)
    }

    /// Expected average result latency: batching plus traversal plus one
    /// node-local scan (scans on different nodes happen in parallel).
    pub fn expected_latency(&self) -> TimeDelta {
        self.batching_delay() + self.traversal_delay() + self.node_scan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> TimeDelta {
        TimeDelta::from_secs(s)
    }

    #[test]
    fn equal_windows_bound_is_half_window() {
        // |WR| = |WS| = 200 s  ->  100 s (Figure 5a).
        assert_eq!(hsj_max_latency(secs(200), secs(200)), secs(100));
        // 15-minute windows -> 7.5 minutes, the motivating example.
        assert_eq!(hsj_max_latency(secs(900), secs(900)), secs(450));
    }

    #[test]
    fn asymmetric_windows_match_paper_example() {
        // |WR| = 100 s, |WS| = 200 s -> 66.6 s (Figure 5b).
        let bound = hsj_max_latency(secs(100), secs(200));
        assert!((bound.as_secs_f64() - 66.6667).abs() < 0.001);
        // The bound is symmetric in its arguments.
        assert_eq!(bound, hsj_max_latency(secs(200), secs(100)));
    }

    #[test]
    fn zero_windows_give_zero_latency() {
        assert_eq!(
            hsj_max_latency(TimeDelta::ZERO, TimeDelta::ZERO),
            TimeDelta::ZERO
        );
    }

    #[test]
    fn positional_latency_peaks_at_meeting_point() {
        let wr = secs(200);
        let ws = secs(200);
        let peak = hsj_latency_at_position(0.5, wr, ws);
        assert_eq!(peak, secs(100));
        // The ends of the pipeline produce fresh meetings with low latency.
        assert_eq!(hsj_latency_at_position(0.0, wr, ws), TimeDelta::ZERO);
        assert_eq!(hsj_latency_at_position(1.0, wr, ws), TimeDelta::ZERO);
        // Every position respects the Equation 8 bound.
        for i in 0..=100 {
            let alpha = i as f64 / 100.0;
            assert!(hsj_latency_at_position(alpha, wr, ws) <= hsj_max_latency(wr, ws));
        }
        // Out-of-range positions are clamped.
        assert_eq!(hsj_latency_at_position(7.0, wr, ws), TimeDelta::ZERO);
    }

    #[test]
    fn expected_latency_is_half_the_bound() {
        assert_eq!(hsj_expected_latency(secs(200), secs(200)), secs(50));
    }

    #[test]
    fn warmup_is_the_larger_window() {
        assert_eq!(hsj_warmup(secs(100), secs(200)), secs(200));
        assert_eq!(hsj_warmup(secs(300), secs(200)), secs(300));
    }

    #[test]
    fn llhj_model_matches_paper_figures() {
        // 8-core configuration of Section 7.3: ~2800 tuples/s per stream,
        // batch 64 -> a batch roughly every 23 ms per stream; the paper
        // reports ~46 ms batch distance over both streams and an average
        // latency of 32 ms.  Our model only captures the order of
        // magnitude: batching delay must be in the 10-40 ms range.
        let model = LlhjLatencyModel {
            batch_size: 64,
            rate_per_sec: 2800.0,
            nodes: 8,
            hop_latency: TimeDelta::from_micros(1),
            node_scan: TimeDelta::from_micros(500),
        };
        let avg = model.expected_latency().as_millis_f64();
        assert!(avg > 5.0 && avg < 50.0, "average latency {avg} ms");

        // Batch size 4 (Figure 20): latency drops to ~1 ms.
        let small = LlhjLatencyModel {
            batch_size: 4,
            ..model
        };
        let avg = small.expected_latency().as_millis_f64();
        assert!(avg < 2.5, "average latency {avg} ms");
        assert!(small.batching_delay() < model.batching_delay());
    }

    #[test]
    fn llhj_model_degenerate_inputs() {
        let model = LlhjLatencyModel {
            batch_size: 64,
            rate_per_sec: 0.0,
            nodes: 1,
            hop_latency: TimeDelta::from_micros(1),
            node_scan: TimeDelta::ZERO,
        };
        assert_eq!(model.batching_delay(), TimeDelta::ZERO);
        assert_eq!(model.traversal_delay(), TimeDelta::ZERO);
        assert_eq!(model.expected_latency(), TimeDelta::ZERO);
    }
}
