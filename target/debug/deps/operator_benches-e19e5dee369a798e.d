/root/repo/target/debug/deps/operator_benches-e19e5dee369a798e.d: crates/bench/benches/operator_benches.rs Cargo.toml

/root/repo/target/debug/deps/liboperator_benches-e19e5dee369a798e.rmeta: crates/bench/benches/operator_benches.rs Cargo.toml

crates/bench/benches/operator_benches.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
