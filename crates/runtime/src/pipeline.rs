//! The threaded pipeline runtime.
//!
//! This module deploys a handshake-join pipeline the way the paper does on
//! its 48-core machine: one worker thread per processing node, neighbouring
//! workers connected by bounded FIFO channels (crossbeam), a driver thread
//! that replays the window driver's schedule, and a collector thread that
//! vacuums the per-worker result queues and (optionally) emits
//! punctuations derived from the high-water marks (Figure 15 / 16 of the
//! paper).
//!
//! The workers execute exactly the same node state machines as the
//! discrete-event simulator, so the produced result *set* is identical; the
//! runtime is what you would deploy on real hardware, while the simulator
//! is what the evaluation harness uses to sweep core counts beyond the host
//! machine.

use crate::options::{Pacing, PipelineOptions};
use crossbeam_channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use llhj_core::driver::{DriverSchedule, Injector, StreamEvent};
use llhj_core::homing::HomePolicy;
use llhj_core::message::{LeftToRight, NodeOutput, RightToLeft};
use llhj_core::node::PipelineNode;
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::{HighWaterMarks, OutputItem, Punctuation};
use llhj_core::result::{ResultTuple, TimedResult};
use llhj_core::stats::{LatencyPoint, LatencySeries, LatencySummary, NodeCounters};
use llhj_core::time::Timestamp;
use llhj_core::tuple::SeqNo;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything measured during one threaded run.
#[derive(Debug)]
pub struct RunOutcome<R, S> {
    /// All produced results, in collection order.
    pub results: Vec<TimedResult<R, S>>,
    /// The punctuated output stream (empty unless `punctuate` was set).
    pub output: Vec<OutputItem<TimedResult<R, S>>>,
    /// Per-node work counters, indexed by node id.
    pub counters: Vec<NodeCounters>,
    /// Latency statistics (meaningful only for paced runs).
    pub latency: LatencySummary,
    /// Latency time series.
    pub latency_series: Vec<LatencyPoint>,
    /// Wall-clock time the run took.
    pub elapsed: Duration,
    /// Number of punctuations emitted.
    pub punctuation_count: u64,
    /// Number of R/S arrivals replayed.
    pub arrivals_per_stream: (usize, usize),
}

impl<R, S> RunOutcome<R, S> {
    /// Sorted `(r_seq, s_seq)` result keys for comparison with the oracle.
    pub fn result_keys(&self) -> Vec<(SeqNo, SeqNo)> {
        let mut keys: Vec<_> = self.results.iter().map(|t| t.result.key()).collect();
        keys.sort_unstable();
        keys
    }

    /// Observed throughput in tuples per second per stream (wall clock).
    pub fn throughput_per_stream(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.arrivals_per_stream.0 as f64 / self.elapsed.as_secs_f64()
    }

    /// Total predicate evaluations across all workers.
    pub fn total_comparisons(&self) -> u64 {
        self.counters.iter().map(|c| c.comparisons).sum()
    }
}

/// The shared stream clock: maps wall-clock time to stream time.
struct StreamClock {
    pacing: Pacing,
    start: Instant,
    /// Stream time of the most recently injected driver event (drives the
    /// clock in unpaced mode).
    injected_us: AtomicU64,
}

impl StreamClock {
    fn new(pacing: Pacing) -> Self {
        StreamClock {
            pacing,
            start: Instant::now(),
            injected_us: AtomicU64::new(0),
        }
    }

    fn note_injection(&self, at: Timestamp) {
        self.injected_us.fetch_max(at.as_micros(), Ordering::Relaxed);
    }

    fn now(&self) -> Timestamp {
        match self.pacing {
            Pacing::Unpaced => Timestamp::from_micros(self.injected_us.load(Ordering::Relaxed)),
            Pacing::RealTime { speedup } => {
                let elapsed = self.start.elapsed().as_secs_f64() * speedup.max(0.0);
                Timestamp::from_micros((elapsed * 1e6) as u64)
            }
        }
    }
}

/// Internal wire format: payload plus an in-flight token so the driver can
/// detect quiescence.
enum Side<R, S> {
    Left(LeftToRight<R>),
    Right(RightToLeft<S>),
}

/// Runs a pipeline of the given nodes over a complete driver schedule and
/// waits for all results.
///
/// `nodes` must contain one [`PipelineNode`] per pipeline position, in
/// order (use [`crate::llhj_nodes`] / [`crate::hsj_nodes`] to build them).
pub fn run_pipeline<R, S, P, H>(
    nodes: Vec<Box<dyn PipelineNode<R, S>>>,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    options: &PipelineOptions,
) -> RunOutcome<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Send,
    H: HomePolicy,
{
    let n = nodes.len();
    assert!(n > 0, "pipeline needs at least one node");
    assert!(options.batch_size > 0, "batch size must be positive");
    let started = Instant::now();

    let injector = Injector::new(predicate, policy, n);
    let hwm = HighWaterMarks::new();
    let stop = Arc::new(AtomicBool::new(false));
    let in_flight = Arc::new(AtomicI64::new(0));
    let clock = Arc::new(StreamClock::new(options.pacing));

    // Channel wiring: ltr[k] is node k's left input, rtl[k] its right input.
    //
    // The two channels entering the pipeline from the driver are bounded so
    // the driver experiences backpressure (it can never run ahead of the
    // pipeline by more than `channel_capacity` messages).  The links
    // *between* workers are unbounded: with bounded links a pair of
    // neighbours could block on sending to each other simultaneously (R
    // traffic going right, acknowledgements and S traffic going left) and
    // deadlock; admission control at the driver keeps the actual occupancy
    // of the inner links small.
    let mut ltr_tx: Vec<Option<Sender<LeftToRight<R>>>> = Vec::with_capacity(n);
    let mut ltr_rx: Vec<Option<Receiver<LeftToRight<R>>>> = Vec::with_capacity(n);
    let mut rtl_tx: Vec<Option<Sender<RightToLeft<S>>>> = Vec::with_capacity(n);
    let mut rtl_rx: Vec<Option<Receiver<RightToLeft<S>>>> = Vec::with_capacity(n);
    for k in 0..n {
        if k == 0 {
            let (tx, rx) = bounded(options.channel_capacity);
            ltr_tx.push(Some(tx));
            ltr_rx.push(Some(rx));
        } else {
            let (tx, rx) = unbounded();
            ltr_tx.push(Some(tx));
            ltr_rx.push(Some(rx));
        }
        if k == n - 1 {
            let (tx, rx) = bounded(options.channel_capacity);
            rtl_tx.push(Some(tx));
            rtl_rx.push(Some(rx));
        } else {
            let (tx, rx) = unbounded();
            rtl_tx.push(Some(tx));
            rtl_rx.push(Some(rx));
        }
    }
    let driver_left_tx = ltr_tx[0].take().expect("entry channel");
    let driver_right_tx = rtl_tx[n - 1].take().expect("entry channel");

    // Per-worker result queues (Figure 15).
    let mut result_tx: Vec<Sender<TimedResult<R, S>>> = Vec::with_capacity(n);
    let mut result_rx: Vec<Receiver<TimedResult<R, S>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        result_tx.push(tx);
        result_rx.push(rx);
    }

    let mut counters = vec![NodeCounters::default(); n];
    let mut collected: Option<CollectorOutcome<R, S>> = None;

    std::thread::scope(|scope| {
        // ---------------- workers ----------------
        let mut worker_handles = Vec::with_capacity(n);
        for (k, mut node) in nodes.into_iter().enumerate() {
            let left_rx = ltr_rx[k].take().expect("left input");
            let right_rx = rtl_rx[k].take().expect("right input");
            let to_right = if k + 1 < n { ltr_tx[k + 1].take() } else { None };
            let to_left = if k > 0 { rtl_tx[k - 1].take() } else { None };
            let results = result_tx[k].clone();
            let hwm = Arc::clone(&hwm);
            let stop = Arc::clone(&stop);
            let in_flight = Arc::clone(&in_flight);
            let clock = Arc::clone(&clock);
            let is_leftmost = k == 0;
            let is_rightmost = k + 1 == n;

            worker_handles.push(scope.spawn(move || {
                let mut out: NodeOutput<R, S, ResultTuple<R, S>> = NodeOutput::new();
                loop {
                    let msg: Option<Side<R, S>> = crossbeam_channel::select! {
                        recv(left_rx) -> m => m.ok().map(Side::Left),
                        recv(right_rx) -> m => m.ok().map(Side::Right),
                        default(Duration::from_millis(1)) => None,
                    };
                    match msg {
                        Some(side) => {
                            let now = clock.now();
                            node.observe_time(now);
                            out.clear();
                            match side {
                                Side::Left(m) => {
                                    let end_ts = match &m {
                                        LeftToRight::ArrivalR(r) if is_rightmost => Some(r.ts()),
                                        _ => None,
                                    };
                                    node.handle_left(m, &mut out);
                                    if let Some(ts) = end_ts {
                                        hwm.observe_r(ts);
                                    }
                                }
                                Side::Right(m) => {
                                    let end_ts = match &m {
                                        RightToLeft::ArrivalS(s) if is_leftmost => Some(s.ts()),
                                        _ => None,
                                    };
                                    node.handle_right(m, &mut out);
                                    if let Some(ts) = end_ts {
                                        hwm.observe_s(ts);
                                    }
                                }
                            }
                            for m in out.to_right.drain(..) {
                                if let Some(tx) = &to_right {
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    if tx.send(m).is_err() {
                                        in_flight.fetch_sub(1, Ordering::SeqCst);
                                    }
                                }
                            }
                            for m in out.to_left.drain(..) {
                                if let Some(tx) = &to_left {
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    if tx.send(m).is_err() {
                                        in_flight.fetch_sub(1, Ordering::SeqCst);
                                    }
                                }
                            }
                            if !out.results.is_empty() {
                                let detected_at = clock.now();
                                for result in out.results.drain(..) {
                                    let _ = results.send(TimedResult::new(result, detected_at));
                                }
                            }
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        None => {
                            if stop.load(Ordering::SeqCst)
                                && left_rx.is_empty()
                                && right_rx.is_empty()
                            {
                                break;
                            }
                        }
                    }
                }
                (k, node.node_counters())
            }));
        }
        drop(result_tx);

        // ---------------- collector ----------------
        let collector_handle = {
            let stop = Arc::clone(&stop);
            let hwm = Arc::clone(&hwm);
            let receivers = result_rx;
            let punctuate = options.punctuate;
            let interval = options.collect_interval;
            let bucket = options.latency_bucket;
            scope.spawn(move || {
                let mut outcome = CollectorOutcome {
                    results: Vec::new(),
                    output: Vec::new(),
                    latency: LatencySummary::new(),
                    series: LatencySeries::new(bucket),
                    punctuation_count: 0,
                };
                loop {
                    let stopping = stop.load(Ordering::SeqCst);
                    // Step 1 (Section 6.1.3): read the high-water marks
                    // before vacuuming the queues.
                    let safe = hwm.safe_punctuation();
                    let mut drained_any = false;
                    for rx in &receivers {
                        while let Ok(timed) = rx.try_recv() {
                            drained_any = true;
                            outcome.latency.record(timed.latency());
                            outcome.series.record(timed.detected_at, timed.latency());
                            if punctuate {
                                outcome.output.push(OutputItem::Result(timed.clone()));
                            }
                            outcome.results.push(timed);
                        }
                    }
                    if punctuate && drained_any {
                        outcome
                            .output
                            .push(OutputItem::Punctuation(Punctuation { ts: safe }));
                        outcome.punctuation_count += 1;
                    }
                    if stopping && !drained_any {
                        break;
                    }
                    std::thread::sleep(interval);
                }
                outcome
            })
        };

        // ---------------- driver (this thread) ----------------
        let mut left_batch = 0usize;
        let mut right_batch = 0usize;
        let mut left_pending: Vec<LeftToRight<R>> = Vec::new();
        let mut right_pending: Vec<RightToLeft<S>> = Vec::new();
        let flush_left = |pending: &mut Vec<LeftToRight<R>>,
                          in_flight: &AtomicI64,
                          tx: &Sender<LeftToRight<R>>| {
            for msg in pending.drain(..) {
                in_flight.fetch_add(1, Ordering::SeqCst);
                if tx.send(msg).is_err() {
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            }
        };
        let flush_right = |pending: &mut Vec<RightToLeft<S>>,
                           in_flight: &AtomicI64,
                           tx: &Sender<RightToLeft<S>>| {
            for msg in pending.drain(..) {
                in_flight.fetch_add(1, Ordering::SeqCst);
                if tx.send(msg).is_err() {
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            }
        };

        // Partial batches are flushed as soon as a stream delivers its last
        // arrival, so the tail of the stream pays the normal batching delay
        // rather than waiting for the trailing expiry events.
        let mut seen_r = 0usize;
        let mut seen_s = 0usize;
        for event in schedule.events() {
            if let Pacing::RealTime { .. } = options.pacing {
                let target = options.stream_to_wall(event.at.saturating_since(Timestamp::ZERO));
                let elapsed = started.elapsed();
                if target > elapsed {
                    std::thread::sleep(target - elapsed);
                }
            }
            clock.note_injection(event.at);
            match &event.event {
                StreamEvent::ArrivalR(r) => {
                    left_pending.push(injector.inject_r(r.clone()));
                    left_batch += 1;
                    seen_r += 1;
                    if left_batch >= options.batch_size || seen_r == schedule.r_count() {
                        flush_left(&mut left_pending, &in_flight, &driver_left_tx);
                        left_batch = 0;
                    }
                }
                StreamEvent::ExpireS(seq) => left_pending.push(LeftToRight::ExpiryS(*seq)),
                StreamEvent::ArrivalS(s) => {
                    right_pending.push(injector.inject_s(s.clone()));
                    right_batch += 1;
                    seen_s += 1;
                    if right_batch >= options.batch_size || seen_s == schedule.s_count() {
                        flush_right(&mut right_pending, &in_flight, &driver_right_tx);
                        right_batch = 0;
                    }
                }
                StreamEvent::ExpireR(seq) => right_pending.push(RightToLeft::ExpiryR(*seq)),
            }
        }
        flush_left(&mut left_pending, &in_flight, &driver_left_tx);
        flush_right(&mut right_pending, &in_flight, &driver_right_tx);

        // Wait for quiescence: no message anywhere in the pipeline.
        while in_flight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::SeqCst);

        for handle in worker_handles {
            let (k, c) = handle.join().expect("worker thread panicked");
            counters[k] = c;
        }
        collected = Some(collector_handle.join().expect("collector thread panicked"));
    });

    let collected = collected.expect("collector outcome");
    RunOutcome {
        results: collected.results,
        output: collected.output,
        counters,
        latency: collected.latency,
        latency_series: collected.series.finish(),
        elapsed: started.elapsed(),
        punctuation_count: collected.punctuation_count,
        arrivals_per_stream: (schedule.r_count(), schedule.s_count()),
    }
}

struct CollectorOutcome<R, S> {
    results: Vec<TimedResult<R, S>>,
    output: Vec<OutputItem<TimedResult<R, S>>>,
    latency: LatencySummary,
    series: LatencySeries,
    punctuation_count: u64,
}

/// Waits on a receiver with a timeout, mapping disconnection to `None`.
#[allow(dead_code)]
fn recv_opt<T>(rx: &Receiver<T>, timeout: Duration) -> Option<T> {
    match rx.recv_timeout(timeout) {
        Ok(v) => Some(v),
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
    }
}
