/root/repo/target/debug/deps/fig19-cc20bbeb4e178d5b.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/fig19-cc20bbeb4e178d5b: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
