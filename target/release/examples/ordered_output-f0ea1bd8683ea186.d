/root/repo/target/release/examples/ordered_output-f0ea1bd8683ea186.d: examples/ordered_output.rs

/root/repo/target/release/examples/ordered_output-f0ea1bd8683ea186: examples/ordered_output.rs

examples/ordered_output.rs:
