/root/repo/target/debug/deps/llhj_sim-f7be3befa9669977.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

/root/repo/target/debug/deps/libllhj_sim-f7be3befa9669977.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/model.rs:
crates/sim/src/report.rs:
crates/sim/src/throughput.rs:
