/root/repo/target/debug/deps/table2-4c0f35f53880a9e7.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-4c0f35f53880a9e7.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
