//! Criterion benchmark for the frame transport itself: one
//! producer/consumer hop moving a fixed number of frames over either the
//! mutex/condvar channel or the lock-free SPSC ring, at batch 1/16/64,
//! pinned to distinct cores and not.  The companion binary
//! `bench_channel` records the same sweep (plus the asserted ring >=
//! 1.5x mutex floor) as `BENCH_channel.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use llhj_runtime::channel::{self, Receiver, Sender, TryRecvError};
use llhj_runtime::{pin_thread, pinning_available, unpin_thread};
use llhj_sync::thread;
use llhj_sync::time::Duration;
use std::hint::black_box;

/// Frames per iteration: enough to amortise the thread spawn, small
/// enough that criterion gets real sample counts.
const FRAMES: u64 = 20_000;

fn make_channel(ring: bool) -> (Sender<Vec<u64>>, Receiver<Vec<u64>>) {
    if ring {
        channel::spsc_unbounded(256, None)
    } else {
        channel::unbounded()
    }
}

fn hop(ring: bool, batch: usize, pin: bool) -> u64 {
    let (tx, rx) = make_channel(ring);
    let producer = thread::spawn(move || {
        if pin {
            pin_thread(0);
        }
        for seq in 0..FRAMES {
            let frame: Vec<u64> = (0..batch as u64).map(|i| seq * batch as u64 + i).collect();
            tx.send(frame).expect("consumer outlives the producer");
        }
        if pin {
            unpin_thread();
        }
    });
    let mut tuples = 0u64;
    loop {
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(frame) => tuples += frame.len() as u64,
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => break,
        }
    }
    producer.join().expect("producer thread panicked");
    tuples
}

fn single_hop_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_single_hop");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let pin_variants: &[bool] = if pinning_available(2) {
        &[false, true]
    } else {
        &[false]
    };
    for &ring in &[false, true] {
        for &batch in &[1usize, 16, 64] {
            for &pin in pin_variants {
                let name = format!(
                    "{}_batch_{batch}{}",
                    if ring { "ring" } else { "mutex" },
                    if pin { "_pinned" } else { "" },
                );
                group.bench_function(name, |b| {
                    if pin {
                        pin_thread(1);
                    }
                    b.iter(|| black_box(hop(ring, batch, pin)));
                    if pin {
                        unpin_thread();
                    }
                });
            }
        }
    }
    group.finish();
}

criterion_group!(bench_channel, single_hop_sweep);
criterion_main!(bench_channel);
