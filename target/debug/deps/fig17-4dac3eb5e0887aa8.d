/root/repo/target/debug/deps/fig17-4dac3eb5e0887aa8.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/fig17-4dac3eb5e0887aa8: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
