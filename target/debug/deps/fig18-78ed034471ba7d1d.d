/root/repo/target/debug/deps/fig18-78ed034471ba7d1d.d: crates/bench/src/bin/fig18.rs

/root/repo/target/debug/deps/libfig18-78ed034471ba7d1d.rmeta: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
