/root/repo/target/debug/deps/llhj_bench-96e75d8a0c562194.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/batching.rs crates/bench/src/experiments/fig05.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig20.rs crates/bench/src/experiments/fig21.rs crates/bench/src/experiments/table2.rs

/root/repo/target/debug/deps/llhj_bench-96e75d8a0c562194: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/batching.rs crates/bench/src/experiments/fig05.rs crates/bench/src/experiments/fig17.rs crates/bench/src/experiments/fig18.rs crates/bench/src/experiments/fig19.rs crates/bench/src/experiments/fig20.rs crates/bench/src/experiments/fig21.rs crates/bench/src/experiments/table2.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/batching.rs:
crates/bench/src/experiments/fig05.rs:
crates/bench/src/experiments/fig17.rs:
crates/bench/src/experiments/fig18.rs:
crates/bench/src/experiments/fig19.rs:
crates/bench/src/experiments/fig20.rs:
crates/bench/src/experiments/fig21.rs:
crates/bench/src/experiments/table2.rs:
