//! Table 2: throughput of the 40-core configuration for the original
//! handshake join, low-latency handshake join, and low-latency handshake
//! join with node-local hash indexes (the join predicate changed to an
//! equi-join so that hashing applies).
//!
//! Paper numbers: 5,125 t/s (HSJ), 5,117 t/s (LLHJ), 225,234 t/s (LLHJ with
//! index) — i.e. the two scan-based algorithms are on par and the index
//! buys roughly a 40x improvement.
//!
//! The paper-scale throughput column comes from the calibrated analytic
//! model.  The scaled event-driven measurement replays the same equi-join
//! workload at a fixed rate through all three configurations and reports
//! the measured work per input tuple (predicate evaluations) and the
//! resulting pipeline utilization — the quantities that determine the
//! sustainable throughput and that make the index advantage directly
//! visible without having to drive the simulator to six-digit tuple rates.

use crate::{fmt_f, Scale, TextTable};
use llhj_core::homing::RoundRobin;
use llhj_core::time::TimeDelta;
use llhj_core::window::WindowSpec;
use llhj_sim::{run_simulation, Algorithm, AnalyticModel};
use llhj_workload::{equi_join_schedule, EquiJoinWorkload, EquiXaPredicate};

/// One algorithm's row of the table.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Algorithm label.
    pub algorithm: &'static str,
    /// Paper-scale model throughput at 40 cores (tuples/s per stream).
    pub model_rate: f64,
    /// Scaled simulator measurement: predicate evaluations (or index-probe
    /// verifications) per input tuple.
    pub comparisons_per_tuple: f64,
    /// Scaled simulator measurement: busiest-node utilization at the
    /// benchmark rate.
    pub utilization: f64,
    /// Result pairs produced by the scaled run (must agree across rows).
    pub results: usize,
}

/// The complete Table 2 reproduction.
#[derive(Debug)]
pub struct Table2Report {
    /// Rows: HSJ, LLHJ, LLHJ with index.
    pub rows: Vec<Table2Row>,
    /// Rendered report.
    pub text: String,
}

/// Runs the Table 2 reproduction.
pub fn run(scale: &Scale) -> Table2Report {
    let paper_cores = *scale.model_cores.last().unwrap_or(&40);
    let model = AnalyticModel::paper_benchmark(paper_cores);

    // Scaled measurement: equi-join workload at the benchmark rate on the
    // largest simulated core count.
    let sim_cores = *scale.sim_cores.last().unwrap_or(&4);
    let window_secs = (scale.window_secs / 2).max(1);
    let window = WindowSpec::time_secs(window_secs);
    let workload = EquiJoinWorkload {
        rate_per_sec: scale.rate_per_sec,
        duration: TimeDelta::from_secs(scale.duration_secs.min(window_secs * 3)),
        domain: scale.domain,
        seed: scale.seed,
    };
    let schedule = equi_join_schedule(&workload, window, window);
    let total_tuples = (schedule.r_count() + schedule.s_count()) as f64;

    let probe = |algorithm: Algorithm| -> (f64, f64, usize) {
        let mut cfg = super::sim_config(
            scale,
            sim_cores,
            algorithm,
            64,
            false,
            window_secs,
            window_secs,
            scale.rate_per_sec,
        );
        cfg.window_r = window;
        cfg.window_s = window;
        let report = run_simulation(&cfg, EquiXaPredicate, RoundRobin, &schedule);
        (
            report.total_comparisons() as f64 / total_tuples,
            report.max_utilization(),
            report.results.len(),
        )
    };

    let make_row = |label: &'static str, model_alg: Algorithm, sim_alg: Algorithm| {
        let (comparisons_per_tuple, utilization, results) = probe(sim_alg);
        Table2Row {
            algorithm: label,
            model_rate: model.max_rate(model_alg),
            comparisons_per_tuple,
            utilization,
            results,
        }
    };

    let rows = vec![
        make_row("handshake join", Algorithm::Hsj, Algorithm::Hsj),
        make_row(
            "low-latency handshake join",
            Algorithm::Llhj,
            Algorithm::Llhj,
        ),
        make_row(
            "low-latency handshake join with index",
            Algorithm::LlhjIndexed,
            Algorithm::LlhjIndexed,
        ),
    ];

    let mut table = TextTable::new([
        "algorithm".to_string(),
        format!("model t/s ({paper_cores} cores)"),
        "sim comparisons/tuple".to_string(),
        "sim utilization".to_string(),
        "sim results".to_string(),
    ]);
    for row in &rows {
        table.row([
            row.algorithm.to_string(),
            fmt_f(row.model_rate, 0),
            fmt_f(row.comparisons_per_tuple, 1),
            fmt_f(row.utilization, 3),
            row.results.to_string(),
        ]);
    }
    let text = format!(
        "Table 2: throughput with and without node-local hash indexes (equi join)\n{}",
        table.render()
    );
    Table2Report { rows, text }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_acceleration_dominates_like_table_2() {
        let report = run(&Scale::smoke());
        assert_eq!(report.rows.len(), 3);
        let hsj = &report.rows[0];
        let llhj = &report.rows[1];
        let indexed = &report.rows[2];

        // HSJ and LLHJ are on par (model throughput and measured work).
        let parity = llhj.model_rate / hsj.model_rate;
        assert!((0.7..1.4).contains(&parity), "parity ratio {parity}");
        let work_parity = llhj.comparisons_per_tuple / hsj.comparisons_per_tuple.max(1e-9);
        assert!(
            (0.4..2.5).contains(&work_parity),
            "work parity ratio {work_parity}"
        );

        // The index buys at least an order of magnitude in the model and
        // cuts the measured per-tuple work dramatically.
        assert!(indexed.model_rate > 10.0 * llhj.model_rate);
        assert!(
            indexed.comparisons_per_tuple * 5.0 < llhj.comparisons_per_tuple,
            "index must cut scan work: {} vs {}",
            indexed.comparisons_per_tuple,
            llhj.comparisons_per_tuple
        );
        assert!(indexed.utilization <= llhj.utilization);
        assert!(report.text.contains("Table 2"));
    }

    #[test]
    fn llhj_and_indexed_llhj_produce_the_same_result_set_size() {
        let report = run(&Scale::smoke());
        let sizes: Vec<usize> = report.rows.iter().map(|r| r.results).collect();
        // The two LLHJ variants are semantically identical; the original
        // handshake join may report a handful fewer pairs over a finite
        // replay because tuples only flow while new input keeps arriving.
        assert_eq!(sizes[1], sizes[2]);
        assert!(sizes[0] > 0 && sizes[0] <= sizes[1]);
        assert!(sizes[1] > 0, "equi workload must produce matches");
    }
}
