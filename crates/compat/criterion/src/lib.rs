//! A tiny, self-contained drop-in for the subset of the `criterion` API used
//! by this repository's benches.
//!
//! The build environment has no access to a crates.io mirror, so the real
//! criterion crate cannot be fetched.  This shim implements the same surface
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, `BatchSize`) with a
//! plain wall-clock harness: a warm-up phase, then timed samples until the
//! configured measurement time elapses, reporting mean / median / p95
//! nanoseconds per iteration.  Numbers are comparable between runs on the
//! same machine, which is all the repo's benches need.

// This shim stands in for an external crate and deliberately stays
// free of workspace dependencies; it measures wall-clock time, so the
// facade's logical clock would be wrong here anyway.
use std::time::{Duration, Instant}; // lint:allow(facade)

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The shim times the routine per
/// batch element regardless of the variant, so the variant only documents
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup dominates; fewer batches).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collected timings for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Default, Clone)]
pub struct SampleStats {
    samples_ns: Vec<f64>,
}

impl SampleStats {
    fn push(&mut self, ns: f64) {
        self.samples_ns.push(ns);
    }

    /// Mean nanoseconds per iteration.
    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    fn percentile_ns(&self, p: f64) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }
}

/// The per-benchmark measurement driver handed to `bench_function` closures.
pub struct Bencher<'a> {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    stats: &'a mut SampleStats,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly; one sample is one timed call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let measure_start = Instant::now();
        let mut recorded = 0usize;
        while recorded < self.sample_size || measure_start.elapsed() < self.measurement {
            let t0 = Instant::now();
            black_box(routine());
            self.stats.push(t0.elapsed().as_nanos() as f64);
            recorded += 1;
            if recorded >= self.sample_size && measure_start.elapsed() >= self.measurement {
                break;
            }
            // Hard cap so degenerate sub-nanosecond routines terminate.
            if recorded >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let measure_start = Instant::now();
        let mut recorded = 0usize;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.stats.push(t0.elapsed().as_nanos() as f64);
            recorded += 1;
            if recorded >= self.sample_size && measure_start.elapsed() >= self.measurement {
                break;
            }
            if recorded >= 1_000_000 {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing warm-up/measurement configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of recorded samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<N: ToString, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name.to_string());
        let mut stats = SampleStats::default();
        {
            let mut bencher = Bencher {
                warm_up: self.warm_up,
                measurement: self.measurement,
                sample_size: self.sample_size,
                stats: &mut stats,
            };
            f(&mut bencher);
        }
        report(&full, &stats);
        self.criterion.results.push((full, stats));
        self
    }

    /// Ends the group (report lines were already emitted per benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
    results: Vec<(String, SampleStats)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(1),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// No-op: the shim takes no CLI configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group<N: ToString>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<N: ToString, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = name.to_string();
        let mut stats = SampleStats::default();
        {
            let mut bencher = Bencher {
                warm_up: self.default_warm_up,
                measurement: self.default_measurement,
                sample_size: self.default_sample_size,
                stats: &mut stats,
            };
            f(&mut bencher);
        }
        report(&full, &stats);
        self.results.push((full, stats));
        self
    }

    /// Mean ns/iter of a finished benchmark, if it ran.
    pub fn mean_ns(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.mean_ns())
    }
}

fn report(name: &str, stats: &SampleStats) {
    println!(
        "{name:<48} time: [mean {:>12.1} ns  median {:>12.1} ns  p95 {:>12.1} ns]",
        stats.mean_ns(),
        stats.percentile_ns(0.5),
        stats.percentile_ns(0.95),
    );
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_stats_are_sane() {
        let mut c = Criterion {
            default_sample_size: 5,
            default_warm_up: Duration::from_millis(1),
            default_measurement: Duration::from_millis(5),
            results: Vec::new(),
        };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..100 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
        });
        let mean = c.mean_ns("spin").unwrap();
        assert!(mean > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            default_sample_size: 3,
            default_warm_up: Duration::from_millis(1),
            default_measurement: Duration::from_millis(3),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&b| b as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(c.mean_ns("g/batched").is_some());
    }
}
