//! The original handshake join node state machine (baseline).
//!
//! This is a from-scratch implementation of the handshake join of Teubner
//! and Mueller (SIGMOD 2011), the algorithm that Sections 2.3 and 3 of the
//! low-latency handshake join paper analyse and improve upon.  Both sliding
//! windows are partitioned into per-node *segments*; newly arriving tuples
//! enter at one pipeline end and slowly flow towards the other end, and a
//! tuple is compared against the opposite-stream segment of every node it
//! visits.  Each pair of concurrent tuples is therefore evaluated exactly
//! once — but only when the two physically meet, which is the source of the
//! latency analysed in Section 3 of the paper.
//!
//! Two flow policies are provided:
//!
//! * [`FlowPolicy::ByAge`] positions every tuple according to its age
//!   relative to its window span, which is exactly the "steady flow"
//!   assumption behind the latency model of Section 3.1 (Figure 4): a tuple
//!   of age `a` sits at pipeline position `a / |W|`.  This policy keeps the
//!   distributed window balanced in every phase (including while the
//!   windows are still filling) and guarantees that every pair of
//!   concurrent tuples meets before either expires.
//! * [`FlowPolicy::ByCapacity`] forwards the oldest tuple whenever a
//!   segment exceeds a fixed capacity; it matches the behaviour of a purely
//!   count-based deployment and is used for tuple-based windows.
//!
//! The acknowledgement mechanism on the S side (identical to the one in
//! [`crate::node_llhj`]) prevents missed pairs when two tuples cross
//! between the same pair of neighbouring nodes.
//!
//! ## Elasticity: capacity renegotiation and stream-monotone migration
//!
//! For two PRs this node was the non-elastic exception: the flow model
//! pinned segment capacities at construction, so resizing a chain required
//! redeployment.  Two additions close that gap:
//!
//! * [`HsjNode::renegotiate_capacity`] recomputes the per-node segment
//!   capacity from the chain-total window population and the new width —
//!   the flow model's `|W| / n` — and [`HsjNode::set_position`] applies it
//!   automatically whenever the chain is renumbered (age-based flow needs
//!   no stored renegotiation: its thresholds are already a function of
//!   `(id, nodes)`).
//! * [`HsjNode::import_segment`] installs a migrated [`WindowSegment`]
//!   **with matching**: handshake join's exactness rests on every pair of
//!   concurrent tuples *crossing exactly once* (R flows only rightward, S
//!   only leftward), so a migration hop must reproduce the meets it
//!   carries past each other.  A pair `(R at i, S at j)` has met if and
//!   only if `i >= j` — their monotone paths have crossed.  A segment
//!   arriving from the **left** therefore matches its R tuples (moving
//!   rightward into territory they have not crossed) against the local
//!   `WS_k`, and installs its S tuples silently (an S tuple moving
//!   rightward moves *away* from unmet R; the pair still crosses later).
//!   A segment arriving from the **right** is the mirror image: S tuples
//!   match against `WR_k`, R tuples install silently (an R tuple handed
//!   leftward out of a retiring node has already crossed every surviving
//!   S).  The matched side is always evaluated against the *pre-import*
//!   window, so two tuples migrating together are never re-matched.
//!   Redistribution plans additionally respect
//!   [`MigrationConstraint::monotone`](crate::rebalance::MigrationConstraint):
//!   R never migrates leftward and S never rightward outside a retirement,
//!   because such a move would un-cross already-met pairs and the flow
//!   policy would cross them again — a duplicate result.

use crate::message::{Direction, LeftToRight, NodeOutput, RightToLeft, WindowSegment};
use crate::predicate::JoinPredicate;
use crate::result::ResultTuple;
use crate::stats::NodeCounters;
use crate::store::{IwsBuffer, LocalWindow};
use crate::time::{TimeDelta, Timestamp};
use crate::tuple::{NodeId, PipelineTuple};

/// Output type produced by the HSJ node.
pub type HsjOutput<R, S> = NodeOutput<R, S, ResultTuple<R, S>>;

/// Segment capacities of one handshake join node (for count-based flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentCapacity {
    /// Maximum number of R tuples kept in this node's segment before the
    /// oldest one is pushed to the right neighbour.
    pub r: usize,
    /// Maximum number of S tuples kept before the oldest is pushed left.
    pub s: usize,
}

impl SegmentCapacity {
    /// Splits a total expected window population evenly over `nodes` nodes.
    ///
    /// Capacities are rounded up so the pipeline can always hold the whole
    /// window; a minimum of one tuple per node keeps degenerate
    /// configurations functional.
    pub fn balanced(window_tuples_r: usize, window_tuples_s: usize, nodes: usize) -> Self {
        assert!(nodes > 0, "pipeline must have at least one node");
        SegmentCapacity {
            r: (window_tuples_r.div_ceil(nodes)).max(1),
            s: (window_tuples_s.div_ceil(nodes)).max(1),
        }
    }
}

/// How tuples flow from node to node in the original handshake join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowPolicy {
    /// Position tuples proportionally to their age within their window
    /// span (the steady-flow model of Section 3.1).  Requires time-based
    /// windows.
    ByAge {
        /// Window span of stream R.
        window_r: TimeDelta,
        /// Window span of stream S.
        window_s: TimeDelta,
    },
    /// Forward the oldest tuple whenever the local segment exceeds a fixed
    /// capacity (suitable for tuple-based windows).
    ByCapacity(SegmentCapacity),
}

impl FlowPolicy {
    /// Convenience constructor for capacity-based flow.
    pub fn capacity(r: usize, s: usize) -> Self {
        FlowPolicy::ByCapacity(SegmentCapacity { r, s })
    }

    /// Convenience constructor for age-based flow.
    pub fn by_age(window_r: TimeDelta, window_s: TimeDelta) -> Self {
        FlowPolicy::ByAge { window_r, window_s }
    }
}

/// A single handshake join processing node.
pub struct HsjNode<R, S, P> {
    id: NodeId,
    nodes: usize,
    predicate: P,
    flow: FlowPolicy,
    /// Chain-total window population `(R, S)` the capacity-based flow
    /// model was sized for; recorded at construction so an elastic
    /// renumbering can renegotiate the per-node capacity (`total / n`).
    /// `None` for age-based flow, whose thresholds renegotiate
    /// implicitly.
    chain_capacity: Option<(usize, usize)>,
    wr: LocalWindow<R>,
    ws: LocalWindow<S>,
    iws: IwsBuffer<S>,
    clock: Timestamp,
    counters: NodeCounters,
}

impl<R, S, P> HsjNode<R, S, P>
where
    R: Clone,
    S: Clone,
    P: JoinPredicate<R, S>,
{
    /// Creates node `id` of a pipeline with `nodes` nodes.
    pub fn new(id: NodeId, nodes: usize, flow: FlowPolicy, predicate: P) -> Self {
        assert!(nodes > 0, "pipeline must have at least one node");
        assert!(id < nodes, "node id {id} out of range for {nodes} nodes");
        let chain_capacity = match flow {
            FlowPolicy::ByCapacity(cap) => Some((cap.r * nodes, cap.s * nodes)),
            FlowPolicy::ByAge { .. } => None,
        };
        HsjNode {
            id,
            nodes,
            predicate,
            flow,
            chain_capacity,
            wr: LocalWindow::new(),
            ws: LocalWindow::new(),
            iws: IwsBuffer::new(),
            clock: Timestamp::ZERO,
            counters: NodeCounters::default(),
        }
    }

    /// Creates a node with capacity-based flow.
    pub fn with_capacity(
        id: NodeId,
        nodes: usize,
        capacity: SegmentCapacity,
        predicate: P,
    ) -> Self {
        Self::new(id, nodes, FlowPolicy::ByCapacity(capacity), predicate)
    }

    /// Creates a node with age-based flow for time-based windows.
    pub fn with_age_flow(
        id: NodeId,
        nodes: usize,
        window_r: TimeDelta,
        window_s: TimeDelta,
        predicate: P,
    ) -> Self {
        Self::new(id, nodes, FlowPolicy::by_age(window_r, window_s), predicate)
    }

    /// This node's position in the pipeline.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// True for the leftmost node.
    pub fn is_leftmost(&self) -> bool {
        self.id == 0
    }

    /// True for the rightmost node.
    pub fn is_rightmost(&self) -> bool {
        self.id + 1 == self.nodes
    }

    /// Configured flow policy.
    pub fn flow_policy(&self) -> FlowPolicy {
        self.flow
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &NodeCounters {
        &self.counters
    }

    /// Current segment sizes `(|WR_k|, |WS_k|, |IWS_k|)`.
    pub fn segment_sizes(&self) -> (usize, usize, usize) {
        (self.wr.len(), self.ws.len(), self.iws.len())
    }

    /// Advances the node's notion of the current stream time.  The
    /// execution substrate calls this before delivering each message; the
    /// node also advances the clock from arrival timestamps it observes.
    pub fn advance_clock(&mut self, now: Timestamp) {
        self.clock = self.clock.max(now);
    }

    /// The node's current notion of stream time.
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Handles one message arriving from the left neighbour.
    pub fn handle_left(&mut self, msg: LeftToRight<R>, out: &mut HsjOutput<R, S>) {
        match msg {
            LeftToRight::ArrivalR(r) => self.on_arrival_r(r, out),
            LeftToRight::AckS(seq) => {
                self.counters.acks += 1;
                let _ = self.iws.acknowledge(seq);
            }
            LeftToRight::ExpiryS(seq) => {
                self.counters.expiries += 1;
                if self.ws.remove(seq).is_none() && !self.is_rightmost() {
                    out.to_right.push(LeftToRight::ExpiryS(seq));
                }
                self.flow_tuples(out);
            }
        }
    }

    /// Handles one message arriving from the right neighbour.
    pub fn handle_right(&mut self, msg: RightToLeft<S>, out: &mut HsjOutput<R, S>) {
        match msg {
            RightToLeft::ArrivalS(s) => self.on_arrival_s(s, out),
            RightToLeft::ExpeditionEndR(_) => {
                // The original algorithm has no expedition mechanism; the
                // message type exists only so both algorithms share the same
                // channel types.  It is ignored.
            }
            RightToLeft::ExpiryR(seq) => {
                self.counters.expiries += 1;
                if self.wr.remove(seq).is_none() && !self.is_leftmost() {
                    out.to_left.push(RightToLeft::ExpiryR(seq));
                }
                self.flow_tuples(out);
            }
        }
    }

    /// Batch fast path: drains a whole frame of left-to-right messages into
    /// one output buffer.  Semantically identical to looping over
    /// [`Self::handle_left`]; the original handshake join forwards tuples
    /// via its flow policy rather than per arrival, so the only per-frame
    /// saving is growing the forwarding buffer once.
    pub fn handle_left_batch(&mut self, msgs: &mut Vec<LeftToRight<R>>, out: &mut HsjOutput<R, S>) {
        if !self.is_rightmost() {
            out.to_right.reserve(msgs.len());
        }
        for msg in msgs.drain(..) {
            self.handle_left(msg, out);
        }
    }

    /// Batch fast path for right-to-left frames; see
    /// [`Self::handle_left_batch`].
    pub fn handle_right_batch(
        &mut self,
        msgs: &mut Vec<RightToLeft<S>>,
        out: &mut HsjOutput<R, S>,
    ) {
        if !self.is_leftmost() {
            out.to_left.reserve(msgs.len());
        }
        for msg in msgs.drain(..) {
            self.handle_right(msg, out);
        }
    }

    /// The window-concurrency check shared by arrivals and migrated
    /// imports: under age-based flow a pair only joins when both tuples
    /// are inside each other's window span (same boundary convention as
    /// the driver schedule: R events first on ties); capacity-based flow
    /// leaves eviction entirely to expiry messages.
    fn within_window(&self, r_ts: Timestamp, s_ts: Timestamp) -> bool {
        match self.flow {
            FlowPolicy::ByAge { window_r, window_s } => {
                s_ts.saturating_since(r_ts) < window_r && r_ts.saturating_since(s_ts) <= window_s
            }
            FlowPolicy::ByCapacity(_) => true,
        }
    }

    /// Recomputes the per-node segment capacity from a chain-total window
    /// population and the chain width — the flow model's `|W| / n` sizing
    /// — and records the totals for future renegotiations.  Only
    /// meaningful for capacity-based flow; age-based flow renegotiates
    /// implicitly through [`HsjNode::set_position`] (its thresholds are a
    /// function of `(id, nodes)`).
    pub fn renegotiate_capacity(
        &mut self,
        window_tuples_r: usize,
        window_tuples_s: usize,
        nodes: usize,
    ) {
        if matches!(self.flow, FlowPolicy::ByCapacity(_)) {
            self.chain_capacity = Some((window_tuples_r, window_tuples_s));
            self.flow = FlowPolicy::ByCapacity(SegmentCapacity::balanced(
                window_tuples_r,
                window_tuples_s,
                nodes,
            ));
        }
    }

    /// Renumbers the node after an elastic reconfiguration, renegotiating
    /// the capacity-based flow model for the new width.  Only valid while
    /// the pipeline is fenced (the position decides entry/exit behaviour
    /// and the age bands of the flow policy).
    pub fn set_position(&mut self, id: NodeId, nodes: usize) {
        assert!(nodes > 0, "pipeline must have at least one node");
        assert!(id < nodes, "node id {id} out of range for {nodes} nodes");
        self.id = id;
        self.nodes = nodes;
        if let Some((total_r, total_s)) = self.chain_capacity {
            self.renegotiate_capacity(total_r, total_s, nodes);
        }
    }

    /// Exports the node's entire settled window state for migration.  Only
    /// valid while the pipeline is fenced: every forwarded S tuple has
    /// been acknowledged (`IWS` empty), which is asserted.
    pub fn export_segment(&mut self) -> WindowSegment<R, S> {
        let len_r = self.wr.len();
        let len_s = self.ws.len();
        self.export_segment_range(0..len_r, 0..len_s)
    }

    /// Exports the R tuples at positions `r` and the S tuples at positions
    /// `s` of the seq-sorted windows (position 0 = oldest).  Same fencing
    /// contract as [`HsjNode::export_segment`].
    pub fn export_segment_range(
        &mut self,
        r: std::ops::Range<usize>,
        s: std::ops::Range<usize>,
    ) -> WindowSegment<R, S> {
        assert!(
            self.iws.is_empty(),
            "node {}: IWS must be empty at the elastic fence (unacknowledged \
             S tuples would be lost by the migration)",
            self.id
        );
        WindowSegment {
            wr: self.wr.drain_range(r),
            ws: self.ws.drain_range(s),
        }
    }

    /// Installs a migrated window segment, reproducing the meets the
    /// migration hop carries past each other (see the module docs): the
    /// still-unmet direction of the segment — R when it arrived from the
    /// left, S when it arrived from the right — is matched against the
    /// *pre-import* opposite window under the usual window-concurrency
    /// check; the other direction installs silently.  Only valid while the
    /// pipeline is fenced.
    pub fn import_segment(
        &mut self,
        segment: WindowSegment<R, S>,
        from: Direction,
        out: &mut HsjOutput<R, S>,
    ) {
        debug_assert!(
            self.iws.is_empty(),
            "segments only migrate while fenced, when IWS is empty"
        );
        let results_before = out.results.len();
        let mut comparisons = 0;
        match from {
            Direction::Left => {
                // R tuples moving rightward enter territory their monotone
                // path has not crossed: match like an arrival traversal.
                for r_tuple in &segment.wr {
                    comparisons += self.ws.scan_matches(
                        false,
                        |s| self.predicate.matches(&r_tuple.payload, s),
                        |s| {
                            if self.within_window(r_tuple.ts, s.ts) {
                                out.results
                                    .push(ResultTuple::new(r_tuple.clone(), s, self.id));
                            }
                        },
                    );
                }
            }
            Direction::Right => {
                // S tuples moving leftward are the mirror image.
                for s_tuple in &segment.ws {
                    comparisons += self.wr.scan_matches(
                        false,
                        |r| self.predicate.matches(r, &s_tuple.payload),
                        |r| {
                            if self.within_window(r.ts, s_tuple.ts) {
                                out.results
                                    .push(ResultTuple::new(r, s_tuple.clone(), self.id));
                            }
                        },
                    );
                }
            }
        }
        out.comparisons += comparisons;
        self.counters.comparisons += comparisons;
        self.counters.results += (out.results.len() - results_before) as u64;
        {
            // Rebuild the columnar form (attribute column, bitsets, index)
            // from the plain migrated rows; disjoint field borrows let the
            // predicate supply attributes while the windows mutate.
            let Self {
                wr, ws, predicate, ..
            } = self;
            wr.merge_sorted(segment.wr, |r| predicate.r_attr(r).unwrap_or(0));
            ws.merge_sorted(segment.ws, |s| predicate.s_attr(s).unwrap_or(0));
        }
        self.counters
            .observe_sizes(self.wr.len(), self.ws.len(), self.iws.len());
    }

    /// Installs a window segment **without probing** either direction.
    ///
    /// Cross-shard state movement (shard split/merge in the mesh) must not
    /// re-run the migration-hop matching that
    /// [`HsjNode::import_segment`] performs: the moved tuples already met
    /// their partners in the source chain (a split re-installs them at the
    /// *same* pipeline position, so the positional met-invariant carries
    /// over verbatim), and on a fragment-replicate merge the child's S rows
    /// are broadcast copies of the parent's — matching them again would
    /// duplicate results.  Only valid while the pipeline is fenced.
    pub fn install_segment_silent(&mut self, segment: WindowSegment<R, S>) {
        debug_assert!(
            self.iws.is_empty(),
            "segments only install while fenced, when IWS is empty"
        );
        let Self {
            wr, ws, predicate, ..
        } = self;
        wr.merge_sorted(segment.wr, |r| predicate.r_attr(r).unwrap_or(0));
        ws.merge_sorted(segment.ws, |s| predicate.s_attr(s).unwrap_or(0));
        self.counters
            .observe_sizes(self.wr.len(), self.ws.len(), self.iws.len());
    }

    /// Removes stored S tuples that are no longer window-concurrent with a
    /// probing **R** tuple carrying stream timestamp `now`.
    ///
    /// Expiry messages remain the primary eviction mechanism
    /// (Section 4.2.4), but because tuples *move* in the original handshake
    /// join, an expiry message and the tuple it refers to can cross between
    /// two neighbouring nodes and miss each other; this age check enforces
    /// the window semantics locally so such a crossing can never yield
    /// matches with logically expired tuples.  The check uses the probing
    /// tuple's own timestamp (not the node clock), because window
    /// concurrency is defined on stream time, independent of processing
    /// delays.  It only applies to age-based flow, where the node knows the
    /// window spans.
    ///
    /// Crucially, an R probe may only evict from the window it is about to
    /// scan (`WS`), never from its own side's window: probe timestamps are
    /// monotone *per direction* only.  Under coarse batching a
    /// right-to-left frame can lag a whole batch behind the left-to-right
    /// frame that advanced the node — if the R probe also evicted `WR`,
    /// a lagging S probe whose window still covers those R tuples would
    /// miss its matches (the PR 1 "exact only at batch 1" limitation).
    /// Evicting `WS` is safe because every future R probe at this node
    /// carries a timestamp `>= now`, so a tuple out of window for `now`
    /// stays out of window for all of them.
    fn self_expire_ws(&mut self, now: Timestamp) {
        if let FlowPolicy::ByAge { window_s, .. } = self.flow {
            // Boundary convention: the driver schedule orders same-instant
            // events with R-stream events first, so an S tuple whose window
            // elapses exactly when the R probe arrives still joins (>).
            while let Some((seq, ts)) = self.ws.peek_oldest() {
                if now.saturating_since(ts) > window_s {
                    self.ws.remove(seq);
                } else {
                    break;
                }
            }
        }
    }

    /// Removes stored R tuples that are no longer window-concurrent with a
    /// probing **S** tuple carrying stream timestamp `now`; the mirror of
    /// [`HsjNode::self_expire_ws`] with the opposite boundary convention
    /// (an R tuple whose window elapses exactly when the S probe arrives
    /// does NOT join, `>=`).
    fn self_expire_wr(&mut self, now: Timestamp) {
        if let FlowPolicy::ByAge { window_r, .. } = self.flow {
            while let Some((seq, ts)) = self.wr.peek_oldest() {
                if now.saturating_since(ts) >= window_r {
                    self.wr.remove(seq);
                } else {
                    break;
                }
            }
        }
    }

    /// An R tuple arrives (new at node 0, or pushed over from the left
    /// neighbour): compare against the local S segment, store it, then let
    /// the flow policy relieve the segment.
    fn on_arrival_r(&mut self, r: PipelineTuple<R>, out: &mut HsjOutput<R, S>) {
        self.counters.arrivals += 1;
        self.clock = self.clock.max(r.ts());
        self.self_expire_ws(r.ts());
        let within = match self.flow {
            FlowPolicy::ByAge { window_r, window_s } => Some((window_r, window_s)),
            FlowPolicy::ByCapacity(_) => None,
        };
        let check = |r_ts: Timestamp, s_ts: Timestamp| match within {
            Some((wr, ws)) => s_ts.saturating_since(r_ts) < wr && r_ts.saturating_since(s_ts) <= ws,
            None => true,
        };
        let pred = &self.predicate;
        let r_tuple = &r.tuple;
        let results = &mut out.results;
        let results_before = results.len();
        let node_id = self.id;
        let mut comparisons = if let Some(band) = pred.s_band(&r_tuple.payload) {
            // Branch-free fast path over the attribute column; the
            // window-concurrency check stays inside the match callback,
            // exactly as on the scalar path.
            self.ws.scan_band(
                band,
                false,
                pred.band_exact(),
                |s| pred.matches(&r_tuple.payload, s),
                |s| {
                    if check(r_tuple.ts, s.ts) {
                        results.push(ResultTuple::new(r_tuple.clone(), s, node_id));
                    }
                },
            )
        } else {
            self.ws.scan_matches(
                false,
                |s| pred.matches(&r_tuple.payload, s),
                |s| {
                    if check(r_tuple.ts, s.ts) {
                        results.push(ResultTuple::new(r_tuple.clone(), s, node_id));
                    }
                },
            )
        };
        comparisons += self.iws.scan_matches(
            |s| pred.matches(&r_tuple.payload, s),
            |s| {
                if check(r_tuple.ts, s.ts) {
                    results.push(ResultTuple::new(r_tuple.clone(), s.clone(), node_id));
                }
            },
        );
        out.comparisons += comparisons;
        self.counters.comparisons += comparisons;
        self.counters.results += (results.len() - results_before) as u64;

        let attr = self.predicate.r_attr(&r.tuple.payload).unwrap_or(0);
        self.wr.insert_with_attr(r.tuple, attr, false);
        self.counters.stored += 1;
        self.flow_tuples(out);
        self.counters
            .observe_sizes(self.wr.len(), self.ws.len(), self.iws.len());
    }

    /// An S tuple arrives (new at node n-1, or pushed over from the right
    /// neighbour); symmetric to [`HsjNode::on_arrival_r`] except for the
    /// acknowledgement mechanism, which only runs on the S side.
    fn on_arrival_s(&mut self, s: PipelineTuple<S>, out: &mut HsjOutput<R, S>) {
        self.counters.arrivals += 1;
        self.clock = self.clock.max(s.ts());
        self.self_expire_wr(s.ts());
        let within = match self.flow {
            FlowPolicy::ByAge { window_r, window_s } => Some((window_r, window_s)),
            FlowPolicy::ByCapacity(_) => None,
        };
        let check = |r_ts: Timestamp, s_ts: Timestamp| match within {
            Some((wr, ws)) => s_ts.saturating_since(r_ts) < wr && r_ts.saturating_since(s_ts) <= ws,
            None => true,
        };
        let pred = &self.predicate;
        let s_tuple = &s.tuple;
        let results = &mut out.results;
        let results_before = results.len();
        let node_id = self.id;
        let comparisons = if let Some(band) = pred.r_band(&s_tuple.payload) {
            self.wr.scan_band(
                band,
                false,
                pred.band_exact(),
                |r| pred.matches(r, &s_tuple.payload),
                |r| {
                    if check(r.ts, s_tuple.ts) {
                        results.push(ResultTuple::new(r, s_tuple.clone(), node_id));
                    }
                },
            )
        } else {
            self.wr.scan_matches(
                false,
                |r| pred.matches(r, &s_tuple.payload),
                |r| {
                    if check(r.ts, s_tuple.ts) {
                        results.push(ResultTuple::new(r, s_tuple.clone(), node_id));
                    }
                },
            )
        };
        out.comparisons += comparisons;
        self.counters.comparisons += comparisons;
        self.counters.results += (results.len() - results_before) as u64;

        // Acknowledge to the sender (the right neighbour) so it can release
        // the tuple from its IWS buffer.
        if !self.is_rightmost() {
            out.to_right.push(LeftToRight::AckS(s.tuple.seq));
        }

        let attr = self.predicate.s_attr(&s.tuple.payload).unwrap_or(0);
        self.ws.insert_with_attr(s.tuple, attr, false);
        self.counters.stored += 1;
        self.flow_tuples(out);
        self.counters
            .observe_sizes(self.wr.len(), self.ws.len(), self.iws.len());
    }

    /// Applies the flow policy: pushes tuples that no longer belong to this
    /// segment towards the opposite pipeline end.
    fn flow_tuples(&mut self, out: &mut HsjOutput<R, S>) {
        match self.flow {
            FlowPolicy::ByCapacity(cap) => {
                if !self.is_rightmost() {
                    while self.wr.len() > cap.r {
                        self.forward_oldest_r(out);
                    }
                }
                if !self.is_leftmost() {
                    while self.ws.len() > cap.s {
                        self.forward_oldest_s(out);
                    }
                }
            }
            FlowPolicy::ByAge { window_r, window_s } => {
                // A tuple of age `a` belongs at pipeline position `a / |W|`;
                // node k owns the age band [k/n, (k+1)/n).
                if !self.is_rightmost() {
                    let leave_after = TimeDelta::from_micros(
                        window_r.as_micros() * (self.id as u64 + 1) / self.nodes as u64,
                    );
                    while let Some((_, ts)) = self.wr.peek_oldest() {
                        if self.clock.saturating_since(ts) >= leave_after {
                            self.forward_oldest_r(out);
                        } else {
                            break;
                        }
                    }
                }
                if !self.is_leftmost() {
                    let leave_after = TimeDelta::from_micros(
                        window_s.as_micros() * (self.nodes - self.id) as u64 / self.nodes as u64,
                    );
                    while let Some((_, ts)) = self.ws.peek_oldest() {
                        if self.clock.saturating_since(ts) >= leave_after {
                            self.forward_oldest_s(out);
                        } else {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn forward_oldest_r(&mut self, out: &mut HsjOutput<R, S>) {
        let (oldest, _) = self.wr.pop_oldest().expect("caller checked non-empty");
        out.to_right.push(LeftToRight::ArrivalR(PipelineTuple {
            tuple: oldest,
            home: (self.id + 1).min(self.nodes - 1),
            stored: false,
        }));
        self.counters.forwards += 1;
    }

    fn forward_oldest_s(&mut self, out: &mut HsjOutput<R, S>) {
        let (oldest, _) = self.ws.pop_oldest().expect("caller checked non-empty");
        self.iws.insert(oldest.clone());
        out.to_left.push(RightToLeft::ArrivalS(PipelineTuple {
            tuple: oldest,
            home: self.id.saturating_sub(1),
            stored: false,
        }));
        self.counters.forwards += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::FnPredicate;
    use crate::tuple::{SeqNo, StreamTuple};

    fn equal(r: &u64, s: &u64) -> bool {
        r == s
    }

    type Node = HsjNode<u64, u64, FnPredicate<fn(&u64, &u64) -> bool>>;

    fn node(id: NodeId, n: usize, cap: usize) -> Node {
        HsjNode::with_capacity(
            id,
            n,
            SegmentCapacity { r: cap, s: cap },
            FnPredicate(equal as fn(&u64, &u64) -> bool),
        )
    }

    fn age_node(id: NodeId, n: usize, window_secs: u64) -> Node {
        HsjNode::with_age_flow(
            id,
            n,
            TimeDelta::from_secs(window_secs),
            TimeDelta::from_secs(window_secs),
            FnPredicate(equal as fn(&u64, &u64) -> bool),
        )
    }

    fn rt_at(seq: u64, val: u64, ts: Timestamp) -> PipelineTuple<u64> {
        PipelineTuple::fresh(StreamTuple::new(SeqNo(seq), ts, val), 0)
    }

    fn rt(seq: u64, val: u64) -> PipelineTuple<u64> {
        rt_at(seq, val, Timestamp::from_millis(seq))
    }

    fn st_at(seq: u64, val: u64, ts: Timestamp) -> PipelineTuple<u64> {
        PipelineTuple::fresh(StreamTuple::new(SeqNo(seq), ts, val), 0)
    }

    fn st(seq: u64, val: u64) -> PipelineTuple<u64> {
        st_at(seq, val, Timestamp::from_millis(seq))
    }

    #[test]
    fn balanced_capacity_covers_window() {
        let cap = SegmentCapacity::balanced(10, 7, 4);
        assert_eq!(cap.r, 3);
        assert_eq!(cap.s, 2);
        assert!(cap.r * 4 >= 10);
        assert!(cap.s * 4 >= 7);
        let tiny = SegmentCapacity::balanced(0, 0, 3);
        assert_eq!((tiny.r, tiny.s), (1, 1));
    }

    #[test]
    fn arrival_is_stored_and_matched_against_opposite_segment() {
        let mut n = node(0, 2, 8);
        let mut out = HsjOutput::new();
        n.handle_right(RightToLeft::ArrivalS(st(0, 5)), &mut out);
        out.clear();
        n.handle_left(LeftToRight::ArrivalR(rt(0, 5)), &mut out);
        assert_eq!(out.results.len(), 1);
        assert_eq!(n.segment_sizes(), (1, 1, 0));
    }

    #[test]
    fn capacity_overflow_pushes_oldest_tuple_right() {
        let mut n = node(0, 3, 2);
        let mut out = HsjOutput::new();
        for i in 0..3 {
            n.handle_left(LeftToRight::ArrivalR(rt(i, i)), &mut out);
        }
        assert_eq!(n.segment_sizes().0, 2);
        let forwarded: Vec<_> = out
            .to_right
            .iter()
            .filter_map(|m| match m {
                LeftToRight::ArrivalR(p) => Some(p.tuple.seq),
                _ => None,
            })
            .collect();
        assert_eq!(forwarded, vec![SeqNo(0)]);
    }

    #[test]
    fn age_flow_moves_tuples_proportionally_to_age() {
        // 2-node pipeline, 10-second windows: a tuple should leave node 0
        // once it is older than 5 seconds.
        let mut n = age_node(0, 2, 10);
        let mut out = HsjOutput::new();
        n.handle_left(
            LeftToRight::ArrivalR(rt_at(0, 1, Timestamp::from_secs(0))),
            &mut out,
        );
        assert_eq!(n.segment_sizes().0, 1);
        assert!(out.to_right.is_empty());
        // A newer arrival 3 seconds later does not push it yet...
        n.handle_left(
            LeftToRight::ArrivalR(rt_at(1, 2, Timestamp::from_secs(3))),
            &mut out,
        );
        assert!(out.to_right.is_empty());
        // ...but one at t=6 does (age 6 >= 5).
        n.handle_left(
            LeftToRight::ArrivalR(rt_at(2, 3, Timestamp::from_secs(6))),
            &mut out,
        );
        let forwarded: Vec<_> = out
            .to_right
            .iter()
            .filter_map(|m| match m {
                LeftToRight::ArrivalR(p) => Some(p.tuple.seq),
                _ => None,
            })
            .collect();
        assert_eq!(forwarded, vec![SeqNo(0)]);
        assert_eq!(n.segment_sizes().0, 2);
    }

    #[test]
    fn age_flow_reacts_to_clock_advances_from_the_substrate() {
        let mut n = age_node(0, 2, 10);
        let mut out = HsjOutput::new();
        n.handle_left(
            LeftToRight::ArrivalR(rt_at(0, 1, Timestamp::from_secs(0))),
            &mut out,
        );
        // The substrate advances the clock past the threshold; the next
        // handled message (even an unrelated expiry) triggers the flow.
        n.advance_clock(Timestamp::from_secs(7));
        assert_eq!(n.clock(), Timestamp::from_secs(7));
        n.handle_left(LeftToRight::ExpiryS(SeqNo(99)), &mut out);
        assert!(out
            .to_right
            .iter()
            .any(|m| matches!(m, LeftToRight::ArrivalR(p) if p.tuple.seq == SeqNo(0))));
    }

    #[test]
    fn rightmost_node_never_forwards_r() {
        let mut n = node(2, 3, 1);
        let mut out = HsjOutput::new();
        for i in 0..5 {
            n.handle_left(LeftToRight::ArrivalR(rt(i, i)), &mut out);
        }
        assert!(out
            .to_right
            .iter()
            .all(|m| !matches!(m, LeftToRight::ArrivalR(_))));
        assert_eq!(n.segment_sizes().0, 5, "tuples only leave via expiry");
    }

    #[test]
    fn s_overflow_uses_ack_buffer() {
        let mut n = node(1, 3, 1);
        let mut out = HsjOutput::new();
        n.handle_right(RightToLeft::ArrivalS(st(0, 10)), &mut out);
        n.handle_right(RightToLeft::ArrivalS(st(1, 11)), &mut out);
        // Oldest S tuple was pushed left and is awaiting acknowledgement.
        assert_eq!(n.segment_sizes(), (0, 1, 1));
        out.clear();
        // An R arrival still sees the in-flight tuple via the IWS buffer.
        n.handle_left(LeftToRight::ArrivalR(rt(0, 10)), &mut out);
        assert_eq!(out.results.len(), 1);
        out.clear();
        // After the acknowledgement the buffer is released.
        n.handle_left(LeftToRight::AckS(SeqNo(0)), &mut out);
        assert_eq!(n.segment_sizes().2, 0);
    }

    #[test]
    fn expiry_consumes_or_forwards() {
        let mut n = node(1, 3, 4);
        let mut out = HsjOutput::new();
        n.handle_left(LeftToRight::ArrivalR(rt(0, 1)), &mut out);
        out.clear();
        n.handle_right(RightToLeft::ExpiryR(SeqNo(0)), &mut out);
        assert_eq!(n.segment_sizes().0, 0);
        assert!(out.to_left.is_empty());
        n.handle_right(RightToLeft::ExpiryR(SeqNo(42)), &mut out);
        assert_eq!(out.to_left, vec![RightToLeft::ExpiryR(SeqNo(42))]);
    }

    #[test]
    fn expedition_end_is_ignored_by_hsj() {
        let mut n = node(1, 3, 4);
        let mut out = HsjOutput::new();
        n.handle_right(RightToLeft::ExpeditionEndR(SeqNo(1)), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn renegotiate_capacity_tracks_the_flow_model() {
        let mut n = node(0, 4, 8); // chain total 32 per stream
        assert_eq!(
            n.flow_policy(),
            FlowPolicy::ByCapacity(SegmentCapacity { r: 8, s: 8 })
        );
        // Renumbering to a 2-node chain doubles the per-node share.
        n.set_position(0, 2);
        assert_eq!(
            n.flow_policy(),
            FlowPolicy::ByCapacity(SegmentCapacity { r: 16, s: 16 })
        );
        // Renumbering to 8 nodes halves it.
        n.set_position(3, 8);
        assert_eq!(
            n.flow_policy(),
            FlowPolicy::ByCapacity(SegmentCapacity { r: 4, s: 4 })
        );
        assert_eq!(n.id(), 3);
        // An explicit renegotiation overrides the recorded totals.
        n.renegotiate_capacity(80, 40, 8);
        assert_eq!(
            n.flow_policy(),
            FlowPolicy::ByCapacity(SegmentCapacity { r: 10, s: 5 })
        );
        // Age-based flow carries no stored capacity; set_position only
        // renumbers (the age bands are functions of (id, nodes)).
        let mut aged = age_node(0, 2, 10);
        aged.set_position(1, 3);
        assert!(matches!(aged.flow_policy(), FlowPolicy::ByAge { .. }));
        assert_eq!(aged.id(), 1);
    }

    #[test]
    fn export_and_range_export_shed_settled_state() {
        let mut n = node(1, 3, 8);
        let mut out = HsjOutput::new();
        for i in 0..4 {
            n.handle_left(LeftToRight::ArrivalR(rt(i, i)), &mut out);
        }
        n.handle_right(RightToLeft::ArrivalS(st(0, 99)), &mut out);
        // The ArrivalS was forwarded? capacity 8, no overflow: stored.
        assert_eq!(n.segment_sizes(), (4, 1, 0));
        let slice = n.export_segment_range(0..2, 0..0);
        assert_eq!(slice.wr.len(), 2);
        assert_eq!(slice.wr[0].seq, SeqNo(0));
        assert_eq!(n.segment_sizes(), (2, 1, 0));
        let rest = n.export_segment();
        assert_eq!(rest.wr.len(), 2);
        assert_eq!(rest.ws.len(), 1);
        assert_eq!(n.segment_sizes(), (0, 0, 0));
    }

    /// A segment arriving from the left matches its R tuples (unmet by
    /// the monotone-crossing argument) against the resident S window; a
    /// segment arriving from the right matches its S tuples against the
    /// resident R window.  Co-migrating tuples are never re-matched.
    #[test]
    fn import_matches_the_unmet_direction_only() {
        let mut receiver = node(1, 3, 8);
        let mut out = HsjOutput::new();
        // Resident state: one S tuple (value 5), one R tuple (value 7).
        receiver.handle_right(RightToLeft::ArrivalS(st(0, 5)), &mut out);
        receiver.handle_left(LeftToRight::ArrivalR(rt(0, 7)), &mut out);
        out.clear();

        // From the left: migrated R (value 5) must match the resident S;
        // the migrated S (value 7) must NOT match the resident R (their
        // paths have already crossed), and must not match the migrated R
        // either (they travelled together).
        let segment = WindowSegment {
            wr: vec![StreamTuple::new(
                SeqNo(10),
                Timestamp::from_millis(10),
                5u64,
            )],
            ws: vec![StreamTuple::new(
                SeqNo(10),
                Timestamp::from_millis(10),
                7u64,
            )],
        };
        receiver.import_segment(segment, Direction::Left, &mut out);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].key(), (SeqNo(10), SeqNo(0)));
        assert_eq!(receiver.segment_sizes(), (2, 2, 0));
        out.clear();

        // From the right: migrated S (value 7) matches the resident R;
        // migrated R installs silently.
        let segment = WindowSegment {
            wr: vec![StreamTuple::new(
                SeqNo(11),
                Timestamp::from_millis(11),
                5u64,
            )],
            ws: vec![StreamTuple::new(
                SeqNo(11),
                Timestamp::from_millis(11),
                7u64,
            )],
        };
        receiver.import_segment(segment, Direction::Right, &mut out);
        // Resident R holds values {7 (seq 0), 5 (seq 10)}: the migrated
        // S (value 7) matches seq 0 only.
        let keys: Vec<_> = out.results.iter().map(ResultTuple::key).collect();
        assert_eq!(keys, vec![(SeqNo(0), SeqNo(11))]);
        assert_eq!(receiver.segment_sizes(), (3, 3, 0));
    }

    /// Migrated imports respect the window-concurrency check under
    /// age-based flow: a pair whose spans do not overlap must not join.
    #[test]
    fn import_applies_the_window_check_under_age_flow() {
        let mut n = age_node(0, 2, 10);
        let mut out = HsjOutput::new();
        n.handle_right(
            RightToLeft::ArrivalS(st_at(0, 5, Timestamp::from_secs(0))),
            &mut out,
        );
        out.clear();
        // A migrated R with the same value but 11 s later: outside the
        // 10 s window, no result.
        let segment = WindowSegment {
            wr: vec![StreamTuple::new(SeqNo(9), Timestamp::from_secs(11), 5u64)],
            ws: Vec::new(),
        };
        n.import_segment(segment, Direction::Left, &mut out);
        assert!(out.results.is_empty());
        // A concurrent one does join.
        let segment = WindowSegment {
            wr: vec![StreamTuple::new(SeqNo(10), Timestamp::from_secs(3), 5u64)],
            ws: Vec::new(),
        };
        n.import_segment(segment, Direction::Left, &mut out);
        assert_eq!(out.results.len(), 1);
    }

    /// Self-expiry is one-sided: a probing tuple may evict only the window
    /// it is about to scan, because probe timestamps are monotone per
    /// direction only.  Under coarse batching an S frame can lag a whole
    /// batch behind the R frame, so an R probe that also evicted `WR`
    /// would destroy tuples the lagging S probes still match — the exact
    /// cause of the historical batch > 1 oracle misses.
    #[test]
    fn self_expiry_never_evicts_the_probes_own_side() {
        let mut n = age_node(0, 1, 10);
        let mut out = HsjOutput::new();
        // R tuple at t=0 is stored.
        n.handle_left(
            LeftToRight::ArrivalR(rt_at(0, 5, Timestamp::from_secs(0))),
            &mut out,
        );
        out.clear();
        // A much later R probe (t=25, far outside the 10 s window of the
        // stored R tuple) arrives first because its frame ran ahead.
        n.handle_left(
            LeftToRight::ArrivalR(rt_at(1, 99, Timestamp::from_secs(25))),
            &mut out,
        );
        out.clear();
        // The lagging S probe at t=9 is still window-concurrent with the
        // R tuple from t=0 and must find it.
        n.handle_right(
            RightToLeft::ArrivalS(st_at(0, 5, Timestamp::from_secs(9))),
            &mut out,
        );
        assert_eq!(
            out.results.len(),
            1,
            "a lagging S probe must still match R tuples inside its window"
        );
        assert_eq!(out.results[0].key(), (SeqNo(0), SeqNo(0)));

        // Mirror direction, fresh node: the S frame ran ahead (probe at
        // t=25), the R frame lags (probe at t=9); the stored S tuple from
        // t=0 must survive the future S probe and match the lagging R.
        let mut n = age_node(0, 1, 10);
        let mut out = HsjOutput::new();
        n.handle_right(
            RightToLeft::ArrivalS(st_at(0, 5, Timestamp::from_secs(0))),
            &mut out,
        );
        n.handle_right(
            RightToLeft::ArrivalS(st_at(1, 77, Timestamp::from_secs(25))),
            &mut out,
        );
        out.clear();
        n.handle_left(
            LeftToRight::ArrivalR(rt_at(0, 5, Timestamp::from_secs(9))),
            &mut out,
        );
        assert_eq!(
            out.results.len(),
            1,
            "a lagging R probe must still match S tuples inside its window"
        );
        assert_eq!(out.results[0].key(), (SeqNo(0), SeqNo(0)));
    }

    #[test]
    #[should_panic(expected = "IWS must be empty")]
    fn export_refuses_unacknowledged_state() {
        let mut n = node(1, 3, 1);
        let mut out = HsjOutput::new();
        // Overflowing the S segment forwards the oldest left and parks it
        // in IWS awaiting the acknowledgement.
        n.handle_right(RightToLeft::ArrivalS(st(0, 10)), &mut out);
        n.handle_right(RightToLeft::ArrivalS(st(1, 11)), &mut out);
        assert_eq!(n.segment_sizes().2, 1);
        let _ = n.export_segment();
    }

    #[test]
    fn ack_is_sent_for_received_s_tuples() {
        let mut n = node(0, 3, 4);
        let mut out = HsjOutput::new();
        n.handle_right(RightToLeft::ArrivalS(st(7, 1)), &mut out);
        assert!(out.to_right.contains(&LeftToRight::AckS(SeqNo(7))));
        // The rightmost node receives tuples from the driver and sends no ack.
        let mut n = node(2, 3, 4);
        out.clear();
        n.handle_right(RightToLeft::ArrivalS(st(8, 1)), &mut out);
        assert!(out.to_right.is_empty());
    }
}
