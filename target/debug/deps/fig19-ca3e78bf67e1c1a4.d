/root/repo/target/debug/deps/fig19-ca3e78bf67e1c1a4.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/libfig19-ca3e78bf67e1c1a4.rmeta: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
