/root/repo/target/debug/deps/fig05-c4fa0e658bda8410.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/fig05-c4fa0e658bda8410: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
