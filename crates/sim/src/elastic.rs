//! Discrete-event simulation of elastic node-chain scaling.
//!
//! Mirrors the threaded runtime's reconfiguration protocol
//! (`llhj-runtime::elastic`) in virtual time so the three substrates —
//! analytic model, simulator, threaded runtime — can be compared at every
//! scale step:
//!
//! 1. **Fence** — the injection of schedule events pauses and the event
//!    heap drains completely, which is exactly the runtime's "no frame in
//!    flight anywhere" condition;
//! 2. **Handoff** (shrink) — retiring nodes merge their window segments
//!    leftwards along the neighbour chain; every hop charges the receiving
//!    node one frame reception ([`CostModel::per_frame_ns`]) plus one
//!    per-message cost per migrated tuple, and pays the core-to-core hop
//!    latency, and every ack charges one frame back — the same
//!    serialisation the runtime's segment/ack protocol exhibits;
//! 3. **Rewire** — nodes renumber and the chain width changes; surviving
//!    nodes resume at the virtual instant the fence ends.
//!
//! Because injections later in the schedule carry their own (stream)
//! timestamps, a long fence simply shows up as a busy-time bubble: the
//! nodes' `busy_until` horizon moves past the fence end and the following
//! frames queue behind it, exactly like the runtime's driver catching up
//! after a reconfiguration pause.

use crate::config::{Algorithm, SimConfig};
use crate::cost::SimNanos;
use crate::report::SimReport;
use llhj_core::driver::{DriverSchedule, Injector, StreamEvent};
use llhj_core::homing::HomePolicy;
use llhj_core::message::{LeftToRight, MessageBatch, NodeOutput, RightToLeft, WindowSegment};
use llhj_core::node::PipelineNode;
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::{HighWaterMarks, OutputItem, Punctuation};
use llhj_core::result::TimedResult;
use llhj_core::stats::{LatencySeries, LatencySummary};
use llhj_core::time::Timestamp;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

fn ts_to_ns(ts: Timestamp) -> SimNanos {
    ts.as_micros().saturating_mul(1_000)
}

fn ns_to_ts(ns: SimNanos) -> Timestamp {
    Timestamp::from_micros(ns / 1_000)
}

/// One reconfiguration in the elastic simulation's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResizeEvent {
    /// Virtual time at which the fence completed the drain.
    pub at_ns: SimNanos,
    /// Chain width before the resize.
    pub from_nodes: usize,
    /// Chain width after.
    pub to_nodes: usize,
    /// Window tuples migrated between neighbours (0 for growth).
    pub migrated_tuples: usize,
    /// Virtual duration of the handoff (fence end − drain end).
    pub fence_ns: SimNanos,
}

/// Outcome of one elastic simulation: the usual [`SimReport`] plus the
/// resize log.  `report.nodes` is the *final* width and `report.counters`
/// covers the nodes alive at the end; `report.busy_ns` is indexed by node
/// id over the widest chain the run reached, so work done by nodes that
/// later retired is still accounted.
#[derive(Debug)]
pub struct ElasticSimReport<R, S> {
    /// The standard simulation report.
    pub report: SimReport<R, S>,
    /// Every reconfiguration, in order.
    pub resize_log: Vec<SimResizeEvent>,
}

impl<R, S> ElasticSimReport<R, S> {
    /// Sorted result keys, for oracle comparison.
    pub fn result_keys(&self) -> Vec<(llhj_core::tuple::SeqNo, llhj_core::tuple::SeqNo)> {
        self.report.result_keys()
    }

    /// Output rate over virtual time: the number of results detected in
    /// each `bucket_ns` of virtual time, as results/second.  The
    /// `bench_elastic` trace uses this to show throughput rising after a
    /// mid-burst grow.
    pub fn throughput_trace(&self, bucket_ns: SimNanos) -> Vec<(SimNanos, f64)> {
        assert!(bucket_ns > 0, "bucket must be positive");
        let mut buckets: Vec<u64> = Vec::new();
        for timed in &self.report.results {
            let idx = (ts_to_ns(timed.detected_at) / bucket_ns) as usize;
            if buckets.len() <= idx {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] += 1;
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(i, count)| {
                (
                    i as SimNanos * bucket_ns,
                    count as f64 * 1e9 / bucket_ns as f64,
                )
            })
            .collect()
    }
}

struct HeapEntry<R, S> {
    at: SimNanos,
    seq: u64,
    node: usize,
    frame: MessageBatch<R, S>,
}

impl<R, S> PartialEq for HeapEntry<R, S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<R, S> Eq for HeapEntry<R, S> {}
impl<R, S> PartialOrd for HeapEntry<R, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<R, S> Ord for HeapEntry<R, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct ElasticSim<R, S> {
    config: SimConfig,
    width: usize,
    nodes: Vec<Box<dyn PipelineNode<R, S>>>,
    heap: BinaryHeap<HeapEntry<R, S>>,
    event_seq: u64,
    busy_until: Vec<SimNanos>,
    busy_ns: Vec<SimNanos>,
    hwm: Arc<HighWaterMarks>,
    results: Vec<TimedResult<R, S>>,
    pending: Vec<TimedResult<R, S>>,
    output: Vec<OutputItem<TimedResult<R, S>>>,
    latency: LatencySummary,
    series: LatencySeries,
    punctuation_count: u64,
    next_collect_ns: SimNanos,
    collect_interval_ns: SimNanos,
    last_injection_ns: SimNanos,
    makespan_ns: SimNanos,
    frames_delivered: u64,
    messages_delivered: u64,
    resize_log: Vec<SimResizeEvent>,
}

impl<R, S> ElasticSim<R, S>
where
    R: Clone + Send,
    S: Clone + Send,
{
    fn push_frame(&mut self, at: SimNanos, node: usize, frame: MessageBatch<R, S>) {
        self.heap.push(HeapEntry {
            at,
            seq: self.event_seq,
            node,
            frame,
        });
        self.event_seq += 1;
    }

    /// Drains the event heap completely: the simulated fence.
    fn drain(&mut self) {
        let hop = self.config.cost.hop_ns();
        let mut out: NodeOutput<R, S, llhj_core::result::ResultTuple<R, S>> = NodeOutput::new();
        while let Some(entry) = self.heap.pop() {
            while self.config.punctuate && self.next_collect_ns <= entry.at {
                self.collect();
                self.next_collect_ns += self.collect_interval_ns;
            }

            let node_idx = entry.node;
            let rightmost = self.width - 1;
            let frame_len = entry.frame.len() as u64;
            self.frames_delivered += 1;
            self.messages_delivered += frame_len;
            let start = entry.at.max(self.busy_until[node_idx]);
            self.nodes[node_idx].observe_time(ns_to_ts(entry.at));

            out.clear();
            match entry.frame {
                MessageBatch::Left(msgs) => {
                    let observed = if node_idx == rightmost {
                        msgs.iter().rev().find_map(|m| match m {
                            LeftToRight::ArrivalR(r) => Some(r.ts()),
                            _ => None,
                        })
                    } else {
                        None
                    };
                    self.nodes[node_idx].handle_left_batch(msgs, &mut out);
                    if let Some(ts) = observed {
                        self.hwm.observe_r(ts);
                    }
                }
                MessageBatch::Right(msgs) => {
                    let observed = if node_idx == 0 {
                        msgs.iter().rev().find_map(|m| match m {
                            RightToLeft::ArrivalS(s) => Some(s.ts()),
                            _ => None,
                        })
                    } else {
                        None
                    };
                    self.nodes[node_idx].handle_right_batch(msgs, &mut out);
                    if let Some(ts) = observed {
                        self.hwm.observe_s(ts);
                    }
                }
                MessageBatch::Handoff(_) => {
                    unreachable!("elastic sim migrates state outside the heap")
                }
            }

            let punctuated_node = self.config.punctuate && (node_idx == 0 || node_idx == rightmost);
            let service = self.config.cost.frame_service_ns(
                frame_len,
                out.comparisons,
                out.results.len() as u64,
                punctuated_node,
            );
            let finish = start + service;
            self.busy_until[node_idx] = finish;
            self.busy_ns[node_idx] += service;
            self.makespan_ns = self.makespan_ns.max(finish);

            if !out.to_right.is_empty() {
                if node_idx + 1 < self.width {
                    let frame = MessageBatch::Left(std::mem::take(&mut out.to_right));
                    self.push_frame(finish + hop, node_idx + 1, frame);
                } else {
                    out.to_right.clear();
                }
            }
            if !out.to_left.is_empty() {
                if node_idx > 0 {
                    let frame = MessageBatch::Right(std::mem::take(&mut out.to_left));
                    self.push_frame(finish + hop, node_idx - 1, frame);
                } else {
                    out.to_left.clear();
                }
            }

            let detected_at = ns_to_ts(finish);
            for result in out.results.drain(..) {
                let timed = TimedResult::new(result, detected_at);
                self.latency.record(timed.latency());
                self.series.record(detected_at, timed.latency());
                if self.config.punctuate {
                    self.pending.push(timed.clone());
                }
                self.results.push(timed);
            }
        }
    }

    fn collect(&mut self) {
        let safe = self.hwm.safe_punctuation();
        for timed in self.pending.drain(..) {
            self.output.push(OutputItem::Result(timed));
        }
        self.output
            .push(OutputItem::Punctuation(Punctuation { ts: safe }));
        self.punctuation_count += 1;
    }

    /// Runs the fenced reconfiguration to `target` nodes, charging the
    /// handoff the same way the runtime's protocol serialises it.
    fn resize(
        &mut self,
        target: usize,
        factory: &dyn Fn(usize, usize) -> Box<dyn PipelineNode<R, S>>,
    ) {
        assert!(target > 0, "pipeline needs at least one node");
        let current = self.width;
        if target == current {
            return;
        }
        self.drain();
        let fence_start = self.makespan_ns;
        let mut fence_end = fence_start;
        let hop = self.config.cost.hop_ns();
        let mut migrated_total = 0usize;

        if target < current {
            // The neighbour chain resolves serially, rightmost first: each
            // retiree merges what its right neighbour handed down, then
            // hands the union left; each hop is one segment frame (frame
            // reception + one message per tuple, charged to the receiver)
            // followed by an ack frame back.
            let mut carried: WindowSegment<R, S> = WindowSegment::empty();
            for k in (target - 1..current).rev() {
                if k + 1 < current {
                    // Node k receives the segment handed down by node k+1.
                    let tuples = carried.len();
                    migrated_total = migrated_total.max(tuples);
                    let service = self
                        .config
                        .cost
                        .frame_service_ns(tuples as u64, 0, 0, false);
                    fence_end += hop + service;
                    self.busy_ns[k] += service;
                    self.frames_delivered += 1;
                    self.messages_delivered += tuples as u64;
                    self.nodes[k].import_segment(std::mem::take(&mut carried));
                    // Ack back to node k+1: one frame, one hop.
                    let ack = self.config.cost.frame_service_ns(1, 0, 0, false);
                    fence_end += hop + ack;
                    if k + 1 < self.busy_ns.len() {
                        self.busy_ns[k + 1] += ack;
                    }
                }
                if k >= target {
                    carried = self.nodes[k].export_segment();
                }
            }
            self.nodes.truncate(target);
        } else {
            for k in current..target {
                self.nodes.push(factory(k, target));
                if self.busy_until.len() <= k {
                    self.busy_until.push(fence_end);
                    self.busy_ns.push(0);
                }
            }
        }

        for (k, node) in self.nodes.iter_mut().enumerate() {
            node.set_position(k, target);
        }
        self.width = target;
        for k in 0..target {
            self.busy_until[k] = self.busy_until[k].max(fence_end);
        }
        self.makespan_ns = self.makespan_ns.max(fence_end);
        self.resize_log.push(SimResizeEvent {
            at_ns: fence_start,
            from_nodes: current,
            to_nodes: target,
            migrated_tuples: migrated_total,
            fence_ns: fence_end - fence_start,
        });
    }
}

/// Runs an elastic simulation: replays `schedule` through a pipeline that
/// starts at `config.nodes` nodes and resizes at the given plan steps.
///
/// `plan` is a list of `(after_events, target_nodes)` pairs: after that
/// many schedule events have been injected, the pipeline is fenced,
/// migrated and resized — the virtual-time mirror of
/// `llhj-runtime`'s `run_elastic_pipeline`.  Only the LLHJ algorithms
/// support migration.
pub fn run_elastic_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
    plan: &[(usize, usize)],
) -> ElasticSimReport<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    assert!(config.nodes > 0, "pipeline needs at least one node");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(
        matches!(config.algorithm, Algorithm::Llhj | Algorithm::LlhjIndexed),
        "elastic simulation requires nodes that support state migration \
         ({:?} does not)",
        config.algorithm
    );

    let factory = {
        let config = config.clone();
        let predicate = predicate.clone();
        move |k: usize, n: usize| -> Box<dyn PipelineNode<R, S>> {
            match config.algorithm {
                Algorithm::Llhj => {
                    Box::new(llhj_core::node_llhj::LlhjNode::new(k, n, predicate.clone()))
                }
                Algorithm::LlhjIndexed => Box::new(llhj_core::node_llhj::LlhjNode::with_index(
                    k,
                    n,
                    predicate.clone(),
                )),
                Algorithm::Hsj => unreachable!("rejected above"),
            }
        }
    };

    let width = config.nodes;
    let mut sim = ElasticSim {
        width,
        nodes: (0..width).map(|k| factory(k, width)).collect(),
        heap: BinaryHeap::new(),
        event_seq: 0,
        busy_until: vec![0; width],
        busy_ns: vec![0; width],
        hwm: HighWaterMarks::new(),
        results: Vec::new(),
        pending: Vec::new(),
        output: Vec::new(),
        latency: LatencySummary::new(),
        series: LatencySeries::new(config.latency_bucket),
        punctuation_count: 0,
        collect_interval_ns: (config.collect_interval.as_micros().max(1)) * 1_000,
        next_collect_ns: (config.collect_interval.as_micros().max(1)) * 1_000,
        last_injection_ns: 0,
        makespan_ns: 0,
        frames_delivered: 0,
        messages_delivered: 0,
        resize_log: Vec::new(),
        config: config.clone(),
    };

    let mut injector = Injector::new(predicate.clone(), policy.clone(), width);
    let mut plan: Vec<(usize, usize)> = plan.to_vec();
    plan.sort_by_key(|(after, _)| *after);
    let mut plan = plan.into_iter().peekable();

    let mut left_buf: Vec<LeftToRight<R>> = Vec::new();
    let mut right_buf: Vec<RightToLeft<S>> = Vec::new();
    let mut left_arrivals = 0usize;
    let mut right_arrivals = 0usize;
    let mut seen_r = 0usize;
    let mut seen_s = 0usize;
    let mut last_at = Timestamp::ZERO;

    macro_rules! flush_left {
        ($at_ns:expr) => {
            if !left_buf.is_empty() {
                let frame = MessageBatch::Left(std::mem::take(&mut left_buf));
                sim.push_frame($at_ns, 0, frame);
            }
            sim.last_injection_ns = sim.last_injection_ns.max($at_ns);
        };
    }
    macro_rules! flush_right {
        ($at_ns:expr) => {
            if !right_buf.is_empty() {
                let frame = MessageBatch::Right(std::mem::take(&mut right_buf));
                let rightmost = sim.width - 1;
                sim.push_frame($at_ns, rightmost, frame);
            }
            sim.last_injection_ns = sim.last_injection_ns.max($at_ns);
        };
    }

    for (idx, event) in schedule.events().iter().enumerate() {
        while let Some(&(after, target)) = plan.peek() {
            if after > idx {
                break;
            }
            plan.next();
            // Entry frames assembled for the old chain must enter it before
            // the fence: their homes were assigned under the old width.
            let at_ns = ts_to_ns(last_at);
            flush_left!(at_ns);
            flush_right!(at_ns);
            left_arrivals = 0;
            right_arrivals = 0;
            sim.resize(target, &factory);
            injector = Injector::new(predicate.clone(), policy.clone(), target);
        }
        last_at = event.at;
        match &event.event {
            StreamEvent::ArrivalR(r) => {
                left_buf.push(injector.inject_r(r.clone()));
                left_arrivals += 1;
                seen_r += 1;
                if left_arrivals >= config.batch_size || seen_r == schedule.r_count() {
                    flush_left!(ts_to_ns(event.at));
                    left_arrivals = 0;
                }
            }
            StreamEvent::ExpireS(seq) => left_buf.push(LeftToRight::ExpiryS(*seq)),
            StreamEvent::ArrivalS(s) => {
                right_buf.push(injector.inject_s(s.clone()));
                right_arrivals += 1;
                seen_s += 1;
                if right_arrivals >= config.batch_size || seen_s == schedule.s_count() {
                    flush_right!(ts_to_ns(event.at));
                    right_arrivals = 0;
                }
            }
            StreamEvent::ExpireR(seq) => right_buf.push(RightToLeft::ExpiryR(*seq)),
        }
    }
    let final_ns = ts_to_ns(last_at);
    flush_left!(final_ns);
    flush_right!(final_ns);
    sim.drain();
    // Trailing plan steps (a resize on the very last event) still run.
    let remaining: Vec<(usize, usize)> = plan.collect();
    for (_, target) in remaining {
        sim.resize(target, &factory);
    }
    if config.punctuate {
        sim.collect();
    }

    let nodes_final = sim.width;
    ElasticSimReport {
        report: SimReport {
            algorithm: config.algorithm,
            nodes: nodes_final,
            results: sim.results,
            output: sim.output,
            latency: sim.latency,
            latency_series: sim.series.finish(),
            counters: sim.nodes.iter().map(|n| n.node_counters()).collect(),
            busy_ns: sim.busy_ns,
            last_injection_ns: sim.last_injection_ns,
            makespan_ns: sim.makespan_ns,
            punctuation_count: sim.punctuation_count,
            arrivals_per_stream: (schedule.r_count(), schedule.s_count()),
            frames_delivered: sim.frames_delivered,
            messages_delivered: sim.messages_delivered,
        },
        resize_log: sim.resize_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhj_baselines::run_kang;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::FnPredicate;
    use llhj_core::window::WindowSpec;

    fn eq_pred() -> FnPredicate<fn(&u32, &u32) -> bool> {
        fn eq(r: &u32, s: &u32) -> bool {
            r == s
        }
        FnPredicate(eq as fn(&u32, &u32) -> bool)
    }

    fn small_schedule() -> DriverSchedule<u32, u32> {
        let r: Vec<_> = (0..200u64)
            .map(|i| (Timestamp::from_millis(i), (i % 20) as u32))
            .collect();
        let s: Vec<_> = (0..200u64)
            .map(|i| (Timestamp::from_millis(i), (i % 25) as u32))
            .collect();
        DriverSchedule::build(r, s, WindowSpec::time_secs(1), WindowSpec::time_secs(1))
    }

    fn config(nodes: usize) -> SimConfig {
        let mut cfg = SimConfig::new(nodes, Algorithm::Llhj);
        cfg.batch_size = 4;
        cfg.window_r = WindowSpec::time_secs(1);
        cfg.window_s = WindowSpec::time_secs(1);
        cfg.latency_bucket = 1_000_000;
        cfg
    }

    #[test]
    fn elastic_sim_without_resizes_matches_the_fixed_engine() {
        let schedule = small_schedule();
        let oracle = run_kang(eq_pred(), &schedule);
        let fixed = crate::engine::run_simulation(&config(3), eq_pred(), RoundRobin, &schedule);
        let elastic = run_elastic_simulation(&config(3), eq_pred(), RoundRobin, &schedule, &[]);
        assert_eq!(elastic.result_keys(), oracle.result_keys());
        assert_eq!(elastic.result_keys(), fixed.result_keys());
        assert!(elastic.resize_log.is_empty());
        assert_eq!(elastic.report.nodes, 3);
    }

    #[test]
    fn simulated_grow_and_shrink_preserve_the_result_set() {
        let schedule = small_schedule();
        let oracle = run_kang(eq_pred(), &schedule);
        let events = schedule.events().len();
        // Grow 2 -> 4 mid-run.
        let grown = run_elastic_simulation(
            &config(2),
            eq_pred(),
            RoundRobin,
            &schedule,
            &[(events / 2, 4)],
        );
        assert_eq!(grown.result_keys(), oracle.result_keys());
        assert_eq!(grown.report.nodes, 4);
        assert_eq!(grown.resize_log.len(), 1);
        assert_eq!(grown.resize_log[0].migrated_tuples, 0);
        // Shrink 4 -> 2 mid-run migrates resident tuples.
        let shrunk = run_elastic_simulation(
            &config(4),
            eq_pred(),
            RoundRobin,
            &schedule,
            &[(events / 2, 2)],
        );
        assert_eq!(shrunk.result_keys(), oracle.result_keys());
        assert_eq!(shrunk.report.nodes, 2);
        assert!(shrunk.resize_log[0].migrated_tuples > 0);
        assert!(shrunk.resize_log[0].fence_ns > 0);
    }

    #[test]
    fn migration_cost_scales_with_the_migrated_state() {
        // A larger window migrates more tuples, so the fence must take
        // longer in virtual time.
        let mk = |window_ms: u64| {
            let r: Vec<_> = (0..300u64)
                .map(|i| (Timestamp::from_millis(i), (i % 20) as u32))
                .collect();
            let s: Vec<_> = (0..300u64)
                .map(|i| (Timestamp::from_millis(i), (i % 25) as u32))
                .collect();
            let w = WindowSpec::Time(llhj_core::time::TimeDelta::from_millis(window_ms));
            DriverSchedule::build(r, s, w, w)
        };
        let fence_of = |window_ms: u64| {
            let mut cfg = config(4);
            cfg.window_r = WindowSpec::Time(llhj_core::time::TimeDelta::from_millis(window_ms));
            cfg.window_s = cfg.window_r;
            let sched = mk(window_ms);
            let events = sched.events().len();
            let report =
                run_elastic_simulation(&cfg, eq_pred(), RoundRobin, &sched, &[(events / 2, 2)]);
            (
                report.resize_log[0].migrated_tuples,
                report.resize_log[0].fence_ns,
            )
        };
        let (small_tuples, small_fence) = fence_of(50);
        let (large_tuples, large_fence) = fence_of(250);
        assert!(large_tuples > small_tuples);
        assert!(
            large_fence > small_fence,
            "more migrated state must cost a longer fence: \
             {small_fence} ns vs {large_fence} ns"
        );
    }

    #[test]
    fn throughput_trace_buckets_cover_the_run() {
        let schedule = small_schedule();
        let report = run_elastic_simulation(&config(2), eq_pred(), RoundRobin, &schedule, &[]);
        let trace = report.throughput_trace(10_000_000); // 10 ms buckets
        let total: f64 = trace.iter().map(|(_, rate)| rate * 0.01).sum();
        assert!((total - report.report.results.len() as f64).abs() < 1.0);
    }
}
