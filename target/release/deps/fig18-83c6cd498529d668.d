/root/repo/target/release/deps/fig18-83c6cd498529d668.d: crates/bench/src/bin/fig18.rs

/root/repo/target/release/deps/fig18-83c6cd498529d668: crates/bench/src/bin/fig18.rs

crates/bench/src/bin/fig18.rs:
