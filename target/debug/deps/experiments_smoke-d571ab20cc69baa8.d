/root/repo/target/debug/deps/experiments_smoke-d571ab20cc69baa8.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/libexperiments_smoke-d571ab20cc69baa8.rmeta: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
