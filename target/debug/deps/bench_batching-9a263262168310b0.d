/root/repo/target/debug/deps/bench_batching-9a263262168310b0.d: crates/bench/src/bin/bench_batching.rs

/root/repo/target/debug/deps/libbench_batching-9a263262168310b0.rmeta: crates/bench/src/bin/bench_batching.rs

crates/bench/src/bin/bench_batching.rs:
