//! A small, self-contained pseudo-random number generator.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workload generators cannot depend on the `rand` crate.  This module
//! provides the only primitives they need — uniform integers, uniform
//! floats and a unit-interval draw — on top of xoshiro256++ seeded via
//! SplitMix64 (the standard seeding recipe, so a 64-bit seed expands to a
//! full 256-bit state).  Determinism per seed is part of the contract:
//! every experiment in the repository must be reproducible.

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct WorkloadRng {
    state: [u64; 4],
}

impl WorkloadRng {
    /// Seeds the generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        WorkloadRng {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform integer in `lo..=hi` (inclusive).  Uses rejection sampling so
    /// the distribution is exactly uniform.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return lo + (x % span) as u32;
            }
        }
    }

    /// Uniform draw from the half-open unit interval `[0, 1)`.
    pub fn gen_unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in the half-open interval `[lo, hi)` (the unit draw
    /// never returns 1.0, so `hi` itself is unreachable).
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "empty range");
        lo + (self.gen_unit_f64() as f32) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = WorkloadRng::seed_from_u64(42);
        let mut b = WorkloadRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = WorkloadRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected_and_cover_the_domain() {
        let mut rng = WorkloadRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range_u32(1, 10);
            assert!((1..=10).contains(&v));
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1_000 {
            let f = rng.gen_range_f32(1.0, 50.0);
            assert!((1.0..=50.0).contains(&f));
            let u = rng.gen_unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_draws_are_roughly_uniform() {
        let mut rng = WorkloadRng::seed_from_u64(1234);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
