/root/repo/target/debug/deps/punctuation_and_order-de48c73d6cc83f2b.d: tests/punctuation_and_order.rs

/root/repo/target/debug/deps/punctuation_and_order-de48c73d6cc83f2b: tests/punctuation_and_order.rs

tests/punctuation_and_order.rs:
