/root/repo/target/debug/deps/band_join_workload-a4e7c8e8b13f7e42.d: tests/band_join_workload.rs

/root/repo/target/debug/deps/band_join_workload-a4e7c8e8b13f7e42: tests/band_join_workload.rs

tests/band_join_workload.rs:
