/root/repo/target/debug/deps/fig17-fb58a5170ddf697d.d: crates/bench/src/bin/fig17.rs

/root/repo/target/debug/deps/libfig17-fb58a5170ddf697d.rmeta: crates/bench/src/bin/fig17.rs

crates/bench/src/bin/fig17.rs:
