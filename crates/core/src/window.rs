//! Sliding-window specifications.
//!
//! The join pipeline itself is oblivious to the window definition
//! (Section 4.2.4): an external driver decides when tuples enter and leave
//! the windows and submits arrival / expiry messages.  [`WindowSpec`]
//! captures the two practical window types from Section 2 — time-based and
//! tuple-based — and [`WindowTracker`] turns a stream of arrivals into the
//! corresponding expiry points.

use crate::time::{TimeDelta, Timestamp};
use crate::tuple::SeqNo;
use std::collections::VecDeque;

/// A sliding-window specification for one input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Time-based window: a tuple stays in the window for the given span
    /// after its arrival timestamp.
    Time(TimeDelta),
    /// Tuple-based window: the window always contains the last `k` tuples.
    Count(usize),
    /// Unbounded window: tuples never expire.  Useful for micro-benchmarks
    /// and tests over finite inputs.
    Unbounded,
}

impl WindowSpec {
    /// Convenience constructor for a time-based window given in seconds.
    pub fn time_secs(secs: u64) -> Self {
        WindowSpec::Time(TimeDelta::from_secs(secs))
    }

    /// The window span for time-based windows.
    pub fn time_span(&self) -> Option<TimeDelta> {
        match self {
            WindowSpec::Time(d) => Some(*d),
            _ => None,
        }
    }

    /// Expected number of tuples simultaneously inside the window at a given
    /// steady-state arrival rate (tuples per second).  Used by the cost
    /// model and by the original handshake join to size its segments.
    pub fn expected_tuples(&self, rate_per_sec: f64) -> f64 {
        match self {
            WindowSpec::Time(d) => d.as_secs_f64() * rate_per_sec,
            WindowSpec::Count(k) => *k as f64,
            WindowSpec::Unbounded => f64::INFINITY,
        }
    }
}

/// A pending expiry decision produced by [`WindowTracker::on_arrival`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expiry {
    /// The tuple that leaves the window.
    pub seq: SeqNo,
    /// The stream time at which it leaves.
    pub at: Timestamp,
}

/// Tracks one stream's window and computes expiry points.
///
/// The tracker is driven by arrivals in timestamp order.  For time-based
/// windows every arrival immediately yields its own (future) expiry point;
/// for count-based windows the arrival of tuple `i + k` expires tuple `i`
/// at that same instant (expiries are processed before arrivals with equal
/// timestamps, mirroring steps 2 and 3 of Kang's procedure).
#[derive(Debug)]
pub struct WindowTracker {
    spec: WindowSpec,
    live: VecDeque<SeqNo>,
    last_ts: Option<Timestamp>,
}

impl WindowTracker {
    /// Creates a tracker for the given specification.
    pub fn new(spec: WindowSpec) -> Self {
        WindowTracker {
            spec,
            live: VecDeque::new(),
            last_ts: None,
        }
    }

    /// The window specification this tracker implements.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Number of tuples currently considered inside the window (only
    /// meaningful for count-based windows, where the tracker retains the
    /// live set).
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// Registers an arrival and returns the expiries it implies.
    ///
    /// Panics in debug builds if arrivals are not submitted in
    /// non-decreasing timestamp order.
    pub fn on_arrival(&mut self, seq: SeqNo, ts: Timestamp) -> Vec<Expiry> {
        debug_assert!(
            self.last_ts.is_none_or(|last| ts >= last),
            "window tracker requires non-decreasing timestamps"
        );
        self.last_ts = Some(ts);
        match self.spec {
            WindowSpec::Time(span) => vec![Expiry {
                seq,
                at: ts.saturating_add(span),
            }],
            WindowSpec::Count(k) => {
                let mut expiries = Vec::new();
                self.live.push_back(seq);
                while self.live.len() > k {
                    let victim = self.live.pop_front().expect("non-empty");
                    expiries.push(Expiry {
                        seq: victim,
                        at: ts,
                    });
                }
                expiries
            }
            WindowSpec::Unbounded => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_window_expiry_is_arrival_plus_span() {
        let mut tr = WindowTracker::new(WindowSpec::time_secs(10));
        let e = tr.on_arrival(SeqNo(0), Timestamp::from_secs(3));
        assert_eq!(
            e,
            vec![Expiry {
                seq: SeqNo(0),
                at: Timestamp::from_secs(13)
            }]
        );
    }

    #[test]
    fn count_window_expires_oldest_on_overflow() {
        let mut tr = WindowTracker::new(WindowSpec::Count(2));
        assert!(tr.on_arrival(SeqNo(0), Timestamp::from_secs(1)).is_empty());
        assert!(tr.on_arrival(SeqNo(1), Timestamp::from_secs(2)).is_empty());
        let e = tr.on_arrival(SeqNo(2), Timestamp::from_secs(3));
        assert_eq!(
            e,
            vec![Expiry {
                seq: SeqNo(0),
                at: Timestamp::from_secs(3)
            }]
        );
        assert_eq!(tr.live_len(), 2);
    }

    #[test]
    fn count_window_of_zero_expires_immediately() {
        let mut tr = WindowTracker::new(WindowSpec::Count(0));
        let e = tr.on_arrival(SeqNo(5), Timestamp::from_secs(1));
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].seq, SeqNo(5));
        assert_eq!(tr.live_len(), 0);
    }

    #[test]
    fn unbounded_window_never_expires() {
        let mut tr = WindowTracker::new(WindowSpec::Unbounded);
        for i in 0..100 {
            assert!(tr.on_arrival(SeqNo(i), Timestamp::from_secs(i)).is_empty());
        }
    }

    #[test]
    fn expected_tuples_matches_rate_times_span() {
        assert_eq!(WindowSpec::time_secs(100).expected_tuples(50.0), 5000.0);
        assert_eq!(WindowSpec::Count(123).expected_tuples(50.0), 123.0);
        assert!(WindowSpec::Unbounded.expected_tuples(1.0).is_infinite());
        assert_eq!(
            WindowSpec::time_secs(7).time_span(),
            Some(TimeDelta::from_secs(7))
        );
        assert_eq!(WindowSpec::Count(1).time_span(), None);
    }
}
