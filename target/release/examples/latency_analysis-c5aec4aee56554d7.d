/root/repo/target/release/examples/latency_analysis-c5aec4aee56554d7.d: examples/latency_analysis.rs

/root/repo/target/release/examples/latency_analysis-c5aec4aee56554d7: examples/latency_analysis.rs

examples/latency_analysis.rs:
