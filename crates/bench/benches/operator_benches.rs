//! Criterion micro-benchmarks for the operator building blocks.
//!
//! These complement the figure-reproduction binaries in `src/bin/`: the
//! binaries regenerate the paper's tables and figures on the simulator,
//! while these benches measure the real (host-machine) cost of the hot
//! code paths — window scans, index probes, node message handling, and a
//! small end-to-end pipeline on both algorithms.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use llhj_baselines::run_kang;
use llhj_core::homing::RoundRobin;
use llhj_core::message::{LeftToRight, RightToLeft};
use llhj_core::node_llhj::{LlhjNode, LlhjOutput};
use llhj_core::predicate::JoinPredicate;
use llhj_core::store::LocalWindow;
use llhj_core::time::{TimeDelta, Timestamp};
use llhj_core::tuple::{PipelineTuple, SeqNo, StreamTuple};
use llhj_core::window::WindowSpec;
use llhj_sim::{run_simulation, Algorithm, SimConfig};
use llhj_sync::sync::Arc;
use llhj_workload::{band_join_schedule, BandJoinWorkload, BandPredicate};
use std::hint::black_box;
use std::time::Duration;

fn window_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_scan");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for &size in &[1_000usize, 10_000] {
        let mut window = LocalWindow::new();
        for i in 0..size as u64 {
            window.insert(
                StreamTuple::new(SeqNo(i), Timestamp::from_micros(i), (i % 10_000) as i64),
                false,
            );
        }
        group.bench_function(format!("nested_loop_{size}"), |b| {
            b.iter(|| {
                let mut hits = 0u64;
                window.scan_matches(false, |v| (*v - 5_000).abs() <= 10, |_| hits += 1);
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn index_probe_vs_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_probe_vs_scan");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let size = 10_000u64;
    let key_fn: llhj_core::store::KeyFn<i64> = Arc::new(|v: &i64| *v as u64 % 1_000);
    let mut indexed = LocalWindow::with_index(key_fn);
    let mut plain = LocalWindow::new();
    for i in 0..size {
        let t = StreamTuple::new(SeqNo(i), Timestamp::from_micros(i), (i % 1_000) as i64);
        indexed.insert(t.clone(), false);
        plain.insert(t, false);
    }
    group.bench_function("hash_probe_10k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            indexed.probe_matches(77, false, |v| *v == 77, |_| hits += 1);
            black_box(hits)
        })
    });
    group.bench_function("full_scan_10k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            plain.scan_matches(false, |v| *v == 77, |_| hits += 1);
            black_box(hits)
        })
    });
    group.finish();
}

fn band_scan_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("band_scan");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let pred = BandPredicate::default();
    let probe = llhj_workload::RTuple::new(5_000, 50.0);
    let band = pred.s_band(&probe).expect("band form");
    let mut window = LocalWindow::new();
    for i in 0..65_536u64 {
        let s = llhj_workload::STuple::new((i % 10_000) as i32 + 1, (i % 100) as f32);
        let attr = s.a as i64;
        window.insert_with_attr(
            StreamTuple::new(SeqNo(i), Timestamp::from_micros(i), s),
            attr,
            false,
        );
    }
    group.bench_function("scalar_closure_64k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            window.scan_matches(false, |s| pred.matches(&probe, s), |_| hits += 1);
            black_box(hits)
        })
    });
    group.bench_function("columnar_band_64k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            window.scan_band(
                band,
                false,
                pred.band_exact(),
                |s| pred.matches(&probe, s),
                |_| hits += 1,
            );
            black_box(hits)
        })
    });
    group.finish();
}

fn llhj_node_arrival(c: &mut Criterion) {
    let mut group = c.benchmark_group("llhj_node_arrival");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let pred = BandPredicate::default();
    group.bench_function("arrival_against_5k_window", |b| {
        b.iter_batched(
            || {
                let mut node = LlhjNode::new(0, 1, pred);
                let mut out = LlhjOutput::new();
                for i in 0..5_000u64 {
                    node.handle_right(
                        RightToLeft::ArrivalS(PipelineTuple::fresh(
                            StreamTuple::new(
                                SeqNo(i),
                                Timestamp::from_micros(i),
                                llhj_workload::STuple::new(
                                    (i % 10_000) as i32,
                                    (i % 10_000) as f32,
                                ),
                            ),
                            0,
                        )),
                        &mut out,
                    );
                    out.clear();
                }
                (node, out)
            },
            |(mut node, mut out)| {
                node.handle_left(
                    LeftToRight::ArrivalR(PipelineTuple::fresh(
                        StreamTuple::new(
                            SeqNo(0),
                            Timestamp::from_micros(1),
                            llhj_workload::RTuple::new(5_000, 5_000.0),
                        ),
                        0,
                    )),
                    &mut out,
                );
                black_box(out.comparisons)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let workload = BandJoinWorkload::scaled(200.0, TimeDelta::from_secs(5), 400, 42);
    let schedule = band_join_schedule(
        &workload,
        WindowSpec::time_secs(2),
        WindowSpec::time_secs(2),
    );
    let pred = BandPredicate::default();

    group.bench_function("kang_oracle", |b| {
        b.iter(|| black_box(run_kang(pred, &schedule).results.len()))
    });
    for (name, algorithm) in [
        ("llhj_sim_4_nodes", Algorithm::Llhj),
        ("hsj_sim_4_nodes", Algorithm::Hsj),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = SimConfig::new(4, algorithm);
                cfg.batch_size = 16;
                cfg.window_r = WindowSpec::time_secs(2);
                cfg.window_s = WindowSpec::time_secs(2);
                cfg.expected_rate_per_sec = 200.0;
                cfg.latency_bucket = 1_000_000;
                black_box(
                    run_simulation(&cfg, pred, RoundRobin, &schedule)
                        .results
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn predicate_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicate");
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let pred = BandPredicate::default();
    let r = llhj_workload::RTuple::new(5_000, 5_000.0);
    let s = llhj_workload::STuple::new(5_005, 5_005.0);
    group.bench_function("band_predicate", |b| {
        b.iter(|| black_box(pred.matches(black_box(&r), black_box(&s))))
    });
    group.finish();
}

criterion_group!(
    benches,
    window_scan,
    band_scan_vs_scalar,
    index_probe_vs_scan,
    llhj_node_arrival,
    end_to_end,
    predicate_eval
);
criterion_main!(benches);
