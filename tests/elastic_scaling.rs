//! Cross-substrate conformance suite for elastic node-chain scaling.
//!
//! An elastic join is wrong in silent ways unless the reconfiguration
//! windows are hammered: a tuple dropped during a handoff only shows up as
//! one missing result pair, a duplicated segment as one extra.  These
//! sweeps therefore grow and shrink live pipelines at *seeded, randomized*
//! points of both paper workloads (the band join of Section 7.1 and the
//! equi join of Table 2) and assert, for every case:
//!
//! * **byte-identical result sets** against the Kang oracle (not counts —
//!   the exact sorted `(r_seq, s_seq)` key vectors);
//! * **no duplicates** across every resize;
//! * **punctuation monotonicity** of the emitted output stream;
//! * **substrate agreement**: the discrete-event simulator, reconfigured
//!   by the same plan, produces the same result set as the threaded
//!   runtime;
//! * **immediate balance**: every resize ends with the chain-wide
//!   redistribution, so the per-node residence recorded right after a
//!   reconfiguration sits within 10% of the balanced share (LLHJ: both
//!   stream sides across the whole chain; HSJ: both stream sides, each
//!   over its reachable subset — the stream-monotone chain grows at both
//!   ends and water-fills R rightward and S leftward).
//!
//! Since the capacity renegotiation refactor the sweeps cover **both**
//! node types: the original handshake join runs at `batch_size = 1` with
//! age-based flow (the configuration under which it reproduces the oracle
//! exactly) and a flushed tail of never-matching traffic, because HSJ
//! only reports a pair once the two tuples physically meet.
//!
//! The paced runs use windows that dwarf the reconfiguration fence (tens
//! of milliseconds of wall time at most), matching the paper's setting
//! where window spans dwarf pipeline traversal times.

use handshake_join::prelude::*;
use llhj_core::punctuation::verify_punctuated_stream;
use llhj_runtime::elastic::hsj_age_factory;
use llhj_workload::WorkloadRng;

fn band_schedule(seed: u64) -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(400.0, TimeDelta::from_millis(400), 220, seed);
    band_join_schedule(
        &workload,
        WindowSpec::Time(TimeDelta::from_millis(150)),
        WindowSpec::Time(TimeDelta::from_millis(150)),
    )
}

fn equi_schedule(seed: u64) -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = EquiJoinWorkload {
        rate_per_sec: 400.0,
        duration: TimeDelta::from_millis(400),
        domain: 60,
        seed,
    };
    equi_join_schedule(
        &workload,
        WindowSpec::Time(TimeDelta::from_millis(150)),
        WindowSpec::Time(TimeDelta::from_millis(150)),
    )
}

/// The band workload followed by one window length of never-matching tail
/// traffic.  The original handshake join only reports a pair once the two
/// tuples physically meet, which over a finite input is only guaranteed if
/// the streams keep flowing for one more window length — exactly what a
/// real, infinite stream provides.  Harmless for LLHJ and the oracle (the
/// sentinels match nothing).
fn flushed_band_schedule(seed: u64) -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(400.0, TimeDelta::from_millis(400), 220, seed);
    let window = TimeDelta::from_millis(150);
    let tail_from = Timestamp::from_millis(400);
    let tail = |base: i32, sign: i32| {
        (0..70u64).map(move |i| {
            (
                tail_from.saturating_add(TimeDelta::from_micros(i * 2_500)),
                sign * (base + i as i32),
            )
        })
    };
    let mut r = workload.generate_r();
    r.extend(tail(1_000_000, 1).map(|(ts, x)| (ts, RTuple::new(x, 1e6))));
    let mut s = workload.generate_s();
    s.extend(tail(1_000_000, -1).map(|(ts, a)| (ts, STuple::new(a, -1e6))));
    llhj_core::DriverSchedule::build(r, s, WindowSpec::Time(window), WindowSpec::Time(window))
}

fn paced_options(batch_size: usize) -> PipelineOptions {
    PipelineOptions {
        batch_size,
        punctuate: true,
        pacing: Pacing::RealTime { speedup: 1.0 },
        ..Default::default()
    }
}

/// Which residence balance the redistribution can promise for a node type.
#[derive(Clone, Copy)]
enum BalanceCheck {
    /// LLHJ: placement is free, every resize lands on the balanced
    /// targets for both stream sides.
    TotalEveryResize,
    /// HSJ: the stream-monotone constraint grows the chain at both ends
    /// (the left end gets the ceiling half), so after the first grow of a
    /// grow-first plan *each* side must be balanced over its reachable
    /// subset — R over everything right of the new left nodes, S over
    /// everything left of the new right nodes — and hold nothing outside
    /// it.
    BothSidesFirstGrow,
}

/// Asserts one resize's recorded post-redistribution residence is within
/// 10% of the balanced share (with one tuple of integer-rounding slack).
fn assert_balanced(label: &str, totals: &[usize]) {
    let sum: usize = totals.iter().sum();
    let mean = sum as f64 / totals.len() as f64;
    // 10% of the balanced share, with two tuples of slack for the integer
    // rounding of the per-side targets (each side rounds independently).
    let slack = (0.1 * mean).max(2.0);
    for (node, &t) in totals.iter().enumerate() {
        assert!(
            (t as f64 - mean).abs() <= slack,
            "{label}: node {node} holds {t} tuples against a balanced share \
             of {mean:.1} (all: {totals:?})"
        );
    }
}

/// One resize's `(from_nodes, to_nodes, residence_after)` record.
type ResizeResidence = (usize, usize, Vec<(usize, usize)>);

fn check_balance(label: &str, check: BalanceCheck, log: &[ResizeResidence]) {
    match check {
        BalanceCheck::TotalEveryResize => {
            for (i, (_, _, residence)) in log.iter().enumerate() {
                let totals: Vec<usize> = residence.iter().map(|&(wr, ws)| wr + ws).collect();
                assert_balanced(&format!("{label} resize {i} (total)"), &totals);
            }
        }
        BalanceCheck::BothSidesFirstGrow => {
            let (from, to, residence) = &log[0];
            assert!(to > from, "the HSJ sweeps grow first");
            let delta = to - from;
            let left_delta = delta.div_ceil(2);
            let right_delta = delta - left_delta;
            let wr: Vec<usize> = residence.iter().map(|&(wr, _)| wr).collect();
            let ws: Vec<usize> = residence.iter().map(|&(_, ws)| ws).collect();
            for (node, &r) in wr.iter().enumerate().take(left_delta) {
                assert_eq!(
                    r, 0,
                    "{label}: node {node} sits left of the R-reachable subset \
                     yet holds {r} R tuples"
                );
            }
            for (node, &s) in ws.iter().enumerate().skip(to - right_delta) {
                assert_eq!(
                    s, 0,
                    "{label}: node {node} sits right of the S-reachable subset \
                     yet holds {s} S tuples"
                );
            }
            assert_balanced(&format!("{label} first grow (R side)"), &wr[left_delta..]);
            assert_balanced(
                &format!("{label} first grow (S side)"),
                &ws[..to - right_delta],
            );
        }
    }
}

/// Draws two distinct resize points in the middle 10%–90% of the schedule.
fn resize_points(rng: &mut WorkloadRng, events: usize) -> (usize, usize) {
    let lo = events / 10;
    let hi = events * 9 / 10;
    let a = lo + rng.gen_range_u32(0, (hi - lo) as u32 - 1) as usize;
    let b = lo + rng.gen_range_u32(0, (hi - lo) as u32 - 1) as usize;
    (a.min(b), a.max(b).max(a.min(b) + 1))
}

struct Conformance {
    keys: Vec<(SeqNo, SeqNo)>,
    resizes: usize,
}

/// Runs one elastic case on both substrates and checks every conformance
/// property against the oracle.
#[allow(clippy::too_many_arguments)]
fn check_case<P>(
    label: &str,
    schedule: &llhj_core::DriverSchedule<RTuple, STuple>,
    predicate: P,
    factory: NodeFactory<RTuple, STuple>,
    algorithm: Algorithm,
    batch_size: usize,
    initial_nodes: usize,
    plan_points: &[(usize, usize)],
    balance: Option<BalanceCheck>,
) -> Conformance
where
    P: JoinPredicate<RTuple, STuple> + Clone + Send + Sync + 'static,
{
    let oracle = handshake_join::baselines::run_kang(predicate.clone(), schedule);
    let oracle_keys = oracle.result_keys();
    assert!(
        oracle_keys.len() > 10,
        "{label}: workload must produce a meaningful number of matches"
    );

    // Threaded runtime, resized mid-run.
    let plan = ScalePlan::new(
        plan_points
            .iter()
            .map(|&(after_events, target_nodes)| ScaleStep {
                after_events,
                target_nodes,
            })
            .collect(),
    );
    let outcome = run_elastic_pipeline(
        initial_nodes,
        factory,
        predicate.clone(),
        RoundRobin,
        schedule,
        &plan,
        &paced_options(batch_size),
    );
    let keys = outcome.result_keys();
    assert_eq!(
        keys, oracle_keys,
        "{label}: runtime result set must be byte-identical to the oracle"
    );
    let mut deduped = keys.clone();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        keys.len(),
        "{label}: a resize must never duplicate a result"
    );
    assert_eq!(
        outcome.resize_log.len(),
        plan_points.len(),
        "{label}: every planned resize must have run"
    );
    assert!(outcome.punctuation_count > 0, "{label}: punctuated run");
    assert_eq!(
        verify_punctuated_stream(&outcome.output, |t| t.result.ts()),
        Ok(()),
        "{label}: punctuation must stay monotone across resizes"
    );

    // The simulator, reconfigured by the same plan, agrees exactly.
    let mut cfg = SimConfig::new(initial_nodes, algorithm);
    cfg.batch_size = batch_size;
    cfg.window_r = WindowSpec::Time(TimeDelta::from_millis(150));
    cfg.window_s = WindowSpec::Time(TimeDelta::from_millis(150));
    cfg.expected_rate_per_sec = 400.0;
    cfg.latency_bucket = 1_000_000;
    let sim = run_elastic_simulation(&cfg, predicate, RoundRobin, schedule, plan_points);
    assert_eq!(
        sim.result_keys(),
        oracle_keys,
        "{label}: simulator must agree with the oracle under the same plan"
    );
    assert_eq!(sim.resize_log.len(), plan_points.len());

    // Immediate balance: the residence recorded right after every
    // reconfiguration — on both substrates, and they must agree on the
    // placement exactly (same census, same plan, same slices).
    if let Some(balance) = balance {
        let runtime_log: Vec<ResizeResidence> = outcome
            .resize_log
            .iter()
            .map(|r| (r.from_nodes, r.to_nodes, r.residence_after.clone()))
            .collect();
        let sim_log: Vec<ResizeResidence> = sim
            .resize_log
            .iter()
            .map(|r| (r.from_nodes, r.to_nodes, r.residence_after.clone()))
            .collect();
        check_balance(&format!("{label} [runtime]"), balance, &runtime_log);
        check_balance(&format!("{label} [sim]"), balance, &sim_log);
    }

    Conformance {
        keys,
        resizes: plan_points.len(),
    }
}

/// Band-join sweeps: grow 2→4 then shrink 4→2 at seeded random points.
/// Every resize must leave the per-node residence on the balanced targets
/// (both sides — LLHJ placement is free).
#[test]
fn band_join_grow_and_shrink_sweep_matches_the_oracle_exactly() {
    let mut total_resizes = 0;
    for case in 0..4u64 {
        let mut rng = WorkloadRng::seed_from_u64(0xE1A5_71C0 + case);
        let seed = rng.gen_range_u32(0, 9_999) as u64;
        let schedule = band_schedule(seed);
        let (grow_at, shrink_at) = resize_points(&mut rng, schedule.events().len());
        let conformance = check_case(
            &format!("band case {case} (seed {seed}, grow@{grow_at}, shrink@{shrink_at})"),
            &schedule,
            BandPredicate::default(),
            llhj_factory(BandPredicate::default()),
            Algorithm::Llhj,
            4,
            2,
            &[(grow_at, 4), (shrink_at, 2)],
            Some(BalanceCheck::TotalEveryResize),
        );
        assert!(!conformance.keys.is_empty());
        total_resizes += conformance.resizes;
    }
    assert!(total_resizes >= 8, "the sweep must cover ≥ 8 resize points");
}

/// The original handshake join sweeps, elastic since the capacity
/// renegotiation refactor: seeded grow-then-shrink at `batch_size = 1`
/// with age-based flow — byte-identical to the oracle, no duplicates,
/// punctuation monotone, and — since the both-end grow plus water-filled
/// redistribution — *both* stream sides balanced within 10% immediately
/// after the grow, each over the subset of nodes its migration
/// constraint can reach.
#[test]
fn hsj_grow_and_shrink_sweep_matches_the_oracle_exactly() {
    let window = TimeDelta::from_millis(150);
    for case in 0..3u64 {
        let mut rng = WorkloadRng::seed_from_u64(0xE1A5_71C4 + case);
        let seed = rng.gen_range_u32(0, 9_999) as u64;
        let schedule = flushed_band_schedule(seed);
        // Resize inside the *real* traffic (the first ~64% of events), so
        // the chain still holds window state when it moves.
        let (grow_at, shrink_at) = resize_points(&mut rng, schedule.events().len() * 7 / 10);
        check_case(
            &format!("hsj case {case} (seed {seed}, grow@{grow_at}, shrink@{shrink_at})"),
            &schedule,
            BandPredicate::default(),
            hsj_age_factory(window, window, BandPredicate::default()),
            Algorithm::Hsj,
            1,
            2,
            &[(grow_at, 4), (shrink_at, 2)],
            Some(BalanceCheck::BothSidesFirstGrow),
        );
    }
}

/// Equi-join sweeps on *indexed* nodes: migration must also carry the
/// node-local hash indexes correctly.
#[test]
fn equi_join_sweep_with_indexed_nodes_matches_the_oracle_exactly() {
    for case in 0..2u64 {
        let mut rng = WorkloadRng::seed_from_u64(0xE1A5_71C1 + case);
        let seed = rng.gen_range_u32(0, 9_999) as u64;
        let schedule = equi_schedule(seed);
        let (shrink_at, grow_at) = resize_points(&mut rng, schedule.events().len());
        // Opposite order from the band sweep: start wide, shrink, re-grow.
        check_case(
            &format!("equi case {case} (seed {seed}, shrink@{shrink_at}, grow@{grow_at})"),
            &schedule,
            EquiXaPredicate,
            llhj_indexed_factory(EquiXaPredicate),
            Algorithm::LlhjIndexed,
            4,
            4,
            &[(shrink_at, 2), (grow_at, 4)],
            Some(BalanceCheck::TotalEveryResize),
        );
    }
}

/// Degenerate widths: growing a single-node pipeline (which is both ends
/// at once) and shrinking back down to one node.
#[test]
fn single_node_boundaries_survive_growth_and_collapse() {
    let mut rng = WorkloadRng::seed_from_u64(0xE1A5_71C2);
    let schedule = band_schedule(77);
    let (grow_at, shrink_at) = resize_points(&mut rng, schedule.events().len());
    check_case(
        "single-node boundary case",
        &schedule,
        BandPredicate::default(),
        llhj_factory(BandPredicate::default()),
        Algorithm::Llhj,
        4,
        1,
        &[(grow_at, 3), (shrink_at, 1)],
        Some(BalanceCheck::TotalEveryResize),
    );
}

/// A resize planned at the very end of the schedule (nothing left to
/// inject afterwards) must still run and still leave the result set exact.
#[test]
fn trailing_resize_after_the_last_event_is_exact() {
    let schedule = band_schedule(123);
    let events = schedule.events().len();
    check_case(
        "trailing resize case",
        &schedule,
        BandPredicate::default(),
        llhj_factory(BandPredicate::default()),
        Algorithm::Llhj,
        4,
        3,
        &[(events, 2)],
        None,
    );
}
