/root/repo/target/release/deps/all_experiments-4e9709da66627f3d.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-4e9709da66627f3d: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
