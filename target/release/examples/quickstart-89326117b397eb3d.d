/root/repo/target/release/examples/quickstart-89326117b397eb3d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-89326117b397eb3d: examples/quickstart.rs

examples/quickstart.rs:
