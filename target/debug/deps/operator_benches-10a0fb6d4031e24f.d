/root/repo/target/debug/deps/operator_benches-10a0fb6d4031e24f.d: crates/bench/benches/operator_benches.rs

/root/repo/target/debug/deps/liboperator_benches-10a0fb6d4031e24f.rmeta: crates/bench/benches/operator_benches.rs

crates/bench/benches/operator_benches.rs:
