//! Punctuated, totally ordered output (Sections 5 and 6 of the paper).
//!
//! The collector of low-latency handshake join derives punctuations from
//! the high-water marks of both input streams; a downstream sorting
//! operator then needs to buffer only the results of one collector cycle to
//! emit a globally ordered result stream.  This example runs a punctuated
//! pipeline, feeds the output through [`SortingOperator`], verifies the
//! ordering and reports how small the sort buffer stayed.
//!
//! ```bash
//! cargo run --release --example ordered_output
//! ```

use handshake_join::prelude::*;
use llhj_core::punctuation::verify_punctuated_stream;

fn main() {
    let workload = BandJoinWorkload::scaled(150.0, TimeDelta::from_secs(8), 600, 0x0DDE);
    let window = WindowSpec::time_secs(4);
    let schedule = band_join_schedule(&workload, window, window);
    let predicate = BandPredicate::default();

    let outcome = run_pipeline(
        llhj_nodes(3, predicate),
        predicate,
        RoundRobin,
        &schedule,
        &PipelineOptions {
            punctuate: true,
            batch_size: 8,
            pacing: Pacing::RealTime { speedup: 8.0 },
            ..Default::default()
        },
    );

    println!(
        "pipeline produced {} results and {} punctuations",
        outcome.results.len(),
        outcome.punctuation_count
    );

    // The punctuated stream must honour its guarantee: no result with a
    // timestamp below a previously emitted punctuation.
    match verify_punctuated_stream(&outcome.output, |t| t.result.ts()) {
        Ok(()) => println!(
            "punctuation guarantee verified over {} items",
            outcome.output.len()
        ),
        Err(at) => println!("PUNCTUATION VIOLATION at output item {at}"),
    }

    // Sort the stream with the punctuation-driven operator.
    let mut sorter = SortingOperator::new();
    let mut ordered: Vec<Timestamp> = Vec::new();
    for item in outcome.output.iter().cloned() {
        sorter.push(item, |t| t.result.ts(), |t| ordered.push(t.result.ts()));
    }
    sorter.flush(|t| ordered.push(t.result.ts()));

    let is_sorted = ordered.windows(2).all(|w| w[0] <= w[1]);
    println!(
        "sorted output: {} tuples, globally ordered = {}, max sort buffer = {} tuples",
        ordered.len(),
        is_sorted,
        sorter.max_buffered()
    );
    println!(
        "(without punctuations the sorter would have to buffer up to a full window of output: ~{} tuples)",
        outcome.results.len() / 2
    );
}
