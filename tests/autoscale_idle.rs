//! Timer-driven autoscale actuation: the width converges while the
//! stream is **silent**.
//!
//! The controller thread samples on wall-clock ticks, so it keeps
//! publishing desired widths through an arrival gap — but until this PR
//! the driver only *applied* a published width before injecting the next
//! schedule event, so on a silent stream a desired resize sat unapplied
//! until traffic resumed.  The driver's pacing wait is now sliced at the
//! controller tick and actuates mid-gap (fencing an idle chain is nearly
//! free: nothing is in flight to drain).
//!
//! The scenario: steady traffic on a 4-node chain, a mid-run **30 s
//! arrival gap** (replayed at 100× speedup), then more traffic.  The gap
//! drops the observed rate to zero, the policy decides a shrink to the
//! floor, and the resize must land *inside* the gap — at a stream time
//! strictly after the last pre-gap event and well before traffic resumes
//! — while the result set stays byte-identical to the oracle.

use handshake_join::prelude::*;

fn gapped_schedule() -> llhj_core::DriverSchedule<u32, u32> {
    // 200/s per stream for 1 s, 30 s of silence, 200/s for 0.5 s.
    let mk = || {
        let pre = (0..200u64).map(|i| (Timestamp::from_millis(i * 5), (i % 13) as u32));
        let post = (0..100u64).map(|i| (Timestamp::from_millis(31_000 + i * 5), (i % 13) as u32));
        pre.chain(post).collect::<Vec<_>>()
    };
    DriverSchedule::build(
        mk(),
        mk(),
        WindowSpec::Time(TimeDelta::from_millis(500)),
        WindowSpec::Time(TimeDelta::from_millis(500)),
    )
}

#[test]
fn silent_gap_shrinks_on_the_next_tick_not_on_the_next_event() {
    let schedule = gapped_schedule();
    let oracle = handshake_join::baselines::run_kang(eq_pred(), &schedule);

    // 200/s over 4 nodes = 50/node: inside the band while traffic flows
    // (low watermark 30), zero during the gap (underload).  After the
    // shrink to the 2-node floor, the resumed 100/node is still in band.
    let autoscale = AutoscaleOptions {
        policy: AutoscalePolicy {
            target_p99: TimeDelta::from_secs(30),
            high_watermark: 400.0,
            low_watermark: 30.0,
            cooldown: TimeDelta::from_millis(1_000),
            min_nodes: 2,
            max_nodes: 4,
            step: 2,
            ..AutoscalePolicy::default()
        },
        sample_interval: TimeDelta::from_millis(500),
    };
    let opts = PipelineOptions {
        batch_size: 4,
        // 100x: the 30 s stream gap takes 0.3 s of wall time; the 500 ms
        // sample interval ticks every 5 ms.
        pacing: Pacing::RealTime { speedup: 100.0 },
        ..Default::default()
    };
    let (outcome, report) = run_autoscaled_pipeline(
        4,
        llhj_factory(eq_pred()),
        eq_pred(),
        RoundRobin,
        &schedule,
        &autoscale,
        &opts,
    );

    // Exact across the idle resize.
    assert_eq!(outcome.result_keys(), oracle.result_keys());

    // The shrink landed inside the gap: after the last pre-gap arrival
    // (1 s) plus the expiry tail of its window, and with at least 20 of
    // the 30 silent seconds still ahead — long before the next schedule
    // event could have actuated it.
    let shrink = outcome
        .resize_log
        .iter()
        .find(|r| r.to_nodes < r.from_nodes)
        .expect("the silent gap must shrink the chain");
    assert!(
        shrink.at > Timestamp::from_millis(1_000),
        "shrink at {:?} precedes the gap",
        shrink.at
    );
    assert!(
        shrink.at < Timestamp::from_millis(11_000),
        "shrink at {:?} waited for traffic to resume instead of landing \
         on a controller tick inside the gap",
        shrink.at
    );
    assert_eq!(outcome.nodes, 2, "the chain ends at the floor");
    assert!(
        report.decisions.iter().any(|d| d.to_nodes < d.from_nodes),
        "the controller's report must carry the shrink decision"
    );
}

fn eq_pred() -> FnPredicate<fn(&u32, &u32) -> bool> {
    fn eq(r: &u32, s: &u32) -> bool {
        r == s
    }
    FnPredicate(eq as fn(&u32, &u32) -> bool)
}
