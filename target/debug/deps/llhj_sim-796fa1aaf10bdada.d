/root/repo/target/debug/deps/llhj_sim-796fa1aaf10bdada.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

/root/repo/target/debug/deps/libllhj_sim-796fa1aaf10bdada.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

/root/repo/target/debug/deps/libllhj_sim-796fa1aaf10bdada.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/model.rs:
crates/sim/src/report.rs:
crates/sim/src/throughput.rs:
