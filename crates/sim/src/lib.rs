//! # llhj-sim — discrete-event multicore simulator for handshake joins
//!
//! This crate is the experimental substrate that replaces the 48-core AMD
//! Opteron "Magny Cours" machine of the paper's evaluation.  It executes
//! the real node state machines from `llhj-core` on a simulated pipeline of
//! `n` cores connected by FIFO links, charging virtual time according to a
//! calibrated [`CostModel`]:
//!
//! * [`engine::run_simulation`] — exact event-driven simulation (real
//!   predicate evaluations, used for correctness and latency experiments);
//! * [`elastic::run_elastic_simulation`] — the same engine with mid-run
//!   grow/shrink reconfigurations, mirroring the threaded runtime's
//!   fence-and-handoff protocol in virtual time;
//! * [`throughput::max_sustainable_rate`] — binary search for the maximum
//!   sustainable input rate, the methodology behind Figure 17;
//! * [`model::AnalyticModel`] — closed-form utilization model used to
//!   extrapolate to the paper's full-scale operating points (15-minute
//!   windows) that are too expensive to simulate tuple-by-tuple.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cost;
pub mod elastic;
pub mod engine;
pub mod mesh;
pub mod model;
pub mod report;
pub mod throughput;

pub use config::{Algorithm, SimConfig};
pub use cost::{CostModel, SimNanos};
pub use elastic::{
    recover_simulation, run_autoscaled_simulation, run_checkpointed_simulation,
    run_elastic_simulation, ElasticSimReport, SimCheckpoint, SimCheckpointEvent, SimResizeEvent,
};
pub use engine::run_simulation;
pub use mesh::{
    max_sustainable_mesh_rate, recover_mesh_simulation, run_checkpointed_mesh_simulation,
    run_mesh_simulation, MeshSimReport, SimMeshCheckpoint, SimReshardEvent,
};
pub use model::AnalyticModel;
pub use report::SimReport;
pub use throughput::{max_sustainable_rate, ThroughputResult, ThroughputSearch};
