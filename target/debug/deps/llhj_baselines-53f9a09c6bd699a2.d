/root/repo/target/debug/deps/llhj_baselines-53f9a09c6bd699a2.d: crates/baselines/src/lib.rs crates/baselines/src/celljoin.rs crates/baselines/src/kang.rs

/root/repo/target/debug/deps/libllhj_baselines-53f9a09c6bd699a2.rmeta: crates/baselines/src/lib.rs crates/baselines/src/celljoin.rs crates/baselines/src/kang.rs

crates/baselines/src/lib.rs:
crates/baselines/src/celljoin.rs:
crates/baselines/src/kang.rs:
