//! Stream time: timestamps and durations.
//!
//! All stream-side time keeping uses a logical microsecond clock that starts
//! at zero when a join instance is created.  Both the threaded runtime (which
//! maps it onto the wall clock) and the discrete-event simulator (which keeps
//! it fully virtual) share this representation, so latency numbers produced
//! by either substrate are directly comparable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in stream time, in microseconds since the start of the stream.
///
/// Timestamps are totally ordered and monotone per input stream (the driver
/// enforces monotonicity; see [`crate::driver`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

/// A span of stream time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl Timestamp {
    /// The origin of stream time.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The greatest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Timestamp(us)
    }

    /// Creates a timestamp from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms * 1_000)
    }

    /// Creates a timestamp from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Timestamp(s * 1_000_000)
    }

    /// Raw microseconds since the stream origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the stream origin, as a float (useful for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn saturating_since(self, earlier: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Adds a delta, saturating at [`Timestamp::MAX`].
    #[inline]
    pub fn saturating_add(self, delta: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_add(delta.0))
    }

    /// Subtracts a delta, saturating at [`Timestamp::ZERO`].
    #[inline]
    pub fn saturating_sub(self, delta: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(delta.0))
    }
}

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The greatest representable span.
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Creates a span from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        TimeDelta(us)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        TimeDelta(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta(s * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to microseconds.
    ///
    /// Negative and non-finite inputs are clamped to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return TimeDelta::ZERO;
        }
        TimeDelta((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds, as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(factor))
    }

    /// Scales the span by a float factor (clamped to be non-negative).
    #[inline]
    pub fn mul_f64(self, factor: f64) -> TimeDelta {
        TimeDelta::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = TimeDelta;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Timestamp) -> TimeDelta {
        debug_assert!(self >= rhs, "timestamp subtraction underflow");
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        debug_assert!(self >= rhs, "duration subtraction underflow");
        TimeDelta(self.0 - rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Timestamp::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Timestamp::from_millis(3).as_micros(), 3_000);
        assert_eq!(TimeDelta::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(TimeDelta::from_millis(5).as_micros(), 5_000);
        assert_eq!(TimeDelta::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10);
        let d = TimeDelta::from_secs(4);
        assert_eq!((t + d).as_micros(), 14_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.saturating_sub(TimeDelta::from_secs(100)), Timestamp::ZERO);
        assert_eq!(
            Timestamp::MAX.saturating_add(TimeDelta::from_secs(1)),
            Timestamp::MAX
        );
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Timestamp::from_secs(1);
        let late = Timestamp::from_secs(5);
        assert_eq!(late.saturating_since(early), TimeDelta::from_secs(4));
        assert_eq!(early.saturating_since(late), TimeDelta::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Timestamp::from_secs(1);
        let b = Timestamp::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn float_conversions() {
        assert!((Timestamp::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((TimeDelta::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-9);
        assert!((TimeDelta::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
        assert_eq!(TimeDelta::from_secs_f64(-1.0), TimeDelta::ZERO);
        assert_eq!(TimeDelta::from_secs_f64(f64::NAN), TimeDelta::ZERO);
        assert_eq!(TimeDelta::from_secs_f64(0.001).as_micros(), 1_000);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", TimeDelta::from_micros(12)), "12us");
        assert_eq!(format!("{}", TimeDelta::from_micros(1_200)), "1.200ms");
        assert_eq!(format!("{}", TimeDelta::from_secs(2)), "2.000s");
    }

    #[test]
    fn delta_scaling() {
        assert_eq!(
            TimeDelta::from_secs(2).saturating_mul(3),
            TimeDelta::from_secs(6)
        );
        assert_eq!(TimeDelta::MAX.saturating_mul(2), TimeDelta::MAX);
        assert_eq!(
            TimeDelta::from_secs(2).mul_f64(0.5),
            TimeDelta::from_secs(1)
        );
    }
}
