//! Key-partitioned shard mesh: routing, split/merge maps and frontier
//! merging.
//!
//! A single handshake-join chain scales *within* itself by adding nodes,
//! but every tuple still traverses one pipeline.  The mesh adds a second
//! scaling axis: the key space is hashed over `N` independent elastic
//! chains ("shards"), each with its own collector, and the per-shard
//! punctuated output streams are merged into one global stream whose
//! punctuation is the minimum over the shard frontiers.
//!
//! This module is substrate-agnostic — it contains only the pure pieces
//! shared by the threaded runtime mesh (`llhj-runtime`) and its
//! deterministic simulator mirror (`llhj-sim`):
//!
//! * [`mix64`] and [`ShardMap`] — the power-of-two hash partitioning.
//!   Splits *double* the shard count and merges halve it, so a tuple that
//!   hashed to shard `i` under `N` shards hashes to `i` or `i + N` under
//!   `2N`: a split only ever moves state from a parent to its one child,
//!   never across unrelated shards.
//! * [`RouteMode`] and [`ShardRouter`] — which shard(s) each
//!   [`StreamEvent`] visits.  Equi-joins co-partition both streams by the
//!   join key; keyless predicates (bands) fall back to
//!   fragment-and-replicate, where R is partitioned by sequence number and
//!   S is broadcast so every `(r, s)` pair is examined in exactly the
//!   shard owning `r`.
//! * [`merge_punctuated_streams`] — the frontier merge that turns `N`
//!   individually valid punctuated streams into one valid, monotone
//!   stream.
//! * [`MeshPlan`] / [`MeshStep`] and [`MeshAutoscalePolicy`] — the
//!   deterministic steering plan both substrates honour, and the pure
//!   split/merge decision function.

use crate::driver::StreamEvent;
use crate::message::WindowSegment;
use crate::predicate::JoinPredicate;
use crate::punctuation::OutputItem;
use crate::time::Timestamp;
use crate::tuple::SeqNo;

/// Finalizer-style 64-bit mixer (the `splitmix64` output function).
///
/// Join keys are often small consecutive integers; taking the low bits
/// directly would map whole key ranges to shard 0.  The mixer spreads
/// every input bit over the output so the power-of-two mask of
/// [`ShardMap`] sees uniform bits.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Power-of-two hash partitioning of the key space over shards.
///
/// The shard of a hash is `hash & mask`.  Keeping the shard count a power
/// of two makes resharding *local*: growing from `N` to `2N` shards adds
/// one mask bit, so the tuples of shard `i` split between `i` (bit clear)
/// and `i + N` (bit set) and no other shard is touched; shrinking removes
/// the bit and folds `i + N` back into `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    mask: u64,
}

impl ShardMap {
    /// A map over `shards` shards; `shards` must be a non-zero power of
    /// two.
    pub fn new(shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        ShardMap {
            mask: shards as u64 - 1,
        }
    }

    /// Current number of shards.
    pub fn shards(&self) -> usize {
        self.mask as usize + 1
    }

    /// The shard owning `hash`.
    pub fn shard_of(&self, hash: u64) -> usize {
        (hash & self.mask) as usize
    }

    /// Doubles the shard count.  Shard `i`'s keys split between `i` and
    /// `i + old_count`.
    pub fn split(&mut self) {
        self.mask = (self.mask << 1) | 1;
    }

    /// Halves the shard count.  Shard `i + new_count` folds into `i`.
    pub fn merge(&mut self) {
        assert!(self.shards() > 1, "cannot merge a single shard");
        self.mask >>= 1;
    }

    /// The child shard that receives the moving half of `parent` when
    /// this (already split) map doubled from `shards() / 2` shards.
    pub fn child_of(&self, parent: usize) -> usize {
        parent + self.shards() / 2
    }
}

/// How stream events are distributed over the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// Both streams are hashed by their join key ([`JoinPredicate::r_key`]
    /// / [`JoinPredicate::s_key`]): matching tuples land in the same shard
    /// by construction.  Requires a predicate with both key extractors
    /// (equi-joins).
    CoPartition,
    /// Keyless fallback (band joins): R is partitioned by a hash of its
    /// sequence number, S (and S expiries) are broadcast to every shard.
    /// Each `(r, s)` pair is examined in exactly one shard — the one
    /// owning `r` — so the union of shard outputs has no duplicates.
    FragmentReplicate,
}

impl RouteMode {
    /// Picks the mode a predicate supports: co-partitioning when both key
    /// extractors exist, fragment-and-replicate otherwise.
    pub fn for_predicate<R, S, P: JoinPredicate<R, S>>(predicate: &P) -> RouteMode {
        if predicate.supports_index() {
            RouteMode::CoPartition
        } else {
            RouteMode::FragmentReplicate
        }
    }
}

/// The shard(s) one stream event must visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Deliver to exactly this shard.
    One(usize),
    /// Broadcast to every shard (fragment-replicate S side).
    All,
}

impl Route {
    /// The target shard indices, given the current shard count.
    pub fn targets(self, shards: usize) -> impl Iterator<Item = usize> {
        let (one, all) = match self {
            Route::One(i) => (Some(i), None),
            Route::All => (None, Some(0..shards)),
        };
        one.into_iter().chain(all.into_iter().flatten())
    }
}

/// Routes a driver schedule's events across the shards of a mesh and
/// remembers, per sequence number, the hash that placed each tuple.
///
/// Recording the full 64-bit hash (rather than the shard index) is what
/// makes expiries and resharding cheap: the route of a past tuple under
/// *any* shard count is `hash & mask`, so a split or merge never rewrites
/// the table — it just changes the mask consulted on the next lookup.
#[derive(Debug)]
pub struct ShardRouter<R, S, P> {
    predicate: P,
    mode: RouteMode,
    map: ShardMap,
    /// Hash of R tuple `seq`, indexed densely by `seq.0`.
    r_hash: Vec<u64>,
    /// Hash of S tuple `seq` (co-partition mode only).
    s_hash: Vec<u64>,
    _marker: std::marker::PhantomData<fn() -> (R, S)>,
}

impl<R, S, P: JoinPredicate<R, S>> ShardRouter<R, S, P> {
    /// Creates a router over `shards` shards (a non-zero power of two).
    pub fn new(predicate: P, mode: RouteMode, shards: usize) -> Self {
        ShardRouter {
            predicate,
            mode,
            map: ShardMap::new(shards),
            r_hash: Vec::new(),
            s_hash: Vec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Current number of shards.
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// The routing mode in force.
    pub fn mode(&self) -> RouteMode {
        self.mode
    }

    /// The current shard map.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Routes one stream event, recording arrival hashes so that later
    /// expiries (and reshardings) find the tuple's owner.
    pub fn route(&mut self, event: &StreamEvent<R, S>) -> Route {
        match event {
            StreamEvent::ArrivalR(t) => {
                let hash = match self.mode {
                    RouteMode::CoPartition => mix64(
                        self.predicate
                            .r_key(&t.payload)
                            .expect("co-partitioned mesh requires r_key"),
                    ),
                    RouteMode::FragmentReplicate => mix64(t.seq.0),
                };
                record(&mut self.r_hash, t.seq, hash);
                Route::One(self.map.shard_of(hash))
            }
            StreamEvent::ArrivalS(t) => match self.mode {
                RouteMode::CoPartition => {
                    let hash = mix64(
                        self.predicate
                            .s_key(&t.payload)
                            .expect("co-partitioned mesh requires s_key"),
                    );
                    record(&mut self.s_hash, t.seq, hash);
                    Route::One(self.map.shard_of(hash))
                }
                RouteMode::FragmentReplicate => Route::All,
            },
            StreamEvent::ExpireR(seq) => Route::One(self.shard_of_r(*seq)),
            StreamEvent::ExpireS(seq) => match self.mode {
                RouteMode::CoPartition => Route::One(self.shard_of_s(*seq)),
                RouteMode::FragmentReplicate => Route::All,
            },
        }
    }

    /// The shard currently owning the R tuple with sequence number `seq`.
    pub fn shard_of_r(&self, seq: SeqNo) -> usize {
        self.map.shard_of(self.r_hash[seq.0 as usize])
    }

    /// The shard currently owning the S tuple `seq` (co-partition only).
    pub fn shard_of_s(&self, seq: SeqNo) -> usize {
        self.map.shard_of(self.s_hash[seq.0 as usize])
    }

    /// Re-records the placement hash of a recovered R tuple.
    ///
    /// A crashed router's hash tables die with it, but they are fully
    /// reconstructible: every resident tuple survives in some shard's
    /// checkpointed [`WindowSegment`], and the hash is a pure function of
    /// the routing mode (join key under co-partitioning, sequence number
    /// under fragment-replicate).  Recovery walks the checkpointed rows
    /// through this method so post-recovery expiries and reshardings find
    /// their owners exactly as before the crash.
    pub fn reseed_r(&mut self, seq: SeqNo, payload: &R) {
        let hash = match self.mode {
            RouteMode::CoPartition => mix64(
                self.predicate
                    .r_key(payload)
                    .expect("co-partitioned mesh requires r_key"),
            ),
            RouteMode::FragmentReplicate => mix64(seq.0),
        };
        record(&mut self.r_hash, seq, hash);
    }

    /// Re-records the placement hash of a recovered S tuple; see
    /// [`ShardRouter::reseed_r`].  A no-op under fragment-replicate, where
    /// S is broadcast and no table is kept.
    pub fn reseed_s(&mut self, seq: SeqNo, payload: &S) {
        if self.mode == RouteMode::CoPartition {
            let hash = mix64(
                self.predicate
                    .s_key(payload)
                    .expect("co-partitioned mesh requires s_key"),
            );
            record(&mut self.s_hash, seq, hash);
        }
    }

    /// Doubles the shard count.  Call *before* partitioning the parents'
    /// exported state with [`ShardRouter::split_segment`].
    pub fn split(&mut self) {
        self.map.split();
    }

    /// Halves the shard count.
    pub fn merge(&mut self) {
        self.map.merge();
    }

    /// Partitions one exported parent-node segment between the parent
    /// shard and its split child under the (already doubled) map.
    ///
    /// R rows follow their recorded hash.  S rows follow theirs under
    /// co-partitioning; under fragment-replicate the S window is a
    /// broadcast copy, so the child receives a clone and the parent keeps
    /// the original.
    pub fn split_segment(
        &self,
        parent: usize,
        segment: WindowSegment<R, S>,
    ) -> (WindowSegment<R, S>, WindowSegment<R, S>)
    where
        R: Clone,
        S: Clone,
    {
        let child = self.map.child_of(parent);
        let mut keep = WindowSegment::empty();
        let mut moved = WindowSegment::empty();
        for r in segment.wr {
            let to = self.map.shard_of(self.r_hash[r.seq.0 as usize]);
            debug_assert!(
                to == parent || to == child,
                "split of shard {parent} scattered an R row to shard {to}"
            );
            if to == parent {
                keep.wr.push(r);
            } else {
                moved.wr.push(r);
            }
        }
        match self.mode {
            RouteMode::CoPartition => {
                for s in segment.ws {
                    let to = self.map.shard_of(self.s_hash[s.seq.0 as usize]);
                    debug_assert!(
                        to == parent || to == child,
                        "split of shard {parent} scattered an S row to shard {to}"
                    );
                    if to == parent {
                        keep.ws.push(s);
                    } else {
                        moved.ws.push(s);
                    }
                }
            }
            RouteMode::FragmentReplicate => {
                moved.ws = segment.ws.clone();
                keep.ws = segment.ws;
            }
        }
        (keep, moved)
    }

    /// Prepares a child-node segment for installation into the parent on a
    /// shard merge.  Under fragment-replicate the child's S rows are
    /// broadcast copies of the parent's own — installing them again would
    /// double the S window and duplicate results — so they are dropped;
    /// under co-partitioning the key spaces were disjoint and everything
    /// moves.
    pub fn merge_segment(&self, mut segment: WindowSegment<R, S>) -> WindowSegment<R, S> {
        if self.mode == RouteMode::FragmentReplicate {
            segment.ws.clear();
        }
        segment
    }
}

fn record(table: &mut Vec<u64>, seq: SeqNo, hash: u64) {
    let idx = seq.0 as usize;
    if table.len() <= idx {
        table.resize(idx + 1, 0);
    }
    table[idx] = hash;
}

/// Merges `N` individually valid punctuated streams into one valid,
/// monotone punctuated stream (the mesh's global output).
///
/// Each input stream `i` maintains a *frontier* `f_i` — the value of its
/// latest consumed punctuation, `0` initially and `∞` once the stream is
/// exhausted.  The merge repeatedly picks the non-exhausted stream with
/// the smallest frontier (ties to the lowest index) and consumes it up to
/// and including its next punctuation (or to its end), then emits a
/// global punctuation `g = min_i f_i` whenever that minimum rose.
///
/// *Validity*: a result consumed from stream `i` follows `i`'s latest
/// punctuation, so its timestamp is `>= f_i`; `i` was the minimum, so
/// `f_i >= g` for every global punctuation `g` emitted so far.
/// *Monotonicity*: `g` is only emitted when it rises.
pub fn merge_punctuated_streams<T>(streams: Vec<Vec<OutputItem<T>>>) -> Vec<OutputItem<T>> {
    let n = streams.len();
    let mut streams: Vec<std::vec::IntoIter<OutputItem<T>>> =
        streams.into_iter().map(Vec::into_iter).collect();
    // `None` = exhausted (frontier ∞).
    let mut frontiers: Vec<Option<Timestamp>> = vec![Some(Timestamp::ZERO); n];
    let mut out = Vec::new();
    let mut emitted = Timestamp::ZERO;
    while let Some(i) = frontiers
        .iter()
        .enumerate()
        .filter_map(|(i, f)| f.map(|ts| (i, ts)))
        .min_by_key(|&(i, ts)| (ts, i))
        .map(|(i, _)| i)
    {
        // Consume stream i up to and including its next punctuation.
        let mut advanced = false;
        for item in streams[i].by_ref() {
            match item {
                OutputItem::Result(_) => out.push(item),
                OutputItem::Punctuation(p) => {
                    frontiers[i] = Some(p.ts);
                    advanced = true;
                    break;
                }
            }
        }
        if !advanced {
            // No punctuation left: trailing results were just drained.
            frontiers[i] = None;
        }
        let global = frontiers.iter().flatten().copied().min();
        if let Some(g) = global {
            if g > emitted {
                emitted = g;
                out.push(OutputItem::Punctuation(crate::punctuation::Punctuation {
                    ts: g,
                }));
            }
        }
    }
    out
}

/// One step of a deterministic mesh steering plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshStep {
    /// Apply this step once the router has consumed this many schedule
    /// events.
    pub after_events: usize,
    /// Target shard count (a non-zero power of two; reached by repeated
    /// splits or merges).
    pub shards: usize,
    /// Target per-shard chain width.
    pub width: usize,
}

/// A deterministic reshaping plan, honoured identically by the threaded
/// mesh and its simulator mirror — the mesh analogue of a single chain's
/// `ScalePlan`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeshPlan {
    /// Steps in increasing `after_events` order.
    pub steps: Vec<MeshStep>,
}

impl MeshPlan {
    /// A plan with no reshaping.
    pub fn none() -> Self {
        MeshPlan::default()
    }

    /// A plan from `(after_events, shards, width)` triples.
    pub fn from_steps(steps: &[(usize, usize, usize)]) -> Self {
        let steps = steps
            .iter()
            .map(|&(after_events, shards, width)| MeshStep {
                after_events,
                shards,
                width,
            })
            .collect();
        MeshPlan { steps }
    }
}

/// What a [`MeshAutoscalePolicy`] wants done with the shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeshDecision {
    /// Double the shard count.
    Split,
    /// Halve the shard count.
    Merge,
    /// Leave the mesh as it is.
    Hold,
}

/// Pure split/merge decision function for the mesh's second scaling axis.
///
/// The per-chain width axis keeps the existing closed-loop
/// [`crate::metrics::AutoscalePolicy`]; the shard-count axis adds this
/// stateless threshold rule on the observed per-shard arrival rate.  The
/// threaded runtime's controller thread still steers a *single* chain —
/// mesh reshaping is driven deterministically through [`MeshPlan`] on
/// both substrates, with this policy available to compute those plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshAutoscalePolicy {
    /// Split when the per-shard arrival rate (tuples/sec) exceeds this.
    pub split_above: f64,
    /// Merge when the per-shard arrival rate falls below this.
    pub merge_below: f64,
    /// Never split beyond this many shards.
    pub max_shards: usize,
    /// Never merge below this many shards.
    pub min_shards: usize,
}

impl MeshAutoscalePolicy {
    /// The decision for a mesh of `shards` shards seeing `per_shard_rate`
    /// arrivals per second per shard.
    pub fn decide(&self, shards: usize, per_shard_rate: f64) -> MeshDecision {
        debug_assert!(
            self.merge_below * 2.0 <= self.split_above,
            "thresholds must leave hysteresis: halving the load after a \
             split must not immediately trigger a merge"
        );
        if per_shard_rate > self.split_above && shards * 2 <= self.max_shards {
            MeshDecision::Split
        } else if per_shard_rate < self.merge_below && shards > self.min_shards.max(1) {
            MeshDecision::Merge
        } else {
            MeshDecision::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{EquiPredicate, FnPredicate};
    use crate::punctuation::{verify_punctuated_stream, Punctuation};
    use crate::tuple::StreamTuple;

    fn r_tuple(seq: u64, key: u64) -> StreamTuple<u64> {
        StreamTuple::new(SeqNo(seq), Timestamp::from_millis(seq), key)
    }

    #[test]
    fn shard_map_split_is_local_and_merge_inverts_it() {
        let mut map = ShardMap::new(4);
        let hashes: Vec<u64> = (0..256u64).map(mix64).collect();
        let before: Vec<usize> = hashes.iter().map(|&h| map.shard_of(h)).collect();
        map.split();
        assert_eq!(map.shards(), 8);
        for (&h, &old) in hashes.iter().zip(&before) {
            let new = map.shard_of(h);
            assert!(
                new == old || new == old + 4,
                "hash moved from shard {old} to unrelated shard {new}"
            );
            assert_eq!(map.child_of(old), old + 4);
        }
        map.merge();
        let after: Vec<usize> = hashes.iter().map(|&h| map.shard_of(h)).collect();
        assert_eq!(before, after, "merge must undo the split exactly");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shard_map_rejects_non_power_of_two() {
        let _ = ShardMap::new(3);
    }

    #[test]
    fn co_partition_routes_matching_keys_to_the_same_shard() {
        let pred = EquiPredicate::new(|r: &u64| *r, |s: &u64| *s);
        assert_eq!(RouteMode::for_predicate(&pred), RouteMode::CoPartition);
        let mut router = ShardRouter::new(pred, RouteMode::CoPartition, 4);
        for key in 0..64u64 {
            let r = router.route(&StreamEvent::ArrivalR(r_tuple(key, key)));
            let s = router.route(&StreamEvent::<u64, u64>::ArrivalS(r_tuple(key, key)));
            assert_eq!(r, s, "equal keys must co-locate");
            // Expiries follow the recorded hash to the same shard.
            assert_eq!(router.route(&StreamEvent::ExpireR(SeqNo(key))), r);
            assert_eq!(router.route(&StreamEvent::ExpireS(SeqNo(key))), s);
        }
    }

    #[test]
    fn fragment_replicate_broadcasts_s_and_partitions_r() {
        let pred = FnPredicate(|r: &u64, s: &u64| r.abs_diff(*s) <= 1);
        assert_eq!(
            RouteMode::for_predicate(&pred),
            RouteMode::FragmentReplicate
        );
        let mut router = ShardRouter::new(pred, RouteMode::FragmentReplicate, 4);
        let mut seen = [false; 4];
        for seq in 0..64u64 {
            match router.route(&StreamEvent::ArrivalR(r_tuple(seq, seq))) {
                Route::One(i) => seen[i] = true,
                Route::All => panic!("R must not broadcast"),
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "seq hashing should reach all shards"
        );
        let s_route = router.route(&StreamEvent::<u64, u64>::ArrivalS(r_tuple(0, 0)));
        assert_eq!(s_route, Route::All);
        assert_eq!(s_route.targets(4).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(router.route(&StreamEvent::ExpireS(SeqNo(0))), Route::All);
        // R expiries still go to the one shard owning the tuple.
        assert!(matches!(
            router.route(&StreamEvent::ExpireR(SeqNo(7))),
            Route::One(_)
        ));
    }

    #[test]
    fn split_segment_partitions_r_by_hash_and_replicates_s_for_bands() {
        let pred = FnPredicate(|r: &u64, s: &u64| r == s);
        let mut router = ShardRouter::new(pred, RouteMode::FragmentReplicate, 1);
        let mut wr = Vec::new();
        for seq in 0..32u64 {
            router.route(&StreamEvent::ArrivalR(r_tuple(seq, seq)));
            wr.push(r_tuple(seq, seq));
        }
        let ws = vec![r_tuple(100, 100), r_tuple(101, 101)];
        router.split();
        let (keep, moved) = router.split_segment(0, WindowSegment { wr, ws: ws.clone() });
        assert_eq!(keep.wr.len() + moved.wr.len(), 32);
        assert!(!keep.wr.is_empty() && !moved.wr.is_empty());
        for r in &keep.wr {
            assert_eq!(router.shard_of_r(r.seq), 0);
        }
        for r in &moved.wr {
            assert_eq!(router.shard_of_r(r.seq), 1);
        }
        // Band mode: both halves carry the full broadcast S window...
        assert_eq!(keep.ws, ws);
        assert_eq!(moved.ws, ws);
        // ...and a later merge drops the child's copy again.
        let merged = router.merge_segment(moved);
        assert!(merged.ws.is_empty());
        assert!(!merged.wr.is_empty());
    }

    #[test]
    fn split_segment_partitions_both_sides_under_co_partitioning() {
        let pred = EquiPredicate::new(|r: &u64| *r, |s: &u64| *s);
        let mut router = ShardRouter::new(pred, RouteMode::CoPartition, 2);
        let mut wr = Vec::new();
        let mut ws = Vec::new();
        for key in 0..48u64 {
            let t = r_tuple(key, key);
            // Keep only shard 0's residents, mirroring one parent node.
            if router.route(&StreamEvent::ArrivalR(t.clone())) == Route::One(0) {
                wr.push(t.clone());
                ws.push(t.clone());
            }
            router.route(&StreamEvent::<u64, u64>::ArrivalS(t));
        }
        router.split();
        let (keep, moved) = router.split_segment(0, WindowSegment { wr, ws });
        // Co-partitioning: R and S of the same key travel together.
        let keep_keys: Vec<u64> = keep.wr.iter().map(|t| t.seq.0).collect();
        let keep_s: Vec<u64> = keep.ws.iter().map(|t| t.seq.0).collect();
        assert_eq!(keep_keys, keep_s);
        let moved_keys: Vec<u64> = moved.wr.iter().map(|t| t.seq.0).collect();
        let moved_s: Vec<u64> = moved.ws.iter().map(|t| t.seq.0).collect();
        assert_eq!(moved_keys, moved_s);
        assert!(
            !moved_keys.is_empty(),
            "a 2-way split should move something"
        );
    }

    #[test]
    fn reseeded_router_recovers_the_routes_of_a_crashed_one() {
        let pred = EquiPredicate::new(|r: &u64| *r, |s: &u64| *s);
        let mut original = ShardRouter::new(pred.clone(), RouteMode::CoPartition, 4);
        let mut fr_original = ShardRouter::new(
            FnPredicate(|r: &u64, s: &u64| r == s),
            RouteMode::FragmentReplicate,
            4,
        );
        for key in 0..64u64 {
            original.route(&StreamEvent::ArrivalR(r_tuple(key, key * 7)));
            original.route(&StreamEvent::<u64, u64>::ArrivalS(r_tuple(key, key * 3)));
            fr_original.route(&StreamEvent::ArrivalR(r_tuple(key, key)));
        }
        // A recovered router sees only the checkpointed rows, not the
        // original arrival events.
        let mut recovered = ShardRouter::new(pred, RouteMode::CoPartition, 4);
        let mut fr_recovered = ShardRouter::new(
            FnPredicate(|r: &u64, s: &u64| r == s),
            RouteMode::FragmentReplicate,
            4,
        );
        for key in 0..64u64 {
            recovered.reseed_r(SeqNo(key), &(key * 7));
            recovered.reseed_s(SeqNo(key), &(key * 3));
            fr_recovered.reseed_r(SeqNo(key), &key);
        }
        for key in 0..64u64 {
            assert_eq!(
                recovered.shard_of_r(SeqNo(key)),
                original.shard_of_r(SeqNo(key))
            );
            assert_eq!(
                recovered.shard_of_s(SeqNo(key)),
                original.shard_of_s(SeqNo(key))
            );
            assert_eq!(
                fr_recovered.shard_of_r(SeqNo(key)),
                fr_original.shard_of_r(SeqNo(key))
            );
        }
    }

    fn result(ts: u64) -> OutputItem<u64> {
        OutputItem::Result(ts)
    }

    fn punct(ts: u64) -> OutputItem<u64> {
        OutputItem::Punctuation(Punctuation {
            ts: Timestamp::from_millis(ts),
        })
    }

    #[test]
    fn frontier_merge_is_valid_monotone_and_lossless() {
        let streams = vec![
            vec![result(1), punct(2), result(5), punct(9), result(12)],
            vec![result(2), punct(4), result(4), result(7), punct(7)],
            vec![punct(10), result(11)],
        ];
        let merged = merge_punctuated_streams(streams);
        verify_punctuated_stream(&merged, |&ts| Timestamp::from_millis(ts))
            .expect("merged stream must stay valid");
        let mut results: Vec<u64> = merged
            .iter()
            .filter_map(|i| i.as_result().copied())
            .collect();
        results.sort_unstable();
        assert_eq!(results, vec![1, 2, 4, 5, 7, 11, 12]);
        let puncts: Vec<Timestamp> = merged
            .iter()
            .filter_map(|i| i.as_punctuation())
            .map(|p| p.ts)
            .collect();
        assert!(puncts.windows(2).all(|w| w[0] < w[1]));
        // Exhausted streams stop constraining the frontier (they can emit
        // nothing further), so the merge ends at stream 2's final mark.
        assert_eq!(puncts.last(), Some(&Timestamp::from_millis(10)));
    }

    #[test]
    fn frontier_merge_handles_empty_and_punctuation_free_streams() {
        let merged = merge_punctuated_streams::<u64>(vec![vec![], vec![result(3), result(1)]]);
        let results: Vec<u64> = merged
            .iter()
            .filter_map(|i| i.as_result().copied())
            .collect();
        assert_eq!(results, vec![3, 1], "order within one stream is preserved");
        assert!(merged.iter().all(|i| i.as_punctuation().is_none()));
        assert!(merge_punctuated_streams::<u64>(Vec::new()).is_empty());
    }

    #[test]
    fn mesh_policy_splits_and_merges_with_hysteresis() {
        let policy = MeshAutoscalePolicy {
            split_above: 1000.0,
            merge_below: 300.0,
            max_shards: 8,
            min_shards: 1,
        };
        assert_eq!(policy.decide(2, 1500.0), MeshDecision::Split);
        assert_eq!(policy.decide(8, 1500.0), MeshDecision::Hold);
        assert_eq!(policy.decide(4, 200.0), MeshDecision::Merge);
        assert_eq!(policy.decide(1, 200.0), MeshDecision::Hold);
        assert_eq!(policy.decide(4, 600.0), MeshDecision::Hold);
        // A split halves the per-shard rate; hysteresis keeps it split.
        assert_eq!(policy.decide(4, 750.0), MeshDecision::Hold);
    }
}
