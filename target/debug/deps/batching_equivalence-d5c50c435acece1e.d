/root/repo/target/debug/deps/batching_equivalence-d5c50c435acece1e.d: tests/batching_equivalence.rs

/root/repo/target/debug/deps/batching_equivalence-d5c50c435acece1e: tests/batching_equivalence.rs

tests/batching_equivalence.rs:
