//! # llhj-core — Low-Latency Handshake Join, core library
//!
//! This crate implements the data model and the per-core algorithms of
//! *"Low-Latency Handshake Join"* (Roy, Teubner, Gemulla; PVLDB 7(9), 2014):
//!
//! * the **low-latency handshake join** node state machine
//!   ([`LlhjNode`]) with tuple expedition, home nodes, the
//!   acknowledgement protocol and expedition-end messages (Section 4);
//! * the **original handshake join** node state machine ([`HsjNode`]),
//!   the baseline whose latency the paper analyses (Sections 2.3 and 3);
//! * sliding **windows** and the external window **driver** that turns raw
//!   arrivals into a totally ordered schedule of arrival/expiry events;
//! * **punctuations** and high-water marks for ordered output
//!   (Sections 5 and 6) plus the punctuation-driven [`SortingOperator`];
//! * the **analytic latency model** of Section 3.1;
//! * node-local **hash indexing** for equi-join acceleration (Section 7.6);
//! * the **auto-scale control policy** ([`metrics`]) shared by the
//!   threaded runtime's controller thread and the simulator's
//!   deterministic mirror.
//!
//! The node state machines are engine agnostic: they consume messages and
//! append to [`NodeOutput`] buffers.  The `llhj-runtime` crate drives them
//! with one thread per node and crossbeam FIFO channels; the `llhj-sim`
//! crate drives them inside a deterministic discrete-event simulator used
//! to regenerate the paper's figures.
//!
//! ## Quick example
//!
//! ```
//! use llhj_core::prelude::*;
//!
//! // A two-node pipeline joining small integer streams on equality.
//! let pred = FnPredicate(|r: &u32, s: &u32| r == s);
//! let mut left = LlhjNode::new(0, 2, pred.clone());
//! let mut right = LlhjNode::new(1, 2, pred);
//! let mut out = NodeOutput::new();
//!
//! // An R tuple enters on the left, is stored on node 0 and expedited.
//! let r = StreamTuple::new(SeqNo(0), Timestamp::from_millis(1), 7u32);
//! left.handle_left(LeftToRight::ArrivalR(PipelineTuple::fresh(r, 0)), &mut out);
//! let forwarded = out.to_right.pop().unwrap();
//! right.handle_left(forwarded, &mut out);
//! // The rightmost node announces the end of the tuple's expedition; the
//! // marker travels back and clears the expedition flag at the home node.
//! let expedition_end = out.to_left.pop().unwrap();
//! left.handle_right(expedition_end, &mut out);
//!
//! // A matching S tuple enters on the right and joins against the stored copy.
//! out.clear();
//! let s = StreamTuple::new(SeqNo(0), Timestamp::from_millis(2), 7u32);
//! right.handle_right(RightToLeft::ArrivalS(PipelineTuple::fresh(s, 1)), &mut out);
//! let to_left = out.to_left.clone();
//! for msg in to_left {
//!     left.handle_right(msg, &mut out);
//! }
//! assert_eq!(out.results.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod driver;
pub mod homing;
pub mod latency_model;
pub mod message;
pub mod metrics;
pub mod node;
pub mod node_hsj;
pub mod node_llhj;
pub mod predicate;
pub mod punctuation;
pub mod rebalance;
pub mod result;
pub mod shard;
pub mod sorter;
pub mod stats;
pub mod store;
pub mod time;
pub mod tuple;
pub mod window;

pub use checkpoint::{
    encode_delta, encode_full, load_checkpoint, load_latest_checkpoint, load_latest_mesh,
    splice_recovered_stream, ByteReader, ChainCheckpoint, ChainCheckpointer, CheckpointError,
    CheckpointPayload, CheckpointStore, DirStore, MemoryStore, ReplayLog,
};
pub use driver::{DriverEvent, DriverSchedule, Injector, StreamEvent};
pub use homing::{HashKey, HomePolicy, Pinned, RoundRobin};
pub use latency_model::{
    hsj_expected_latency, hsj_latency_at_position, hsj_max_latency, hsj_warmup, LlhjLatencyModel,
};
pub use message::{
    Direction, Handoff, LeftToRight, MessageBatch, NodeOutput, RightToLeft, WindowSegment,
};
pub use metrics::{
    AutoscaleDecision, AutoscalePolicy, AutoscaleReport, LatencyEwma, MetricsSample, PolicyState,
    ResizeDecision,
};
pub use node::{ElasticError, PipelineNode};
pub use node_hsj::{FlowPolicy, HsjNode, HsjOutput, SegmentCapacity};
pub use node_llhj::{LlhjNode, LlhjOutput};
pub use predicate::{
    AlwaysFalse, AlwaysTrue, BandSpec, EquiPredicate, FnPredicate, JoinPredicate, ScalarOnly,
};
pub use punctuation::{verify_punctuated_stream, HighWaterMarks, OutputItem, Punctuation};
pub use rebalance::{EdgeTransfer, FlowConstraint, MigrationConstraint, RedistributionPlan};
pub use result::{ResultTuple, TimedResult};
pub use shard::{
    merge_punctuated_streams, mix64, MeshAutoscalePolicy, MeshDecision, MeshPlan, MeshStep, Route,
    RouteMode, ShardMap, ShardRouter,
};
pub use sorter::SortingOperator;
pub use stats::{LatencyPoint, LatencySeries, LatencySummary, NodeCounters};
pub use store::{ColumnarPayload, ColumnarWindow, IwsBuffer, KeyFn, LocalWindow, ProbeCost};
pub use time::{TimeDelta, Timestamp};
pub use tuple::{NodeId, PipelineTuple, SeqNo, Side, StreamTuple};
pub use window::{Expiry, WindowSpec, WindowTracker};

/// Convenience prelude re-exporting the types needed by typical users.
pub mod prelude {
    pub use crate::checkpoint::{
        load_latest_checkpoint, load_latest_mesh, splice_recovered_stream, ChainCheckpoint,
        ChainCheckpointer, CheckpointError, CheckpointPayload, CheckpointStore, DirStore,
        MemoryStore, ReplayLog,
    };
    pub use crate::driver::{DriverEvent, DriverSchedule, Injector, StreamEvent};
    pub use crate::homing::{HashKey, HomePolicy, Pinned, RoundRobin};
    pub use crate::message::{
        Direction, Handoff, LeftToRight, MessageBatch, NodeOutput, RightToLeft, WindowSegment,
    };
    pub use crate::metrics::{
        AutoscaleDecision, AutoscalePolicy, AutoscaleReport, LatencyEwma, MetricsSample,
        PolicyState, ResizeDecision,
    };
    pub use crate::node::{ElasticError, PipelineNode};
    pub use crate::node_hsj::{FlowPolicy, HsjNode, HsjOutput, SegmentCapacity};
    pub use crate::node_llhj::{LlhjNode, LlhjOutput};
    pub use crate::predicate::{BandSpec, EquiPredicate, FnPredicate, JoinPredicate, ScalarOnly};
    pub use crate::punctuation::{HighWaterMarks, OutputItem, Punctuation};
    pub use crate::rebalance::{
        EdgeTransfer, FlowConstraint, MigrationConstraint, RedistributionPlan,
    };
    pub use crate::result::{ResultTuple, TimedResult};
    pub use crate::shard::{
        merge_punctuated_streams, MeshAutoscalePolicy, MeshDecision, MeshPlan, MeshStep, Route,
        RouteMode, ShardMap, ShardRouter,
    };
    pub use crate::sorter::SortingOperator;
    pub use crate::stats::{LatencySeries, LatencySummary, NodeCounters};
    pub use crate::time::{TimeDelta, Timestamp};
    pub use crate::tuple::{NodeId, PipelineTuple, SeqNo, Side, StreamTuple};
    pub use crate::window::WindowSpec;
}
