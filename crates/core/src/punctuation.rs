//! Punctuations and high-water marks (Sections 5 and 6 of the paper).
//!
//! Low-latency handshake join can generate *punctuations* — explicit
//! markers in the result stream guaranteeing that no later result will
//! carry a timestamp below the punctuation value.  The mechanism is cheap:
//! each pipeline end maintains a *high-water mark*, the largest timestamp
//! of any input tuple that has finished its expedition there, and the
//! collector emits `min(t_max,R, t_max,S)` as a punctuation after every
//! vacuuming cycle.

use crate::time::Timestamp;
use llhj_sync::sync::atomic::{AtomicU64, Ordering};
use llhj_sync::sync::Arc;

/// High-water marks of both input streams.
///
/// The marks are updated by whichever component observes a tuple reaching
/// the end of its pipeline traversal: the rightmost node for R tuples, the
/// leftmost node for S tuples.
///
/// ### Memory ordering
///
/// A mark is a *publication*: the worker enqueues the tuple's result
/// frames first and advances the mark second, and the collector's safety
/// argument ("every result at or below the mark is already in my input
/// queues") depends on observing those enqueues once it reads the mark.
/// The updates are therefore `Release` and the reads `Acquire` — a
/// `Relaxed` mark would let the collector emit a punctuation whose
/// results it cannot yet see.  (The model checker covers the
/// *interleaving* half of this argument; the acquire/release pair covers
/// the weak-memory half.)
#[derive(Debug, Default)]
pub struct HighWaterMarks {
    r_micros: AtomicU64,
    s_micros: AtomicU64,
}

impl HighWaterMarks {
    /// Creates marks at time zero, wrapped for sharing.
    pub fn new() -> Arc<Self> {
        Arc::new(HighWaterMarks::default())
    }

    /// Records that an R tuple with timestamp `ts` reached the right end.
    /// `Release`: publishes the result enqueues that preceded the call
    /// (see the type-level ordering note).
    pub fn observe_r(&self, ts: Timestamp) {
        self.r_micros.fetch_max(ts.as_micros(), Ordering::Release);
    }

    /// Records that an S tuple with timestamp `ts` reached the left end.
    /// `Release`, as for [`observe_r`](HighWaterMarks::observe_r).
    pub fn observe_s(&self, ts: Timestamp) {
        self.s_micros.fetch_max(ts.as_micros(), Ordering::Release);
    }

    /// Current high-water mark of stream R.  `Acquire` pairs with the
    /// `Release` in [`observe_r`](HighWaterMarks::observe_r).
    pub fn r(&self) -> Timestamp {
        Timestamp::from_micros(self.r_micros.load(Ordering::Acquire))
    }

    /// Current high-water mark of stream S.  `Acquire` pairs with the
    /// `Release` in [`observe_s`](HighWaterMarks::observe_s).
    pub fn s(&self) -> Timestamp {
        Timestamp::from_micros(self.s_micros.load(Ordering::Acquire))
    }

    /// The punctuation value that is currently safe to emit:
    /// `min(t_max,R, t_max,S)` (Section 6.1.2).
    pub fn safe_punctuation(&self) -> Timestamp {
        self.r().min(self.s())
    }
}

/// A punctuation: a guarantee that every result tuple following it in the
/// physical output stream has a timestamp of at least `ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Punctuation {
    /// The guaranteed lower bound on future result timestamps.
    pub ts: Timestamp,
}

/// One element of a punctuated physical output stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputItem<T> {
    /// A join result.
    Result(T),
    /// A punctuation marker.
    Punctuation(Punctuation),
}

impl<T> OutputItem<T> {
    /// Returns the contained result, if any.
    pub fn as_result(&self) -> Option<&T> {
        match self {
            OutputItem::Result(r) => Some(r),
            OutputItem::Punctuation(_) => None,
        }
    }

    /// Returns the punctuation, if any.
    pub fn as_punctuation(&self) -> Option<Punctuation> {
        match self {
            OutputItem::Result(_) => None,
            OutputItem::Punctuation(p) => Some(*p),
        }
    }
}

/// Checks that a punctuated stream honours its guarantees: every result
/// that appears after a punctuation `⌈tp⌉` has a timestamp `>= tp`, and
/// punctuation values never decrease.  Returns the index of the first
/// offending element, if any.  Used extensively by tests.
pub fn verify_punctuated_stream<T>(
    items: &[OutputItem<T>],
    result_ts: impl Fn(&T) -> Timestamp,
) -> Result<(), usize> {
    let mut current = Timestamp::ZERO;
    for (idx, item) in items.iter().enumerate() {
        match item {
            OutputItem::Punctuation(p) => {
                if p.ts < current {
                    return Err(idx);
                }
                current = p.ts;
            }
            OutputItem::Result(r) => {
                if result_ts(r) < current {
                    return Err(idx);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_water_marks_are_monotone() {
        let hwm = HighWaterMarks::new();
        hwm.observe_r(Timestamp::from_secs(5));
        hwm.observe_r(Timestamp::from_secs(3));
        assert_eq!(hwm.r(), Timestamp::from_secs(5), "marks never regress");
        hwm.observe_s(Timestamp::from_secs(2));
        assert_eq!(hwm.s(), Timestamp::from_secs(2));
        assert_eq!(hwm.safe_punctuation(), Timestamp::from_secs(2));
        hwm.observe_s(Timestamp::from_secs(9));
        assert_eq!(hwm.safe_punctuation(), Timestamp::from_secs(5));
    }

    #[test]
    fn fresh_marks_allow_zero_punctuation_only() {
        let hwm = HighWaterMarks::new();
        assert_eq!(hwm.safe_punctuation(), Timestamp::ZERO);
    }

    #[test]
    fn output_item_accessors() {
        let r: OutputItem<u32> = OutputItem::Result(7);
        let p: OutputItem<u32> = OutputItem::Punctuation(Punctuation {
            ts: Timestamp::from_secs(1),
        });
        assert_eq!(r.as_result(), Some(&7));
        assert_eq!(r.as_punctuation(), None);
        assert_eq!(p.as_result(), None);
        assert_eq!(p.as_punctuation().unwrap().ts, Timestamp::from_secs(1));
    }

    #[test]
    fn stream_verification_detects_violations() {
        let ts = |v: &u64| Timestamp::from_secs(*v);
        let good = vec![
            OutputItem::Result(1),
            OutputItem::Punctuation(Punctuation {
                ts: Timestamp::from_secs(1),
            }),
            OutputItem::Result(5),
            OutputItem::Result(1),
            OutputItem::Punctuation(Punctuation {
                ts: Timestamp::from_secs(4),
            }),
            OutputItem::Result(4),
        ];
        assert_eq!(verify_punctuated_stream(&good, ts), Ok(()));

        let late_result = vec![
            OutputItem::Punctuation(Punctuation {
                ts: Timestamp::from_secs(3),
            }),
            OutputItem::Result(2),
        ];
        assert_eq!(verify_punctuated_stream(&late_result, ts), Err(1));

        let regressing = vec![
            OutputItem::Punctuation(Punctuation {
                ts: Timestamp::from_secs(3),
            }),
            OutputItem::Punctuation(Punctuation {
                ts: Timestamp::from_secs(2),
            }),
        ];
        assert_eq!(verify_punctuated_stream::<u64>(&regressing, ts), Err(1));
    }
}
