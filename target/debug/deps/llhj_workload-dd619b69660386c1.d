/root/repo/target/debug/deps/llhj_workload-dd619b69660386c1.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/rng.rs crates/workload/src/schema.rs

/root/repo/target/debug/deps/libllhj_workload-dd619b69660386c1.rmeta: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/rng.rs crates/workload/src/schema.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/rng.rs:
crates/workload/src/schema.rs:
