//! The experiments of Section 7, one module per figure/table, plus the
//! batching sweep enabled by the frame-based transport.

pub mod batching;
pub mod fig05;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod oracle_miss;
pub mod table2;

use crate::Scale;
use llhj_core::driver::DriverSchedule;
use llhj_core::homing::RoundRobin;
use llhj_core::time::TimeDelta;
use llhj_core::window::WindowSpec;
use llhj_sim::{run_simulation, Algorithm, SimConfig, SimReport};
use llhj_workload::{band_join_schedule, BandJoinWorkload, BandPredicate, RTuple, STuple};

/// Builds the scaled band-join driver schedule for the given window spans.
pub(crate) fn band_schedule(
    scale: &Scale,
    window_r_secs: u64,
    window_s_secs: u64,
    rate: f64,
    duration_secs: u64,
) -> DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(
        rate,
        TimeDelta::from_secs(duration_secs),
        scale.domain,
        scale.seed,
    );
    band_join_schedule(
        &workload,
        WindowSpec::time_secs(window_r_secs),
        WindowSpec::time_secs(window_s_secs),
    )
}

/// Builds a simulation configuration for the scaled benchmark.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sim_config(
    scale: &Scale,
    nodes: usize,
    algorithm: Algorithm,
    batch_size: usize,
    punctuate: bool,
    window_r_secs: u64,
    window_s_secs: u64,
    rate: f64,
) -> SimConfig {
    let mut cfg = SimConfig::new(nodes, algorithm);
    cfg.batch_size = batch_size;
    cfg.punctuate = punctuate;
    cfg.collect_interval = TimeDelta::from_millis(5);
    cfg.window_r = WindowSpec::time_secs(window_r_secs);
    cfg.window_s = WindowSpec::time_secs(window_s_secs);
    cfg.expected_rate_per_sec = rate;
    cfg.latency_bucket = scale.latency_bucket;
    cfg
}

/// Runs one scaled band-join simulation.
pub(crate) fn run_band(
    scale: &Scale,
    nodes: usize,
    algorithm: Algorithm,
    batch_size: usize,
    punctuate: bool,
    window_r_secs: u64,
    window_s_secs: u64,
) -> SimReport<RTuple, STuple> {
    let schedule = band_schedule(
        scale,
        window_r_secs,
        window_s_secs,
        scale.rate_per_sec,
        scale.duration_secs,
    );
    let cfg = sim_config(
        scale,
        nodes,
        algorithm,
        batch_size,
        punctuate,
        window_r_secs,
        window_s_secs,
        scale.rate_per_sec,
    );
    run_simulation(&cfg, BandPredicate::default(), RoundRobin, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_band_run_produces_results() {
        let scale = Scale::smoke();
        let report = run_band(&scale, 2, Algorithm::Llhj, 8, false, 4, 4);
        assert!(
            report.latency.count() > 0,
            "smoke workload must produce matches"
        );
        assert_eq!(report.nodes, 2);
    }
}
