/root/repo/target/release/deps/fig21-a4ce7dc65580d9e8.d: crates/bench/src/bin/fig21.rs

/root/repo/target/release/deps/fig21-a4ce7dc65580d9e8: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
