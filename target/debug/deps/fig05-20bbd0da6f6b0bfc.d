/root/repo/target/debug/deps/fig05-20bbd0da6f6b0bfc.d: crates/bench/src/bin/fig05.rs

/root/repo/target/debug/deps/libfig05-20bbd0da6f6b0bfc.rmeta: crates/bench/src/bin/fig05.rs

crates/bench/src/bin/fig05.rs:
