//! The discrete-event pipeline simulator.
//!
//! The simulator stands in for the 48-core AMD "Magny Cours" machine used
//! in the paper's evaluation.  It executes the *same* node state machines
//! as the threaded runtime, one virtual core per pipeline node, connected
//! by FIFO links with a configurable hop latency.  Like the threaded
//! runtime, the links carry [`MessageBatch`] *frames*: the driver groups
//! `batch_size` tuples per entry frame, and a node forwards the complete
//! output of one frame as one frame per direction.  Every frame charges
//! its node a service time derived from the [`crate::cost::CostModel`]
//! (one per-frame transport cost, then per-message and per-comparison
//! costs for its contents) and each inter-node hop is paid once per frame
//! — so the latency/throughput trade-off of message granularity
//! (Sections 2 and 4 of the paper) emerges from the algorithm's real
//! behaviour rather than from closed-form assumptions, while remaining
//! deterministic and independent of the host machine's core count.

use crate::config::SimConfig;
use crate::cost::SimNanos;
use crate::report::SimReport;
use llhj_core::driver::{DriverSchedule, Injector, StreamEvent};
use llhj_core::homing::HomePolicy;
use llhj_core::message::{LeftToRight, MessageBatch, NodeOutput, RightToLeft};
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::{HighWaterMarks, OutputItem, Punctuation};
use llhj_core::result::TimedResult;
use llhj_core::stats::{LatencySeries, LatencySummary};
use llhj_core::time::Timestamp;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Converts a stream timestamp to virtual nanoseconds.
fn ts_to_ns(ts: Timestamp) -> SimNanos {
    ts.as_micros().saturating_mul(1_000)
}

/// Converts virtual nanoseconds to a stream timestamp (microsecond floor).
fn ns_to_ts(ns: SimNanos) -> Timestamp {
    Timestamp::from_micros(ns / 1_000)
}

/// One frame in flight towards a node.
struct HeapEntry<R, S> {
    at: SimNanos,
    seq: u64,
    node: usize,
    frame: MessageBatch<R, S>,
}

impl<R, S> PartialEq for HeapEntry<R, S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<R, S> Eq for HeapEntry<R, S> {}
impl<R, S> PartialOrd for HeapEntry<R, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<R, S> Ord for HeapEntry<R, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Runs one simulation of the configured pipeline over a driver schedule.
///
/// The same schedule fed to `llhj_baselines::run_kang` (or to the
/// threaded runtime) yields exactly the same result *set*; what the
/// simulator adds is virtual time: latencies, utilization and punctuation
/// behaviour.
pub fn run_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    schedule: &DriverSchedule<R, S>,
) -> SimReport<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy,
{
    assert!(config.nodes > 0, "pipeline needs at least one node");
    assert!(config.batch_size > 0, "batch size must be positive");

    let mut nodes = config.build_nodes::<R, S, P>(&predicate);
    let injector = Injector::new(predicate, policy, config.nodes);
    let hwm = HighWaterMarks::new();
    let rightmost = config.nodes - 1;

    // ------------------------------------------------------------------
    // 1. Turn the driver schedule into injection frames, applying the
    //    driver-side batching of the paper (Section 7.3): tuples are
    //    released into the pipeline as one frame of `batch_size` arrivals,
    //    at the timestamp of the last tuple of the group.  Expiry messages
    //    share the entry frame of their direction, which preserves
    //    per-entry-point FIFO order.
    // ------------------------------------------------------------------
    let mut heap: BinaryHeap<HeapEntry<R, S>> = BinaryHeap::new();
    let mut event_seq = 0u64;
    let mut last_injection_ns = 0u64;

    {
        let mut left_buf: Vec<LeftToRight<R>> = Vec::new();
        let mut right_buf: Vec<RightToLeft<S>> = Vec::new();
        let mut left_arrivals = 0usize;
        let mut right_arrivals = 0usize;

        let flush_left = |buf: &mut Vec<LeftToRight<R>>,
                          at_ns: SimNanos,
                          heap: &mut BinaryHeap<HeapEntry<R, S>>,
                          event_seq: &mut u64,
                          last_injection_ns: &mut u64| {
            if !buf.is_empty() {
                heap.push(HeapEntry {
                    at: at_ns,
                    seq: *event_seq,
                    node: 0,
                    frame: MessageBatch::Left(std::mem::take(buf)),
                });
                *event_seq += 1;
            }
            *last_injection_ns = (*last_injection_ns).max(at_ns);
        };
        let flush_right = |buf: &mut Vec<RightToLeft<S>>,
                           at_ns: SimNanos,
                           heap: &mut BinaryHeap<HeapEntry<R, S>>,
                           event_seq: &mut u64,
                           last_injection_ns: &mut u64| {
            if !buf.is_empty() {
                heap.push(HeapEntry {
                    at: at_ns,
                    seq: *event_seq,
                    node: rightmost,
                    frame: MessageBatch::Right(std::mem::take(buf)),
                });
                *event_seq += 1;
            }
            *last_injection_ns = (*last_injection_ns).max(at_ns);
        };

        let mut last_at = Timestamp::ZERO;
        // A partial batch is flushed as soon as the stream delivers its last
        // arrival: a real driver stops waiting for more tuples once the
        // stream ends, and holding the tail back would charge it the delay
        // of the trailing expiry events instead of the batching delay.
        let mut seen_r = 0usize;
        let mut seen_s = 0usize;
        for event in schedule.events() {
            last_at = event.at;
            match &event.event {
                StreamEvent::ArrivalR(r) => {
                    left_buf.push(injector.inject_r(r.clone()));
                    left_arrivals += 1;
                    seen_r += 1;
                    if left_arrivals >= config.batch_size || seen_r == schedule.r_count() {
                        flush_left(
                            &mut left_buf,
                            ts_to_ns(event.at),
                            &mut heap,
                            &mut event_seq,
                            &mut last_injection_ns,
                        );
                        left_arrivals = 0;
                    }
                }
                StreamEvent::ExpireS(seq) => {
                    left_buf.push(LeftToRight::ExpiryS(*seq));
                }
                StreamEvent::ArrivalS(s) => {
                    right_buf.push(injector.inject_s(s.clone()));
                    right_arrivals += 1;
                    seen_s += 1;
                    if right_arrivals >= config.batch_size || seen_s == schedule.s_count() {
                        flush_right(
                            &mut right_buf,
                            ts_to_ns(event.at),
                            &mut heap,
                            &mut event_seq,
                            &mut last_injection_ns,
                        );
                        right_arrivals = 0;
                    }
                }
                StreamEvent::ExpireR(seq) => {
                    right_buf.push(RightToLeft::ExpiryR(*seq));
                }
            }
        }
        let final_ns = ts_to_ns(last_at);
        flush_left(
            &mut left_buf,
            final_ns,
            &mut heap,
            &mut event_seq,
            &mut last_injection_ns,
        );
        flush_right(
            &mut right_buf,
            final_ns,
            &mut heap,
            &mut event_seq,
            &mut last_injection_ns,
        );
    }

    // ------------------------------------------------------------------
    // 2. Event loop.
    // ------------------------------------------------------------------
    let mut busy_until = vec![0u64; config.nodes];
    let mut busy_ns = vec![0u64; config.nodes];
    let mut out: NodeOutput<R, S, llhj_core::result::ResultTuple<R, S>> = NodeOutput::new();

    let mut results: Vec<TimedResult<R, S>> = Vec::new();
    let mut pending: Vec<TimedResult<R, S>> = Vec::new();
    let mut output: Vec<OutputItem<TimedResult<R, S>>> = Vec::new();
    let mut latency = LatencySummary::new();
    let mut series = LatencySeries::new(config.latency_bucket);
    let mut punctuation_count = 0u64;

    let collect_interval_ns = (config.collect_interval.as_micros().max(1)) * 1_000;
    let mut next_collect_ns = collect_interval_ns;
    let hop = config.cost.hop_ns_for(config.pin_cores);
    let mut makespan_ns = 0u64;
    let mut frames_delivered = 0u64;
    let mut messages_delivered = 0u64;

    while let Some(entry) = heap.pop() {
        // Collector cycles that are due before this event run first so the
        // punctuation reflects exactly the state at its virtual time.
        while config.punctuate && next_collect_ns <= entry.at {
            collect(&mut pending, &mut output, &hwm, &mut punctuation_count);
            next_collect_ns += collect_interval_ns;
        }

        let node_idx = entry.node;
        let frame_len = entry.frame.len() as u64;
        frames_delivered += 1;
        messages_delivered += frame_len;
        let start = entry.at.max(busy_until[node_idx]);
        nodes[node_idx].observe_time(ns_to_ts(entry.at));

        out.clear();
        match entry.frame {
            MessageBatch::Left(mut msgs) => {
                // The rightmost node is where R arrivals finish their
                // traversal; the frame's last arrival carries the largest
                // timestamp (FIFO order), so observing it after the whole
                // frame is handled keeps the high-water mark a safe lower
                // bound.
                let observed = if node_idx == rightmost {
                    msgs.iter().rev().find_map(|m| match m {
                        LeftToRight::ArrivalR(r) => Some(r.ts()),
                        _ => None,
                    })
                } else {
                    None
                };
                nodes[node_idx].handle_left_batch(&mut msgs, &mut out);
                if let Some(ts) = observed {
                    hwm.observe_r(ts);
                }
            }
            MessageBatch::Right(mut msgs) => {
                let observed = if node_idx == 0 {
                    msgs.iter().rev().find_map(|m| match m {
                        RightToLeft::ArrivalS(s) => Some(s.ts()),
                        _ => None,
                    })
                } else {
                    None
                };
                nodes[node_idx].handle_right_batch(&mut msgs, &mut out);
                if let Some(ts) = observed {
                    hwm.observe_s(ts);
                }
            }
            MessageBatch::Handoff(_) => {
                unreachable!(
                    "handoff frames only occur in elastic simulations \
                     (crate::elastic), which migrate state outside the heap"
                );
            }
        }

        let punctuated_node = config.punctuate && (node_idx == 0 || node_idx == rightmost);
        let service = config.cost.frame_service_ns(
            frame_len,
            out.comparisons,
            out.results.len() as u64,
            punctuated_node,
        );
        let finish = start + service;
        busy_until[node_idx] = finish;
        busy_ns[node_idx] += service;
        makespan_ns = makespan_ns.max(finish);

        // The complete output of the frame moves on as one frame per
        // direction, paying the hop latency once.
        if !out.to_right.is_empty() {
            if node_idx + 1 < config.nodes {
                heap.push(HeapEntry {
                    at: finish + hop,
                    seq: event_seq,
                    node: node_idx + 1,
                    frame: MessageBatch::Left(std::mem::take(&mut out.to_right)),
                });
                event_seq += 1;
            } else {
                out.to_right.clear();
            }
        }
        if !out.to_left.is_empty() {
            if node_idx > 0 {
                heap.push(HeapEntry {
                    at: finish + hop,
                    seq: event_seq,
                    node: node_idx - 1,
                    frame: MessageBatch::Right(std::mem::take(&mut out.to_left)),
                });
                event_seq += 1;
            } else {
                out.to_left.clear();
            }
        }

        // Record results with their production (virtual) time.
        let detected_at = ns_to_ts(finish);
        for result in out.results.drain(..) {
            let timed = TimedResult::new(result, detected_at);
            latency.record(timed.latency());
            series.record(detected_at, timed.latency());
            if config.punctuate {
                pending.push(timed.clone());
            }
            results.push(timed);
        }
    }

    // Final collector cycles flush whatever is still pending.
    if config.punctuate {
        collect(&mut pending, &mut output, &hwm, &mut punctuation_count);
    }

    SimReport {
        algorithm: config.algorithm,
        nodes: config.nodes,
        results,
        output,
        latency,
        latency_series: series.finish(),
        counters: nodes.iter().map(|n| n.node_counters()).collect(),
        busy_ns,
        last_injection_ns,
        makespan_ns,
        punctuation_count,
        arrivals_per_stream: (schedule.r_count(), schedule.s_count()),
        frames_delivered,
        messages_delivered,
    }
}

fn collect<R, S>(
    pending: &mut Vec<TimedResult<R, S>>,
    output: &mut Vec<OutputItem<TimedResult<R, S>>>,
    hwm: &HighWaterMarks,
    punctuation_count: &mut u64,
) {
    // Step 1 of Section 6.1.3: read the high-water marks *before* vacuuming
    // the result queues, so the punctuation is a safe lower bound for every
    // result produced afterwards.
    let safe = hwm.safe_punctuation();
    for timed in pending.drain(..) {
        output.push(OutputItem::Result(timed));
    }
    output.push(OutputItem::Punctuation(Punctuation { ts: safe }));
    *punctuation_count += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::FnPredicate;
    use llhj_core::punctuation::verify_punctuated_stream;
    use llhj_core::window::WindowSpec;

    fn eq_pred() -> FnPredicate<fn(&u32, &u32) -> bool> {
        fn eq(r: &u32, s: &u32) -> bool {
            r == s
        }
        FnPredicate(eq as fn(&u32, &u32) -> bool)
    }

    fn small_schedule() -> DriverSchedule<u32, u32> {
        // 200 tuples per stream, values cycling 0..20, 1 ms apart.
        let r: Vec<_> = (0..200u64)
            .map(|i| (Timestamp::from_millis(i), (i % 20) as u32))
            .collect();
        let s: Vec<_> = (0..200u64)
            .map(|i| (Timestamp::from_millis(i), (i % 25) as u32))
            .collect();
        DriverSchedule::build(r, s, WindowSpec::time_secs(1), WindowSpec::time_secs(1))
    }

    /// Like [`small_schedule`], but followed by one full window length of
    /// never-matching "flush" tuples.  The original handshake join only
    /// moves tuples through the pipeline while new input keeps arriving, so
    /// over a finite input its pending pairs are only guaranteed to be
    /// reported if the stream keeps flowing for one more window length —
    /// this is exactly what a real, infinite stream provides.
    fn flushed_schedule() -> DriverSchedule<u32, u32> {
        let window_ms = 1_000u64;
        let real = 200u64;
        let flush = window_ms + 100;
        let r: Vec<_> = (0..real)
            .map(|i| (Timestamp::from_millis(i), (i % 20) as u32))
            .chain((0..flush).map(|i| (Timestamp::from_millis(real + i), 1_000_000u32)))
            .collect();
        let s: Vec<_> = (0..real)
            .map(|i| (Timestamp::from_millis(i), (i % 25) as u32))
            .chain((0..flush).map(|i| (Timestamp::from_millis(real + i), 2_000_000u32)))
            .collect();
        DriverSchedule::build(r, s, WindowSpec::time_secs(1), WindowSpec::time_secs(1))
    }

    fn config(nodes: usize, algorithm: Algorithm) -> SimConfig {
        let mut cfg = SimConfig::new(nodes, algorithm);
        cfg.batch_size = 4;
        cfg.window_r = WindowSpec::time_secs(1);
        cfg.window_s = WindowSpec::time_secs(1);
        cfg.expected_rate_per_sec = 1000.0;
        cfg.latency_bucket = 50;
        cfg
    }

    #[test]
    fn llhj_simulation_matches_kang_oracle() {
        let schedule = small_schedule();
        let oracle = llhj_baselines::run_kang(eq_pred(), &schedule);
        for nodes in [1, 2, 3, 5, 8] {
            let report = run_simulation(
                &config(nodes, Algorithm::Llhj),
                eq_pred(),
                RoundRobin,
                &schedule,
            );
            assert_eq!(
                report.result_keys(),
                oracle.result_keys(),
                "LLHJ with {nodes} nodes must produce the oracle result set"
            );
        }
    }

    #[test]
    fn hsj_simulation_matches_kang_oracle() {
        let schedule = flushed_schedule();
        let oracle = llhj_baselines::run_kang(eq_pred(), &schedule);
        for nodes in [1, 2, 4, 7] {
            let report = run_simulation(
                &config(nodes, Algorithm::Hsj),
                eq_pred(),
                RoundRobin,
                &schedule,
            );
            assert_eq!(
                report.result_keys(),
                oracle.result_keys(),
                "HSJ with {nodes} nodes must produce the oracle result set"
            );
        }
    }

    #[test]
    fn llhj_latency_is_far_below_hsj_latency() {
        let schedule = flushed_schedule();
        let llhj = run_simulation(
            &config(4, Algorithm::Llhj),
            eq_pred(),
            RoundRobin,
            &schedule,
        );
        let hsj = run_simulation(&config(4, Algorithm::Hsj), eq_pred(), RoundRobin, &schedule);
        assert!(llhj.latency.count() > 0);
        assert!(hsj.latency.count() > 0);
        // LLHJ latency is dominated by driver batching (a few ms at this
        // rate); HSJ latency is a sizeable fraction of the 1-second window.
        assert!(
            llhj.latency.mean().as_millis_f64() * 10.0 < hsj.latency.mean().as_millis_f64(),
            "expedition must reduce latency by far more than 10x: {} vs {}",
            llhj.latency.mean(),
            hsj.latency.mean()
        );
    }

    #[test]
    fn batching_trades_latency_for_transport_work() {
        let schedule = small_schedule();
        let mut fine = config(3, Algorithm::Llhj);
        fine.batch_size = 1;
        let mut coarse = config(3, Algorithm::Llhj);
        coarse.batch_size = 64;
        let fine_r = run_simulation(&fine, eq_pred(), RoundRobin, &schedule);
        let coarse_r = run_simulation(&coarse, eq_pred(), RoundRobin, &schedule);

        // Same join, same result set: the batch size is pure transport.
        assert_eq!(fine_r.result_keys(), coarse_r.result_keys());

        // The coarse run moves far fewer (but larger) frames...
        assert!(
            coarse_r.frames_delivered * 4 < fine_r.frames_delivered,
            "frames: {} coarse vs {} fine",
            coarse_r.frames_delivered,
            fine_r.frames_delivered
        );
        // (Even at batch 1 a frame can hold several messages: queued
        // expiries ride the next arrival's frame, as in the seed driver.)
        assert!(
            coarse_r.messages_delivered / coarse_r.frames_delivered
                > fine_r.messages_delivered / fine_r.frames_delivered
        );

        // ...spending less virtual time on transport overall...
        assert!(
            coarse_r.busy_ns.iter().sum::<u64>() < fine_r.busy_ns.iter().sum::<u64>(),
            "batching must reduce total busy time"
        );

        // ...at the price of batching delay: per-tuple latency grows.
        assert!(
            coarse_r.latency.mean() > fine_r.latency.mean(),
            "coarse batches must cost latency: {} vs {}",
            coarse_r.latency.mean(),
            fine_r.latency.mean()
        );
    }

    #[test]
    fn punctuated_output_is_valid_and_sortable() {
        let schedule = small_schedule();
        let mut cfg = config(3, Algorithm::Llhj);
        cfg.punctuate = true;
        let report = run_simulation(&cfg, eq_pred(), RoundRobin, &schedule);
        assert!(report.punctuation_count > 0);
        assert_eq!(
            verify_punctuated_stream(&report.output, |t| t.result.ts()),
            Ok(())
        );
        let (max_buffer, emitted) = report.sorted_output_buffer();
        assert_eq!(emitted as usize, report.results.len());
        assert!(max_buffer <= report.results.len());
    }

    #[test]
    fn utilization_grows_with_offered_load() {
        let make = |gap_us: u64| {
            let r: Vec<_> = (0..400u64)
                .map(|i| (Timestamp::from_micros(i * gap_us), (i % 5) as u32))
                .collect();
            let s: Vec<_> = (0..400u64)
                .map(|i| (Timestamp::from_micros(i * gap_us), (i % 7) as u32))
                .collect();
            DriverSchedule::build(r, s, WindowSpec::Count(200), WindowSpec::Count(200))
        };
        let cfg = config(2, Algorithm::Llhj);
        let slow = run_simulation(&cfg, eq_pred(), RoundRobin, &make(2_000));
        let fast = run_simulation(&cfg, eq_pred(), RoundRobin, &make(20));
        assert!(fast.max_utilization() > slow.max_utilization());
        assert!(slow.is_sustainable(0.95));
    }

    #[test]
    fn report_counts_are_consistent() {
        let schedule = small_schedule();
        let report = run_simulation(
            &config(3, Algorithm::Llhj),
            eq_pred(),
            RoundRobin,
            &schedule,
        );
        assert_eq!(report.arrivals_per_stream, (200, 200));
        assert_eq!(report.nodes, 3);
        assert_eq!(report.counters.len(), 3);
        assert!(report.total_comparisons() > 0);
        assert!(report.makespan_ns >= report.last_injection_ns);
        let series_total: u64 = report
            .latency_series
            .iter()
            .map(|p| p.summary.count())
            .sum();
        assert_eq!(series_total as usize, report.results.len());
    }

    #[test]
    fn indexed_llhj_matches_and_uses_fewer_comparisons() {
        // Equi predicate with keys so the index applies.
        #[derive(Clone)]
        struct Eq;
        impl JoinPredicate<u32, u32> for Eq {
            fn matches(&self, r: &u32, s: &u32) -> bool {
                r == s
            }
            fn r_key(&self, r: &u32) -> Option<u64> {
                Some(*r as u64)
            }
            fn s_key(&self, s: &u32) -> Option<u64> {
                Some(*s as u64)
            }
            fn supports_index(&self) -> bool {
                true
            }
        }
        let schedule = small_schedule();
        let plain = run_simulation(&config(4, Algorithm::Llhj), Eq, RoundRobin, &schedule);
        let indexed = run_simulation(
            &config(4, Algorithm::LlhjIndexed),
            Eq,
            RoundRobin,
            &schedule,
        );
        assert_eq!(plain.result_keys(), indexed.result_keys());
        assert!(
            indexed.total_comparisons() < plain.total_comparisons() / 2,
            "index should cut comparisons: {} vs {}",
            indexed.total_comparisons(),
            plain.total_comparisons()
        );
        assert!(indexed.busy_ns.iter().sum::<u64>() < plain.busy_ns.iter().sum::<u64>());
    }
}
