//! House lint for the handshake-join workspace (run in CI).
//!
//! Three rules, all textual and dependency-free:
//!
//! 1. **`facade`** — no direct `std::sync` / `std::thread` /
//!    `std::time::Instant` use outside `crates/sync`.  Every other crate
//!    must go through the `llhj-sync` facade so the model backend can
//!    intercept it.  (`std::time::Duration` is plain data and is fine.)
//! 2. **`safety-comment`** — every `unsafe` keyword (block, fn, impl)
//!    must have a `// SAFETY:` comment on the same line or within the
//!    eight lines above it.  Complements `clippy::undocumented_unsafe_blocks`,
//!    which does not cover `unsafe impl`.
//! 3. **`relaxed-ordering`** — `Ordering::Relaxed` may appear only in
//!    whitelisted files whose orderings have been audited and documented
//!    (`runtime/src/metrics.rs`, `runtime/src/exec.rs`, and the facade
//!    itself).
//! 4. **`ordering-audit`** — in the lock-free transport
//!    (`runtime/src/ring.rs`), every atomic access that names a memory
//!    `Ordering` must carry an `// ordering:` audit comment on the same
//!    line or within the eight lines above, pairing the access with its
//!    counterpart.  The model checker explores interleavings but ignores
//!    ordering arguments (§9 of ARCHITECTURE.md); the written audit is
//!    the weak-memory half of the argument.
//!
//! A line may waive a rule with a trailing `// lint:allow(<rule>)`
//! comment; waivers are reported in the summary so they stay visible.
//!
//! Usage: `cargo run -p llhj-lint` from anywhere in the workspace.
//! Exits non-zero if any violation is found.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directories scanned for Rust sources, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["src", "crates", "tests"];

/// Files allowed to use `Ordering::Relaxed` (audited + documented).
const RELAXED_WHITELIST: &[&str] = &[
    "crates/runtime/src/metrics.rs",
    "crates/runtime/src/exec.rs",
];

/// Files whose every `Ordering`-bearing atomic access must carry an
/// `// ordering:` audit comment (the lock-free hot paths).
const ORDERING_AUDIT_FILES: &[&str] = &["crates/runtime/src/ring.rs"];

/// Path prefixes exempt from the facade rule: the facade itself (it
/// wraps std) and the lint (no concurrency).
const FACADE_EXEMPT_PREFIXES: &[&str] = &["crates/sync/", "crates/lint/"];

/// Tokens whose presence (outside the exempt crates) means the file
/// bypasses the facade.  `std::time::Instant` is additionally caught in
/// brace-import form (`std::time::{.., Instant}`) by `lint_file`.
const FACADE_BANNED: &[&str] = &["std::sync", "std::thread", "std::time::Instant"];

struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

fn main() {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    let mut waivers = 0usize;
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("llhj-lint: cannot read {rel}: {e}");
                std::process::exit(2);
            }
        };
        lint_file(&rel, &text, &mut violations, &mut waivers);
    }

    if violations.is_empty() {
        println!(
            "llhj-lint: OK — {} files clean ({} waiver(s))",
            files.len(),
            waivers
        );
        return;
    }
    let mut report = String::new();
    for v in &violations {
        let _ = writeln!(report, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    eprint!("{report}");
    eprintln!(
        "llhj-lint: {} violation(s) in {} files scanned",
        violations.len(),
        files.len()
    );
    std::process::exit(1);
}

fn workspace_root() -> PathBuf {
    // The lint lives at <root>/crates/lint; CARGO_MANIFEST_DIR is set by
    // cargo run.  Fall back to the current directory's workspace marker.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("Cargo.toml").exists() {
                return root.to_path_buf();
            }
        }
    }
    let mut cur = std::env::current_dir().expect("cannot read current dir");
    loop {
        if cur.join("Cargo.toml").exists() && cur.join("crates").is_dir() {
            return cur;
        }
        if !cur.pop() {
            eprintln!("llhj-lint: cannot locate the workspace root");
            std::process::exit(2);
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Strips `//` comments and the contents of ordinary string literals so
/// token matching does not fire inside either.  Keeps the `// SAFETY:`
/// detection separate (that one *wants* the comment text).
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    let _ = chars.next();
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

fn has_waiver(line: &str, rule: &str) -> bool {
    line.contains(&format!("lint:allow({rule})"))
}

fn word_match(code: &str, needle: &str) -> bool {
    // Token match with an identifier-boundary check on both sides, so
    // e.g. `unsafe_op_in_unsafe_fn` does not match `unsafe`.
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

fn lint_file(rel: &str, text: &str, violations: &mut Vec<Violation>, waivers: &mut usize) {
    let lines: Vec<&str> = text.lines().collect();
    let facade_exempt = FACADE_EXEMPT_PREFIXES.iter().any(|p| rel.starts_with(p));
    let relaxed_ok = facade_exempt || RELAXED_WHITELIST.contains(&rel);
    let ordering_audited = ORDERING_AUDIT_FILES.contains(&rel);

    for (idx, raw) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = code_portion(raw);

        if !facade_exempt {
            // Catch `use std::time::{Duration, Instant}` too: the plain
            // token list below only sees the fully-qualified path form.
            let brace_instant = code.contains("std::time::{") && word_match(&code, "Instant");
            let hits = FACADE_BANNED
                .iter()
                .filter(|banned| code.contains(*banned))
                .copied()
                .chain(brace_instant.then_some("std::time::Instant"));
            for banned in hits {
                {
                    if has_waiver(raw, "facade") {
                        *waivers += 1;
                    } else {
                        violations.push(Violation {
                            file: rel.to_string(),
                            line: lineno,
                            rule: "facade",
                            message: format!(
                                "direct `{banned}` use; import from `llhj_sync` instead \
                                 (the model backend must be able to intercept it)"
                            ),
                        });
                    }
                }
            }
        }

        if !relaxed_ok && code.contains("Ordering::Relaxed") {
            if has_waiver(raw, "relaxed-ordering") {
                *waivers += 1;
            } else {
                violations.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "relaxed-ordering",
                    message: "Ordering::Relaxed outside the audited whitelist \
                              (see crates/lint/src/main.rs RELAXED_WHITELIST)"
                        .to_string(),
                });
            }
        }

        if ordering_audited && code.contains("Ordering::") {
            let documented = raw.contains("ordering:")
                || lines[idx.saturating_sub(8)..idx]
                    .iter()
                    .any(|l| l.contains("ordering:"));
            if !documented {
                if has_waiver(raw, "ordering-audit") {
                    *waivers += 1;
                } else {
                    violations.push(Violation {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "ordering-audit",
                        message: "atomic access without an `// ordering:` audit comment on \
                                  the same line or within the eight lines above"
                            .to_string(),
                    });
                }
            }
        }

        if word_match(&code, "unsafe") && !code.contains("unsafe_code") {
            let documented = raw.contains("SAFETY:")
                || lines[idx.saturating_sub(8)..idx]
                    .iter()
                    .any(|l| l.contains("SAFETY:"));
            if !documented {
                if has_waiver(raw, "safety-comment") {
                    *waivers += 1;
                } else {
                    violations.push(Violation {
                        file: rel.to_string(),
                        line: lineno,
                        rule: "safety-comment",
                        message: "`unsafe` without a `// SAFETY:` comment on the same line \
                                  or within the eight lines above"
                            .to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_portion_strips_comments_and_strings() {
        assert_eq!(code_portion("let x = 1; // std::sync"), "let x = 1; ");
        assert_eq!(code_portion("let s = \"std::sync\";"), "let s = \"\";");
        assert_eq!(code_portion("a(); // SAFETY: fine"), "a(); ");
    }

    #[test]
    fn word_match_respects_boundaries() {
        assert!(word_match("unsafe {", "unsafe"));
        assert!(!word_match("unsafe_op_in_unsafe_fn", "unsafe"));
        assert!(word_match("pub unsafe fn f()", "unsafe"));
    }

    #[test]
    fn facade_rule_catches_brace_imports() {
        let mut v = Vec::new();
        let mut w = 0;
        lint_file(
            "crates/runtime/src/x.rs",
            "use std::time::{Duration, Instant};\n",
            &mut v,
            &mut w,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "facade");
        // Duration alone stays allowed.
        v.clear();
        lint_file(
            "crates/runtime/src/x.rs",
            "use std::time::{Duration};\n",
            &mut v,
            &mut w,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn facade_rule_fires() {
        let mut v = Vec::new();
        let mut w = 0;
        lint_file(
            "crates/runtime/src/x.rs",
            "use std::sync::Mutex;\n",
            &mut v,
            &mut w,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "facade");
    }

    #[test]
    fn waiver_suppresses_and_counts() {
        let mut v = Vec::new();
        let mut w = 0;
        lint_file(
            "crates/runtime/src/x.rs",
            "use std::thread; // lint:allow(facade)\n",
            &mut v,
            &mut w,
        );
        assert!(v.is_empty());
        assert_eq!(w, 1);
    }

    #[test]
    fn safety_comment_window() {
        let mut v = Vec::new();
        let mut w = 0;
        let ok = "// SAFETY: serialized by the scheduler.\nunsafe { x() }\n";
        lint_file("crates/core/src/x.rs", ok, &mut v, &mut w);
        assert!(v.is_empty());
        let bad = "unsafe { x() }\n";
        lint_file("crates/core/src/x.rs", bad, &mut v, &mut w);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");
    }

    #[test]
    fn ordering_audit_requires_the_comment_in_ring() {
        let mut v = Vec::new();
        let mut w = 0;
        let ok = "// ordering: Acquire pairs with the producer's Release.\n\
                  let seq = slot.seq.load(Ordering::Acquire);\n";
        lint_file("crates/runtime/src/ring.rs", ok, &mut v, &mut w);
        assert!(v.is_empty());
        let bad = "let seq = slot.seq.load(Ordering::Acquire);\n";
        lint_file("crates/runtime/src/ring.rs", bad, &mut v, &mut w);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ordering-audit");
        // Other files are not held to the rule (the relaxed whitelist
        // still governs them).
        v.clear();
        lint_file("crates/runtime/src/channel.rs", bad, &mut v, &mut w);
        assert!(v.is_empty());
    }

    #[test]
    fn relaxed_whitelist() {
        let mut v = Vec::new();
        let mut w = 0;
        lint_file(
            "crates/runtime/src/metrics.rs",
            "x.load(Ordering::Relaxed);\n",
            &mut v,
            &mut w,
        );
        assert!(v.is_empty());
        lint_file(
            "crates/runtime/src/channel.rs",
            "x.load(Ordering::Relaxed);\n",
            &mut v,
            &mut w,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-ordering");
    }
}
