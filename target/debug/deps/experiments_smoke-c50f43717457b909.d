/root/repo/target/debug/deps/experiments_smoke-c50f43717457b909.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-c50f43717457b909: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
