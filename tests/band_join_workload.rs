//! Integration tests on the paper's benchmark workload (Section 7.1):
//! the two-dimensional band join over the CellJoin schema, run through the
//! baselines, the simulator and the analytic latency model.

use handshake_join::baselines::{run_celljoin, run_kang};
use handshake_join::prelude::*;
use llhj_core::latency_model::hsj_max_latency;

fn scaled_schedule(window_secs: u64) -> llhj_core::DriverSchedule<RTuple, STuple> {
    let workload = BandJoinWorkload::scaled(120.0, TimeDelta::from_secs(12), 400, 99);
    band_join_schedule(
        &workload,
        WindowSpec::time_secs(window_secs),
        WindowSpec::time_secs(window_secs),
    )
}

#[test]
fn all_algorithms_agree_on_the_band_join_result_set() {
    let schedule = scaled_schedule(4);
    let pred = BandPredicate::default();
    let oracle = run_kang(pred, &schedule);
    assert!(
        oracle.results.len() > 20,
        "workload must produce a meaningful number of matches, got {}",
        oracle.results.len()
    );

    let cell = run_celljoin(4, pred, &schedule);
    assert_eq!(cell.result_keys(), oracle.result_keys());

    for nodes in [1usize, 3, 6] {
        let mut cfg = SimConfig::new(nodes, Algorithm::Llhj);
        cfg.window_r = WindowSpec::time_secs(4);
        cfg.window_s = WindowSpec::time_secs(4);
        cfg.expected_rate_per_sec = 120.0;
        cfg.batch_size = 16;
        cfg.latency_bucket = 1_000_000;
        let report = run_simulation(&cfg, pred, RoundRobin, &schedule);
        assert_eq!(
            report.result_keys(),
            oracle.result_keys(),
            "LLHJ with {nodes} nodes"
        );
    }
}

#[test]
fn hsj_latency_tracks_the_window_size_and_llhj_does_not() {
    let pred = BandPredicate::default();
    let mut hsj_means = Vec::new();
    let mut llhj_means = Vec::new();
    for window_secs in [2u64, 4] {
        let schedule = scaled_schedule(window_secs);
        for (algorithm, out) in [
            (Algorithm::Hsj, &mut hsj_means),
            (Algorithm::Llhj, &mut llhj_means),
        ] {
            let mut cfg = SimConfig::new(4, algorithm);
            cfg.window_r = WindowSpec::time_secs(window_secs);
            cfg.window_s = WindowSpec::time_secs(window_secs);
            cfg.expected_rate_per_sec = 120.0;
            cfg.batch_size = 16;
            cfg.latency_bucket = 1_000_000;
            let report = run_simulation(&cfg, pred, RoundRobin, &schedule);
            out.push(report.latency.mean().as_millis_f64());
        }
    }
    // Doubling the window roughly doubles HSJ latency (Equation 8)...
    assert!(
        hsj_means[1] > hsj_means[0] * 1.4,
        "HSJ latency must grow with the window: {hsj_means:?}"
    );
    // ...while LLHJ latency stays at the batching level for both windows.
    assert!(
        llhj_means[1] < llhj_means[0] * 3.0 + 50.0,
        "LLHJ latency must not track the window: {llhj_means:?}"
    );
    // And LLHJ is far below HSJ for the larger window.
    assert!(llhj_means[1] * 5.0 < hsj_means[1]);
    // The observed HSJ latencies stay below the analytic bound plus slack.
    let bound = hsj_max_latency(TimeDelta::from_secs(4), TimeDelta::from_secs(4));
    assert!(hsj_means[1] < bound.as_millis_f64() * 1.5 + 1_000.0);
}

#[test]
fn equi_join_index_cuts_work_but_not_results() {
    let workload = EquiJoinWorkload {
        rate_per_sec: 150.0,
        duration: TimeDelta::from_secs(8),
        domain: 300,
        seed: 5,
    };
    let window = WindowSpec::time_secs(3);
    let schedule = equi_join_schedule(&workload, window, window);
    let oracle = run_kang(EquiXaPredicate, &schedule);

    let run = |algorithm| {
        let mut cfg = SimConfig::new(4, algorithm);
        cfg.window_r = window;
        cfg.window_s = window;
        cfg.expected_rate_per_sec = 150.0;
        cfg.batch_size = 16;
        cfg.latency_bucket = 1_000_000;
        run_simulation(&cfg, EquiXaPredicate, RoundRobin, &schedule)
    };
    let plain = run(Algorithm::Llhj);
    let indexed = run(Algorithm::LlhjIndexed);
    assert_eq!(plain.result_keys(), oracle.result_keys());
    assert_eq!(indexed.result_keys(), oracle.result_keys());
    assert!(
        indexed.total_comparisons() * 5 < plain.total_comparisons(),
        "index must cut comparisons: {} vs {}",
        indexed.total_comparisons(),
        plain.total_comparisons()
    );
}

#[test]
fn workload_hit_rate_matches_the_analytic_expectation() {
    // At the paper's domain of 10,000 the expected hit rate is ~1:250,000;
    // the scaled workload keeps the product `hit_rate * window_tuples`
    // comparable so experiments stay meaningful.
    let paper = BandJoinWorkload::paper_scale(3000.0, TimeDelta::from_secs(1));
    let hit = paper.expected_hit_rate(10, 10.0);
    assert!((1.0 / hit) > 200_000.0 && (1.0 / hit) < 300_000.0);

    let scaled = BandJoinWorkload::scaled(120.0, TimeDelta::from_secs(12), 400, 99);
    let schedule = scaled_schedule(4);
    let oracle = run_kang(BandPredicate::default(), &schedule);
    let window_tuples = 4.0 * 120.0;
    let arrivals = (schedule.r_count() + schedule.s_count()) as f64;
    let expected_total = arrivals * window_tuples * scaled.expected_hit_rate(10, 10.0);
    let observed = oracle.results.len() as f64;
    assert!(
        observed > expected_total * 0.3 && observed < expected_total * 3.0,
        "observed {observed} matches vs expected ~{expected_total:.0}"
    );
}
