//! CellJoin (Section 2.2.1 of the paper).
//!
//! Gedik, Yu and Bordawekar parallelise Kang's three-step procedure by
//! re-partitioning the opposite window on every arrival and scanning the
//! partitions on all available cores.  The result set is identical to
//! Kang's procedure; what changes is the *cost structure*: the scan work
//! per arrival is divided by the core count, but every arrival pays a
//! repartitioning / dispatch overhead that grows with the core count —
//! which is exactly why the paper dismisses CellJoin as a scalable option
//! on large multicores.
//!
//! This implementation executes sequentially (it is a baseline, not the
//! contribution) but keeps the windows partitioned by core and accounts
//! both the per-core scan work and the per-arrival dispatch overhead, so
//! the simulator and the benchmark harness can report CellJoin's critical
//! path: `dispatch · cores + max_partition_scan`.

use llhj_core::driver::{DriverSchedule, StreamEvent};
use llhj_core::predicate::JoinPredicate;
use llhj_core::result::{ResultTuple, TimedResult};
use llhj_core::store::LocalWindow;
use llhj_core::time::Timestamp;
use llhj_core::tuple::{SeqNo, StreamTuple};

/// Per-run cost accounting of the CellJoin baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellJoinCosts {
    /// Total predicate evaluations over all cores.
    pub comparisons: u64,
    /// Sum over all arrivals of the *largest* per-core scan (the parallel
    /// critical path, excluding dispatch).
    pub critical_path_comparisons: u64,
    /// Number of partition dispatches (arrivals × cores).
    pub dispatches: u64,
}

/// Outcome of running CellJoin over a complete driver schedule.
#[derive(Debug)]
pub struct CellJoinReport<R, S> {
    /// Every result pair, in detection order.
    pub results: Vec<TimedResult<R, S>>,
    /// Cost accounting.
    pub costs: CellJoinCosts,
}

impl<R, S> CellJoinReport<R, S> {
    /// Sorted `(r_seq, s_seq)` result keys for set comparison.
    pub fn result_keys(&self) -> Vec<(SeqNo, SeqNo)> {
        let mut keys: Vec<_> = self.results.iter().map(|t| t.result.key()).collect();
        keys.sort_unstable();
        keys
    }
}

/// The CellJoin operator: windows partitioned over `cores` processing units.
pub struct CellJoin<R, S, P> {
    predicate: P,
    cores: usize,
    partitions_r: Vec<LocalWindow<R>>,
    partitions_s: Vec<LocalWindow<S>>,
    costs: CellJoinCosts,
}

impl<R, S, P> CellJoin<R, S, P>
where
    R: Clone,
    S: Clone,
    P: JoinPredicate<R, S>,
{
    /// Creates a CellJoin instance over the given number of cores.
    pub fn new(cores: usize, predicate: P) -> Self {
        assert!(cores > 0, "CellJoin needs at least one core");
        CellJoin {
            predicate,
            cores,
            partitions_r: (0..cores).map(|_| LocalWindow::new()).collect(),
            partitions_s: (0..cores).map(|_| LocalWindow::new()).collect(),
            costs: CellJoinCosts::default(),
        }
    }

    /// Number of cores the scan is partitioned over.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Current total window occupancy `(|W_R|, |W_S|)`.
    pub fn window_sizes(&self) -> (usize, usize) {
        (
            self.partitions_r.iter().map(LocalWindow::len).sum(),
            self.partitions_s.iter().map(LocalWindow::len).sum(),
        )
    }

    fn partition_of(seq: SeqNo, cores: usize) -> usize {
        (seq.0 % cores as u64) as usize
    }

    /// Processes one driver event.
    pub fn process<F>(&mut self, event: &StreamEvent<R, S>, at: Timestamp, mut emit: F)
    where
        F: FnMut(TimedResult<R, S>),
    {
        match event {
            StreamEvent::ArrivalR(r) => {
                let pred = &self.predicate;
                let mut max_partition = 0u64;
                for partition in &self.partitions_s {
                    let cmp = partition.scan_matches(
                        false,
                        |s| pred.matches(&r.payload, s),
                        |s| {
                            emit(TimedResult::new(ResultTuple::new(r.clone(), s, 0), at));
                        },
                    );
                    self.costs.comparisons += cmp;
                    max_partition = max_partition.max(cmp);
                }
                self.costs.critical_path_comparisons += max_partition;
                self.costs.dispatches += self.cores as u64;
                let p = Self::partition_of(r.seq, self.cores);
                self.partitions_r[p].insert(r.clone(), false);
            }
            StreamEvent::ArrivalS(s) => {
                let pred = &self.predicate;
                let mut max_partition = 0u64;
                for partition in &self.partitions_r {
                    let cmp = partition.scan_matches(
                        false,
                        |r| pred.matches(r, &s.payload),
                        |r| {
                            emit(TimedResult::new(ResultTuple::new(r, s.clone(), 0), at));
                        },
                    );
                    self.costs.comparisons += cmp;
                    max_partition = max_partition.max(cmp);
                }
                self.costs.critical_path_comparisons += max_partition;
                self.costs.dispatches += self.cores as u64;
                let p = Self::partition_of(s.seq, self.cores);
                self.partitions_s[p].insert(s.clone(), false);
            }
            StreamEvent::ExpireR(seq) => {
                let p = Self::partition_of(*seq, self.cores);
                self.partitions_r[p].remove(*seq);
            }
            StreamEvent::ExpireS(seq) => {
                let p = Self::partition_of(*seq, self.cores);
                self.partitions_s[p].remove(*seq);
            }
        }
    }

    /// Runs the complete schedule.
    pub fn run(mut self, schedule: &DriverSchedule<R, S>) -> CellJoinReport<R, S> {
        let mut results = Vec::new();
        for event in schedule.events() {
            self.process(&event.event, event.at, |t| results.push(t));
        }
        CellJoinReport {
            results,
            costs: self.costs,
        }
    }
}

/// Convenience wrapper mirroring [`crate::kang::run_kang`].
pub fn run_celljoin<R, S, P>(
    cores: usize,
    predicate: P,
    schedule: &DriverSchedule<R, S>,
) -> CellJoinReport<R, S>
where
    R: Clone,
    S: Clone,
    P: JoinPredicate<R, S>,
{
    CellJoin::new(cores, predicate).run(schedule)
}

/// Placeholder for payload type inference in tests.
pub type IntTuple = StreamTuple<u32>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kang::run_kang;
    use llhj_core::predicate::FnPredicate;
    use llhj_core::window::WindowSpec;

    fn sched(
        r: Vec<(u64, u32)>,
        s: Vec<(u64, u32)>,
        window: WindowSpec,
    ) -> DriverSchedule<u32, u32> {
        DriverSchedule::build(
            r.into_iter()
                .map(|(t, v)| (Timestamp::from_secs(t), v))
                .collect(),
            s.into_iter()
                .map(|(t, v)| (Timestamp::from_secs(t), v))
                .collect(),
            window,
            window,
        )
    }

    fn eq_pred() -> FnPredicate<fn(&u32, &u32) -> bool> {
        fn eq(r: &u32, s: &u32) -> bool {
            r == s
        }
        FnPredicate(eq as fn(&u32, &u32) -> bool)
    }

    #[test]
    fn produces_the_same_result_set_as_kang() {
        let schedule = sched(
            vec![(1, 3), (2, 5), (3, 3), (4, 9), (6, 5)],
            vec![(1, 5), (3, 3), (5, 9), (7, 1)],
            WindowSpec::time_secs(3),
        );
        let kang = run_kang(eq_pred(), &schedule);
        for cores in [1, 2, 3, 7] {
            let cell = run_celljoin(cores, eq_pred(), &schedule);
            assert_eq!(cell.result_keys(), kang.result_keys(), "{cores} cores");
        }
    }

    #[test]
    fn critical_path_shrinks_with_more_cores() {
        // A long stream of matching tuples builds up a large window; with
        // more cores each partition scan is shorter.
        let r: Vec<(u64, u32)> = (0..200).map(|i| (i, 1u32)).collect();
        let s: Vec<(u64, u32)> = (0..200).map(|i| (i, 2u32)).collect();
        let schedule = sched(r, s, WindowSpec::Unbounded);
        let one = run_celljoin(1, eq_pred(), &schedule);
        let eight = run_celljoin(8, eq_pred(), &schedule);
        assert_eq!(one.costs.comparisons, eight.costs.comparisons);
        assert!(
            eight.costs.critical_path_comparisons < one.costs.critical_path_comparisons / 4,
            "parallel critical path must shrink: {} vs {}",
            eight.costs.critical_path_comparisons,
            one.costs.critical_path_comparisons
        );
        assert!(eight.costs.dispatches > one.costs.dispatches);
    }

    #[test]
    fn expiry_removes_from_the_right_partition() {
        let schedule = sched(
            vec![(1, 7), (2, 7), (3, 7)],
            vec![(10, 7)],
            WindowSpec::time_secs(5),
        );
        // R#0 and R#1 expire before S arrives at t=10 (window 5s): only R#2
        // (t=3, expires t=8... also expired).  Actually all R expire, so no
        // results.
        let cell = run_celljoin(2, eq_pred(), &schedule);
        assert!(cell.results.is_empty());
        let schedule = sched(
            vec![(6, 7), (7, 7)],
            vec![(10, 7)],
            WindowSpec::time_secs(5),
        );
        let cell = run_celljoin(2, eq_pred(), &schedule);
        assert_eq!(cell.results.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_rejected() {
        let _ = CellJoin::<u32, u32, _>::new(0, eq_pred());
    }
}
