//! Scalability sweep: maximum sustainable throughput as a function of the
//! core count, using the calibrated analytic model at the paper's full
//! scale (15-minute windows, 1:250,000 band join) — a miniature Figure 17
//! plus the Table 2 index-acceleration column.
//!
//! ```bash
//! cargo run --release --example scalability_sweep
//! ```

use handshake_join::prelude::*;

fn main() {
    println!("paper-scale throughput model (15-minute windows, band join 1:250,000)\n");
    println!(
        "{:>6}  {:>14}  {:>14}  {:>18}  {:>16}",
        "cores", "HSJ (t/s)", "LLHJ (t/s)", "LLHJ+punct (t/s)", "LLHJ+index (t/s)"
    );
    for cores in [4usize, 8, 12, 16, 20, 24, 28, 32, 36, 40, 48] {
        let model = AnalyticModel::paper_benchmark(cores);
        let punctuated = AnalyticModel {
            punctuate: true,
            ..AnalyticModel::paper_benchmark(cores)
        };
        println!(
            "{:>6}  {:>14.0}  {:>14.0}  {:>18.0}  {:>16.0}",
            cores,
            model.max_rate(Algorithm::Hsj),
            model.max_rate(Algorithm::Llhj),
            punctuated.max_rate(Algorithm::Llhj),
            model.max_rate(Algorithm::LlhjIndexed),
        );
    }

    println!("\nlatency at the sustained rate (batch 64):");
    for cores in [8usize, 16, 24, 32, 40] {
        let model = AnalyticModel::paper_benchmark(cores);
        let rate = model.max_rate(Algorithm::Llhj);
        println!(
            "{:>6} cores: HSJ avg = {:>10}, LLHJ avg = {:>10}",
            cores,
            model.hsj_average_latency(),
            model.llhj_average_latency(rate, 64),
        );
    }
}
