/root/repo/target/release/deps/llhj_sim-b3649ada8dfcfd62.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

/root/repo/target/release/deps/llhj_sim-b3649ada8dfcfd62: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/cost.rs crates/sim/src/engine.rs crates/sim/src/model.rs crates/sim/src/report.rs crates/sim/src/throughput.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/cost.rs:
crates/sim/src/engine.rs:
crates/sim/src/model.rs:
crates/sim/src/report.rs:
crates/sim/src/throughput.rs:
