/root/repo/target/debug/deps/punctuation_and_order-fc9f1a51786482d2.d: tests/punctuation_and_order.rs

/root/repo/target/debug/deps/libpunctuation_and_order-fc9f1a51786482d2.rmeta: tests/punctuation_and_order.rs

tests/punctuation_and_order.rs:
