//! Engine self-tests: the explorer must find classic races and accept
//! classic correct protocols.  Compiled only under `--cfg llhj_model`:
//!
//! ```sh
//! RUSTFLAGS="--cfg llhj_model" cargo test -p llhj-sync --test model_smoke
//! ```
#![cfg(llhj_model)]

use llhj_sync::model::{explore, explore_expect_violation, ModelOptions};
use llhj_sync::sync::atomic::{AtomicU64, Ordering};
use llhj_sync::sync::{Arc, Condvar, Mutex};
use llhj_sync::thread;
use llhj_sync::time::Duration;

/// A non-atomic read-modify-write from two tasks must lose an update in
/// some interleaving — the checker has to find it.
#[test]
fn finds_lost_update() {
    let report = explore_expect_violation(ModelOptions::default(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(report.violation.is_some());
}

/// The same counter behind fetch_add is race-free: the full exploration
/// must complete without a violation.
#[test]
fn accepts_atomic_counter() {
    let report = explore(ModelOptions::default(), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete, "exploration should exhaust the tree");
    assert!(report.violation.is_none());
}

/// Mutex-protected increments are also race-free, and exercise the
/// blocking/handoff paths of the model mutex.
#[test]
fn accepts_mutex_counter() {
    explore(ModelOptions::default(), || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    *c.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 3);
    });
}

/// The classic check-then-park lost wakeup: the consumer checks the flag
/// *outside* the mutex, then parks; the producer can set + notify in the
/// window between check and park, leaving the consumer parked forever.
/// The deadlock-breaker rescues it via the timed wait and counts a
/// forced timeout — which the scenario asserts never happens, so the
/// checker must flag it.
#[test]
fn finds_lost_wakeup() {
    let report = explore_expect_violation(ModelOptions::default(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let producer = {
            let s = Arc::clone(&state);
            thread::spawn(move || {
                *s.0.lock().unwrap() = true;
                s.1.notify_all();
            })
        };
        // BUG: the readiness check happens outside the lock that guards
        // the wait, and is not re-checked after reacquiring — the notify
        // can land between check and park and be lost.
        let ready_now = *state.0.lock().unwrap();
        if !ready_now {
            let guard = state.0.lock().unwrap();
            let (guard, _timeout) = state
                .1
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap();
            drop(guard);
        }
        producer.join().unwrap();
        assert_eq!(
            llhj_sync::model::forced_timeouts(),
            0,
            "wakeup was lost: a waiter needed the safety-net timeout"
        );
    });
    assert!(report.violation.is_some());
}

/// The correct version of the same protocol — re-check the predicate
/// under the wait mutex in a loop — never needs a forced timeout.
#[test]
fn accepts_checked_wait() {
    let report = explore(ModelOptions::default(), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let producer = {
            let s = Arc::clone(&state);
            thread::spawn(move || {
                *s.0.lock().unwrap() = true;
                s.1.notify_all();
            })
        };
        let mut guard = state.0.lock().unwrap();
        while !*guard {
            let (g, _timeout) = state
                .1
                .wait_timeout(guard, Duration::from_millis(100))
                .unwrap();
            guard = g;
        }
        drop(guard);
        producer.join().unwrap();
        assert_eq!(llhj_sync::model::forced_timeouts(), 0);
    });
    assert!(report.violation.is_none());
}

/// A true deadlock (cyclic lock acquisition) must be reported, not hang.
#[test]
fn finds_deadlock() {
    let report = explore_expect_violation(ModelOptions::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            })
        };
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        t.join().unwrap();
    });
    let v = report.violation.expect("deadlock must be found");
    assert!(v.message.contains("deadlock"), "got: {}", v.message);
}

/// Sleeps advance the logical clock through the breaker without counting
/// as forced timeouts, and Instant observes the jump.
#[test]
fn logical_clock_advances_only_by_sleep() {
    explore(ModelOptions::default(), || {
        let t0 = llhj_sync::time::Instant::now();
        thread::sleep(Duration::from_millis(5));
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(5), "clock must reach deadline");
        assert_eq!(
            llhj_sync::model::forced_timeouts(),
            0,
            "sleep wakeups are not forced timeouts"
        );
    });
}
