//! Scheduler-puppet replicas of the std primitives (`--cfg llhj_model`).
//!
//! Each type registers an object with the active execution's engine at
//! construction and routes every operation through a scheduler yield
//! point.  The API mirrors the `std::sync` subset the workspace uses, so
//! the facade re-exports are drop-in.  `Ordering` arguments are accepted
//! and ignored — the model executes sequentially consistently (see the
//! crate docs for why that is an explicit, compensated limitation).

use crate::model::{current, Engine, ObjState};
use std::cell::UnsafeCell;
use std::sync::Arc;

pub mod sync {
    //! Model `Mutex`, `Condvar` and `RwLock`.

    use super::*;
    use std::sync::LockResult;

    /// Model mutex: ownership tracked by the scheduler, data inline.
    /// Operations resolve the engine through the task-local context, so
    /// the object only stores its id.
    pub struct Mutex<T: ?Sized> {
        obj: usize,
        data: UnsafeCell<T>,
    }

    // SAFETY: the scheduler serializes all access — `data` is only
    // touched through a `MutexGuard`, which exists only while the model
    // lock is logically held by the running task, and exactly one task
    // runs at a time.
    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    // SAFETY: as above — guard-mediated access is mutually exclusive.
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        /// Creates a mutex registered with the active model execution.
        pub fn new(value: T) -> Self {
            let (engine, _) = current();
            let obj = engine.register(ObjState::Mutex { holder: None });
            Mutex {
                obj,
                data: UnsafeCell::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock, parking this task if it is held.  Never
        /// poisons (a task panic aborts the whole execution instead).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let (engine, me) = current();
            engine.mutex_lock(me, self.obj);
            Ok(MutexGuard { lock: self })
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// RAII guard for [`Mutex`]; releases on drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: holding the guard means this task logically holds
            // the model lock; the scheduler runs one task at a time, so
            // no other reference to `data` is live.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref` — exclusive logical ownership.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let (engine, me) = current();
            engine.mutex_unlock(me, self.lock.obj);
        }
    }

    /// Result of a timed condvar wait; mirrors
    /// `std::sync::WaitTimeoutResult`.
    #[derive(Debug, Clone, Copy)]
    pub struct WaitTimeoutResult(pub(crate) bool);

    impl WaitTimeoutResult {
        /// True if the wait ended because the timeout elapsed (under the
        /// model: because the deadlock-breaker fired it).
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// Model condvar; wakes FIFO.
    pub struct Condvar {
        engine: Arc<Engine>,
        obj: usize,
    }

    impl Condvar {
        /// Creates a condvar registered with the active model execution.
        pub fn new() -> Self {
            let (engine, _) = current();
            let obj = engine.register(ObjState::Condvar {
                waiters: Vec::new(),
            });
            Condvar { engine, obj }
        }

        /// Releases the guard's mutex, parks until notified, reacquires.
        pub fn wait<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> LockResult<MutexGuard<'a, T>> {
            let (engine, me) = current();
            let lock = guard.lock;
            // The engine releases the mutex logically; skip the guard's
            // unlocking drop.
            std::mem::forget(guard);
            engine.cond_wait(me, self.obj, lock.obj, None);
            Ok(MutexGuard { lock })
        }

        /// Timed wait.  Under the model the timeout only fires through
        /// the deadlock-breaker, which counts the event (see
        /// [`crate::model::forced_timeouts`]).
        pub fn wait_timeout<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let (engine, me) = current();
            let lock = guard.lock;
            std::mem::forget(guard);
            let timed_out = engine.cond_wait(me, self.obj, lock.obj, Some(dur));
            Ok((MutexGuard { lock }, WaitTimeoutResult(timed_out)))
        }

        /// Wakes one waiter (FIFO).
        pub fn notify_one(&self) {
            let (engine, me) = current();
            debug_assert!(Arc::ptr_eq(&engine, &self.engine));
            engine.cond_notify(me, self.obj, 1);
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            let (engine, me) = current();
            engine.cond_notify(me, self.obj, usize::MAX);
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    /// Model readers/writer lock.
    pub struct RwLock<T: ?Sized> {
        obj: usize,
        data: UnsafeCell<T>,
    }

    // SAFETY: access to `data` is mediated by the model rwlock protocol:
    // readers take shared references under a reader count, the writer an
    // exclusive one, and the scheduler runs one task at a time.
    unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
    // SAFETY: as above.
    unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

    impl<T> RwLock<T> {
        /// Creates an rwlock registered with the active model execution.
        pub fn new(value: T) -> Self {
            let (engine, _) = current();
            let obj = engine.register(ObjState::RwLock {
                writer: None,
                readers: 0,
            });
            RwLock {
                obj,
                data: UnsafeCell::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires a shared read lock.
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            let (engine, me) = current();
            engine.rw_lock(me, self.obj, false);
            Ok(RwLockReadGuard { lock: self })
        }

        /// Acquires the exclusive write lock.
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            let (engine, me) = current();
            engine.rw_lock(me, self.obj, true);
            Ok(RwLockWriteGuard { lock: self })
        }
    }

    /// Shared-read guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: read guards coexist only with other read guards
            // (the model blocks writers while readers > 0), so shared
            // access is sound.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            let (engine, me) = current();
            engine.rw_unlock(me, self.lock.obj, false);
        }
    }

    /// Exclusive-write guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: the write guard is exclusive by the model rwlock
            // protocol.
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as in `deref` — exclusive ownership.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            let (engine, me) = current();
            engine.rw_unlock(me, self.lock.obj, true);
        }
    }
}

pub mod atomic {
    //! Model atomics: values live in the engine's object table (so the
    //! state hash covers them); every access is a yield point.

    use super::*;
    use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($(#[$meta:meta])* $name:ident, $ty:ty, $to:expr, $from:expr) => {
            $(#[$meta])*
            pub struct $name {
                engine: Arc<Engine>,
                obj: usize,
            }

            impl $name {
                /// Creates an atomic registered with the active model
                /// execution.
                pub fn new(value: $ty) -> Self {
                    let (engine, _) = current();
                    let obj = engine.register(ObjState::Atomic($to(value)));
                    $name { engine, obj }
                }

                fn op<R>(&self, name: &str, f: impl FnOnce(&mut u64) -> R) -> R {
                    let (engine, me) = current();
                    debug_assert!(Arc::ptr_eq(&engine, &self.engine));
                    engine.atomic_op(me, self.obj, name, f)
                }

                /// Loads the value (ordering ignored; model is SC).
                pub fn load(&self, _order: Ordering) -> $ty {
                    self.op("atomic.load", |v| $from(*v))
                }

                /// Stores a value (ordering ignored; model is SC).
                pub fn store(&self, value: $ty, _order: Ordering) {
                    self.op("atomic.store", |v| *v = $to(value))
                }

                /// Swaps in a new value, returning the previous one.
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    self.op("atomic.swap", |v| {
                        let prev = $from(*v);
                        *v = $to(value);
                        prev
                    })
                }

                /// Strong compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    expect: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.op("atomic.cas", |v| {
                        let prev = $from(*v);
                        if prev == expect {
                            *v = $to(new);
                            Ok(prev)
                        } else {
                            Err(prev)
                        }
                    })
                }

                /// Weak compare-and-exchange.  The model never fails
                /// spuriously (spurious failure only widens the retry
                /// loop, which the interleaving exploration already
                /// covers).
                pub fn compare_exchange_weak(
                    &self,
                    expect: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(expect, new, success, failure)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_struct(stringify!($name)).finish_non_exhaustive()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$ty>::default())
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Wrapping add; returns the previous value.
                pub fn fetch_add(&self, delta: $ty, _order: Ordering) -> $ty {
                    self.op("atomic.fetch_add", |v| {
                        let prev = *v as $ty;
                        *v = prev.wrapping_add(delta) as u64;
                        prev
                    })
                }

                /// Wrapping subtract; returns the previous value.
                pub fn fetch_sub(&self, delta: $ty, _order: Ordering) -> $ty {
                    self.op("atomic.fetch_sub", |v| {
                        let prev = *v as $ty;
                        *v = prev.wrapping_sub(delta) as u64;
                        prev
                    })
                }

                /// Maximum; returns the previous value.
                pub fn fetch_max(&self, value: $ty, _order: Ordering) -> $ty {
                    self.op("atomic.fetch_max", |v| {
                        let prev = *v as $ty;
                        *v = prev.max(value) as u64;
                        prev
                    })
                }

                /// Minimum; returns the previous value.
                pub fn fetch_min(&self, value: $ty, _order: Ordering) -> $ty {
                    self.op("atomic.fetch_min", |v| {
                        let prev = *v as $ty;
                        *v = prev.min(value) as u64;
                        prev
                    })
                }
            }
        };
    }

    model_atomic!(
        /// Model `AtomicU64`.
        AtomicU64,
        u64,
        |v: u64| v,
        |v: u64| v
    );
    model_atomic!(
        /// Model `AtomicUsize`.
        AtomicUsize,
        usize,
        |v: usize| v as u64,
        |v: u64| v as usize
    );
    model_atomic!(
        /// Model `AtomicI64`.
        AtomicI64,
        i64,
        |v: i64| v as u64,
        |v: u64| v as i64
    );
    model_atomic!(
        /// Model `AtomicBool`.
        AtomicBool,
        bool,
        |v: bool| v as u64,
        |v: u64| v != 0
    );

    model_atomic_int!(AtomicU64, u64);
    model_atomic_int!(AtomicUsize, usize);
    model_atomic_int!(AtomicI64, i64);

    impl AtomicBool {
        /// Logical OR; returns the previous value.
        pub fn fetch_or(&self, value: bool, _order: Ordering) -> bool {
            self.op("atomic.fetch_or", |v| {
                let prev = *v != 0;
                *v = u64::from(prev || value);
                prev
            })
        }

        /// Logical AND; returns the previous value.
        pub fn fetch_and(&self, value: bool, _order: Ordering) -> bool {
            self.op("atomic.fetch_and", |v| {
                let prev = *v != 0;
                *v = u64::from(prev && value);
                prev
            })
        }
    }
}

pub mod thread {
    //! Model threads: cooperative tasks of the active execution.

    use super::*;

    /// Handle to a model task; `join` parks until the task finishes.
    pub struct JoinHandle<T> {
        task: usize,
        result: Arc<std::sync::Mutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the task and returns its result.  A panicking task
        /// aborts the whole execution as a model violation, so unlike
        /// `std` this never observes `Err`.
        pub fn join(self) -> std::thread::Result<T> {
            let (engine, me) = current();
            engine.join_task(me, self.task);
            let value = self
                .result
                .lock()
                .expect("model join slot poisoned")
                .take()
                .expect("model task finished without storing a result");
            Ok(value)
        }
    }

    /// Spawns a new cooperative task in the active model execution.
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (engine, me) = current();
        let result = Arc::new(std::sync::Mutex::new(None));
        let slot = Arc::clone(&result);
        let task = engine.spawn_task(
            Some(me),
            Box::new(move || {
                let value = f();
                *slot.lock().expect("model join slot poisoned") = Some(value);
            }),
        );
        JoinHandle { task, result }
    }

    /// Parks until the logical clock reaches `dur` from now — which only
    /// happens through the deadlock-breaker (the clock is frozen while
    /// any task can run).
    pub fn sleep(dur: std::time::Duration) {
        let (engine, me) = current();
        engine.sleep(me, dur);
    }

    /// A bare yield point: offers the scheduler a switch.
    pub fn yield_now() {
        let (engine, me) = current();
        drop(engine.yield_op(me, "thread.yield_now"));
    }

    /// Model executions are single-core by construction: one task runs
    /// between yield points, so the honest answer is 1.
    pub fn available_parallelism() -> std::io::Result<std::num::NonZeroUsize> {
        Ok(std::num::NonZeroUsize::MIN)
    }
}

pub mod time {
    //! Logical time: frozen while any task can run; advanced only by the
    //! deadlock-breaker.

    use super::current;
    use std::time::Duration;

    /// Model instant on the logical clock (nanoseconds from execution
    /// start).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct Instant(u64);

    impl Instant {
        /// The current logical time.  Never advances between yield
        /// points; see the crate docs.
        pub fn now() -> Instant {
            let (engine, _) = current();
            Instant(engine.now_ns())
        }

        /// Logical time elapsed since `self`.
        pub fn elapsed(&self) -> Duration {
            Instant::now().duration_since(*self)
        }

        /// Saturating difference, mirroring `std`.
        pub fn duration_since(&self, earlier: Instant) -> Duration {
            Duration::from_nanos(self.0.saturating_sub(earlier.0))
        }

        /// Saturating difference, mirroring `std`.
        pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
            self.duration_since(earlier)
        }

        /// Checked difference, `None` if `earlier` is later.
        pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
            self.0.checked_sub(earlier.0).map(Duration::from_nanos)
        }

        /// Checked add, mirroring `std`.
        pub fn checked_add(&self, dur: Duration) -> Option<Instant> {
            let ns = u64::try_from(dur.as_nanos()).ok()?;
            self.0.checked_add(ns).map(Instant)
        }

        /// Checked subtract, mirroring `std`.
        pub fn checked_sub(&self, dur: Duration) -> Option<Instant> {
            let ns = u64::try_from(dur.as_nanos()).ok()?;
            self.0.checked_sub(ns).map(Instant)
        }
    }

    impl std::ops::Add<Duration> for Instant {
        type Output = Instant;
        fn add(self, dur: Duration) -> Instant {
            self.checked_add(dur)
                .expect("overflow when adding duration to model instant")
        }
    }

    impl std::ops::Sub<Duration> for Instant {
        type Output = Instant;
        fn sub(self, dur: Duration) -> Instant {
            self.checked_sub(dur)
                .expect("underflow when subtracting duration from model instant")
        }
    }

    impl std::ops::Sub<Instant> for Instant {
        type Output = Duration;
        fn sub(self, earlier: Instant) -> Duration {
            self.duration_since(earlier)
        }
    }

    impl std::ops::AddAssign<Duration> for Instant {
        fn add_assign(&mut self, dur: Duration) {
            *self = *self + dur;
        }
    }
}
