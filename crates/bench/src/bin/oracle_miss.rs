//! Prints the HSJ oracle-miss sweep: how many Kang-oracle pairs the
//! threaded original-handshake-join pipeline misses as the driver batch
//! size grows (Figure-20 methodology applied to result completeness
//! instead of latency).  Each run replays ~0.3 s of stream in real time.

use llhj_bench::experiments::oracle_miss;

fn main() {
    let report = oracle_miss::run(200, 100, 2, &[1, 2, 4, 8, 16, 32]);
    println!("{}", report.report);
    println!(
        "boundary bound per batch: {}",
        report
            .rows
            .iter()
            .map(|r| format!(
                "{}→{:.1}%",
                r.batch_size,
                report.boundary_bound(r.batch_size) * 100.0
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
