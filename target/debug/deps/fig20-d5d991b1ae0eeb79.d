/root/repo/target/debug/deps/fig20-d5d991b1ae0eeb79.d: crates/bench/src/bin/fig20.rs

/root/repo/target/debug/deps/fig20-d5d991b1ae0eeb79: crates/bench/src/bin/fig20.rs

crates/bench/src/bin/fig20.rs:
