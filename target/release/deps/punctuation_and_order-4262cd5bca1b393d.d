/root/repo/target/release/deps/punctuation_and_order-4262cd5bca1b393d.d: tests/punctuation_and_order.rs

/root/repo/target/release/deps/punctuation_and_order-4262cd5bca1b393d: tests/punctuation_and_order.rs

tests/punctuation_and_order.rs:
