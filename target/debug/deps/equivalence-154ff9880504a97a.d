/root/repo/target/debug/deps/equivalence-154ff9880504a97a.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-154ff9880504a97a: tests/equivalence.rs

tests/equivalence.rs:
