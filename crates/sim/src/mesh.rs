//! Discrete-event simulation of the key-partitioned shard mesh.
//!
//! Mirrors the threaded mesh (`llhj-runtime::mesh`) in virtual time: one
//! [`ShardRouter`] fans a driver schedule over `N` independent
//! `ElasticSim` chains, each chain keeps its own punctuated output, and
//! the per-shard streams merge through the same
//! [`merge_punctuated_streams`] frontier algorithm the runtime uses.  A
//! shard split or merge reuses the chain protocol end to end — fence
//! (complete heap drain), per-node `export` → hash-partition → silent
//! install at the *same* pipeline position, then the ordinary balanced
//! redistribution per chain — with every moved segment charged one frame
//! reception plus per-tuple message cost and a hop, and one ack frame
//! back, exactly like the chain-internal handoff.
//!
//! Because every shard's virtual clock starts at the same zero and the
//! router is deterministic, the mesh simulation is reproducible, which is
//! what the cross-substrate conformance sweep builds on: the same
//! schedule, plan and predicate must produce byte-identical result sets
//! here, in the threaded mesh, and in the single-chain Kang oracle.

use crate::config::SimConfig;
use crate::cost::SimNanos;
use crate::elastic::{node_factory, ElasticSim, SimCheckpoint, SimCheckpointEvent};
use crate::throughput::{ThroughputResult, ThroughputSearch};
use llhj_core::driver::{DriverSchedule, Injector, StreamEvent};
use llhj_core::homing::HomePolicy;
use llhj_core::message::{LeftToRight, MessageBatch, RightToLeft};
use llhj_core::predicate::JoinPredicate;
use llhj_core::punctuation::OutputItem;
use llhj_core::result::TimedResult;
use llhj_core::shard::{merge_punctuated_streams, MeshPlan, RouteMode, ShardRouter};
use llhj_core::time::Timestamp;
use llhj_core::tuple::SeqNo;

fn ts_to_ns(ts: Timestamp) -> SimNanos {
    ts.as_micros().saturating_mul(1_000)
}

/// One completed mesh reshaping in the simulation's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReshardEvent {
    /// Schedule events consumed when the reshaping fired.
    pub after_events: usize,
    /// Virtual time at which the fence completed the drain.
    pub at_ns: SimNanos,
    /// Shard count before.
    pub from_shards: usize,
    /// Shard count after.
    pub to_shards: usize,
    /// Per-shard chain width after the reshaping.
    pub width: usize,
    /// Window tuples that crossed a shard boundary.
    pub moved_tuples: usize,
    /// Virtual duration of the reshaping (segment transfers plus the
    /// per-chain redistributions).
    pub fence_ns: SimNanos,
}

/// Everything measured during one mesh simulation.
#[derive(Debug)]
pub struct MeshSimReport<R, S> {
    /// All results from every shard (shards concatenated; use
    /// [`MeshSimReport::result_keys`] for oracle comparison).
    pub results: Vec<TimedResult<R, S>>,
    /// The merged punctuated output stream (empty unless `punctuate`).
    pub output: Vec<OutputItem<TimedResult<R, S>>>,
    /// Every reshaping, in order.
    pub reshard_log: Vec<SimReshardEvent>,
    /// Final shard count.
    pub shards: usize,
    /// Final per-shard chain widths.
    pub widths: Vec<usize>,
    /// Per-shard, per-node busy virtual time of the *final* shards
    /// (chains retired by a merge fold their results in, but their busy
    /// accounting retires with them).
    pub busy_ns: Vec<Vec<SimNanos>>,
    /// Virtual time of the last driver injection, over all shards.
    pub last_injection_ns: SimNanos,
    /// Virtual time at which the last shard finished processing — the
    /// mesh makespan is the *max* over shards, not the sum: shards run
    /// concurrently.
    pub makespan_ns: SimNanos,
}

impl<R, S> MeshSimReport<R, S> {
    /// Sorted `(r_seq, s_seq)` result keys, for oracle comparison.
    pub fn result_keys(&self) -> Vec<(SeqNo, SeqNo)> {
        let mut keys: Vec<_> = self.results.iter().map(|t| t.result.key()).collect();
        keys.sort_unstable();
        keys
    }

    /// Largest per-node utilization across every shard: busy virtual time
    /// over the span input was offered.
    pub fn max_utilization(&self) -> f64 {
        if self.last_injection_ns == 0 {
            return 0.0;
        }
        self.busy_ns
            .iter()
            .flatten()
            .map(|&b| b as f64 / self.last_injection_ns as f64)
            .fold(0.0, f64::max)
    }

    /// True if every node of every shard kept its utilization at or below
    /// `threshold` — the mesh sustainability criterion.
    pub fn is_sustainable(&self, threshold: f64) -> bool {
        self.max_utilization() <= threshold
    }
}

/// A coordinated mesh checkpoint: one per-shard [`SimCheckpoint`] for
/// every live shard, all captured at the same consumed-event cut inside a
/// global fence — the simulator's stand-in for the runtime's coordinated
/// per-shard blob sequence.
#[derive(Debug, Clone)]
pub struct SimMeshCheckpoint<R, S> {
    /// Schedule events consumed at the capture cut.
    pub after_events: usize,
    /// One checkpoint per shard, indexed by shard id.
    pub shards: Vec<SimCheckpoint<R, S>>,
}

struct MeshSim<R, S, P, H>
where
    P: JoinPredicate<R, S>,
{
    config: SimConfig,
    router: ShardRouter<R, S, P>,
    sims: Vec<ElasticSim<R, S>>,
    injectors: Vec<Injector<R, S, P, H>>,
    left_bufs: Vec<Vec<LeftToRight<R>>>,
    right_bufs: Vec<Vec<RightToLeft<S>>>,
    left_arrivals: Vec<usize>,
    right_arrivals: Vec<usize>,
    predicate: P,
    policy: H,
    retired_results: Vec<TimedResult<R, S>>,
    retired_outputs: Vec<Vec<OutputItem<TimedResult<R, S>>>>,
    reshard_log: Vec<SimReshardEvent>,
    last_at: Timestamp,
}

impl<R, S, P, H> MeshSim<R, S, P, H>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    fn flush_left(&mut self, shard: usize, at_ns: SimNanos) {
        if !self.left_bufs[shard].is_empty() {
            let frame = MessageBatch::Left(std::mem::take(&mut self.left_bufs[shard]));
            self.sims[shard].push_frame(at_ns, 0, frame);
        }
        self.left_arrivals[shard] = 0;
        self.sims[shard].last_injection_ns = self.sims[shard].last_injection_ns.max(at_ns);
    }

    fn flush_right(&mut self, shard: usize, at_ns: SimNanos) {
        if !self.right_bufs[shard].is_empty() {
            let rightmost = self.sims[shard].width - 1;
            let frame = MessageBatch::Right(std::mem::take(&mut self.right_bufs[shard]));
            self.sims[shard].push_frame(at_ns, rightmost, frame);
        }
        self.right_arrivals[shard] = 0;
        self.sims[shard].last_injection_ns = self.sims[shard].last_injection_ns.max(at_ns);
    }

    /// Flushes every shard's entry buffers (their homes were assigned
    /// under the current widths) and drains every heap to quiescence.
    /// Returns the global fence start: the latest shard makespan.
    fn fence_all(&mut self) -> SimNanos {
        let at_ns = ts_to_ns(self.last_at);
        for shard in 0..self.sims.len() {
            self.flush_left(shard, at_ns);
            self.flush_right(shard, at_ns);
            self.sims[shard].drain(None);
        }
        self.sims.iter().map(|s| s.makespan_ns).max().unwrap_or(0)
    }

    /// Charges one cross-shard segment transfer to the receiving chain's
    /// node `k`: a hop plus frame reception with per-tuple message cost,
    /// and an ack frame back — the same serialisation as a chain-internal
    /// handoff hop.
    fn charge_transfer(
        sim: &mut ElasticSim<R, S>,
        k: usize,
        tuples: usize,
        fence_end: &mut SimNanos,
    ) {
        let hop = sim.config.cost.hop_ns_for(sim.config.pin_cores);
        let service = sim.config.cost.frame_service_ns(tuples as u64, 0, 0, false);
        let ack = sim.config.cost.frame_service_ns(1, 0, 0, false);
        *fence_end += hop + service + hop + ack;
        sim.busy_ns[k] += service;
        sim.frames_delivered += 1;
        sim.messages_delivered += tuples as u64;
    }

    /// One shard split: every chain doubles into itself plus a same-width
    /// child.  The child of parent `p` lands at index `n + p`, matching
    /// [`llhj_core::shard::ShardMap::child_of`].  Node `k`'s moving rows
    /// re-enter at position `k` of the child (silent install — positional
    /// invariants carry over; matching would duplicate results on a later
    /// fragment-replicate merge), then both chains rebalance.
    fn split_once(&mut self, fence_end: &mut SimNanos) -> usize {
        let n = self.sims.len();
        self.router.split();
        let factory = node_factory(&self.config, self.predicate.clone());
        let mut moved = 0;
        for p in 0..n {
            let width = self.sims[p].width;
            let mut child = ElasticSim::new(&self.config, width, &factory);
            for k in 0..width {
                let segment = self.sims[p].nodes[k]
                    .export_segment()
                    .expect("mesh simulation requires migration-capable nodes");
                let (keep, moving) = self.router.split_segment(p, segment);
                moved += moving.len();
                Self::charge_transfer(&mut self.sims[p], k, keep.len(), fence_end);
                self.sims[p].nodes[k]
                    .install_segment_silent(keep)
                    .expect("mesh simulation requires migration-capable nodes");
                Self::charge_transfer(&mut child, k, moving.len(), fence_end);
                child.nodes[k]
                    .install_segment_silent(moving)
                    .expect("mesh simulation requires migration-capable nodes");
            }
            self.sims[p].rebalance_fenced(fence_end);
            child.rebalance_fenced(fence_end);
            self.sims.push(child);
        }
        moved
    }

    /// One shard merge: each child chain folds back into its parent at
    /// equal width, node `k` into node `k`, then the parent rebalances.
    /// The child's results and punctuated output are retained for the
    /// final stream merge.
    fn merge_once(&mut self, fence_end: &mut SimNanos) -> usize {
        let n = self.sims.len() / 2;
        let factory = node_factory(&self.config, self.predicate.clone());
        // Equalize widths first: the child's node `k` must land on an
        // existing parent node `k`.
        for p in 0..n {
            let width = self.sims[p].width;
            if self.sims[n + p].width != width {
                self.sims[n + p].resize(width, &factory);
            }
        }
        self.router.merge();
        let mut moved = 0;
        let children: Vec<ElasticSim<R, S>> = self.sims.split_off(n);
        for (p, mut child) in children.into_iter().enumerate() {
            for k in 0..child.width {
                let segment = child.nodes[k]
                    .export_segment()
                    .expect("mesh simulation requires migration-capable nodes");
                // Fragment-replicate child S rows are broadcast copies of
                // the parent's own; the router drops them here.
                let segment = self.router.merge_segment(segment);
                moved += segment.len();
                Self::charge_transfer(&mut self.sims[p], k, segment.len(), fence_end);
                self.sims[p].nodes[k]
                    .install_segment_silent(segment)
                    .expect("mesh simulation requires migration-capable nodes");
            }
            self.sims[p].rebalance_fenced(fence_end);
            if self.config.punctuate {
                child.collect();
            }
            self.retired_results.append(&mut child.results);
            self.retired_outputs.push(std::mem::take(&mut child.output));
        }
        moved
    }

    /// Reshapes to `target_shards` shards of `width` nodes each.
    fn reshape(&mut self, target_shards: usize, width: usize, at_event: usize) {
        assert!(
            target_shards.is_power_of_two(),
            "shard count must be a power of two, got {target_shards}"
        );
        let from = self.sims.len();
        let fence_start = self.fence_all();
        let mut fence_end = fence_start;
        let mut moved = 0;
        while self.sims.len() < target_shards {
            moved += self.split_once(&mut fence_end);
        }
        while self.sims.len() > target_shards {
            moved += self.merge_once(&mut fence_end);
        }
        let factory = node_factory(&self.config, self.predicate.clone());
        let mut width_changed = false;
        for sim in &mut self.sims {
            if sim.width != width {
                sim.resize(width, &factory);
                width_changed = true;
            }
        }
        // Every surviving shard resumes at the instant the mesh-wide
        // reconfiguration ends: the fence is global.
        for sim in &mut self.sims {
            for slot in &mut sim.busy_until {
                *slot = (*slot).max(fence_end);
            }
            sim.makespan_ns = sim.makespan_ns.max(fence_end);
        }
        self.injectors = self
            .sims
            .iter()
            .map(|s| Injector::new(self.predicate.clone(), self.policy.clone(), s.width))
            .collect();
        // The fence flushed every entry buffer, so the per-shard batching
        // state just resizes to the new shard count.
        self.left_bufs = vec![Vec::new(); self.sims.len()];
        self.right_bufs = vec![Vec::new(); self.sims.len()];
        self.left_arrivals = vec![0; self.sims.len()];
        self.right_arrivals = vec![0; self.sims.len()];
        if from != target_shards || width_changed {
            self.reshard_log.push(SimReshardEvent {
                after_events: at_event,
                at_ns: fence_start,
                from_shards: from,
                to_shards: target_shards,
                width,
                moved_tuples: moved,
                fence_ns: fence_end - fence_start,
            });
        }
    }

    /// One coordinated checkpoint: global fence, then every shard captures
    /// at the same consumed-event cut.  Shards serialise their blobs
    /// concurrently, so the mesh pays the *max* per-shard capture cost —
    /// the whole mesh resumes at that instant.
    fn checkpoint_all(&mut self, consumed: usize) -> (SimMeshCheckpoint<R, S>, SimCheckpointEvent) {
        let fence_start = self.fence_all();
        for sim in &mut self.sims {
            sim.makespan_ns = sim.makespan_ns.max(fence_start);
        }
        let mut shards = Vec::with_capacity(self.sims.len());
        let mut tuples = 0usize;
        for sim in &mut self.sims {
            let (ckpt, evt) = sim.capture_checkpoint(consumed);
            tuples += evt.tuples;
            shards.push(ckpt);
        }
        let fence_end = self
            .sims
            .iter()
            .map(|s| s.makespan_ns)
            .max()
            .unwrap_or(fence_start);
        for sim in &mut self.sims {
            for slot in &mut sim.busy_until {
                *slot = (*slot).max(fence_end);
            }
            sim.makespan_ns = fence_end;
        }
        (
            SimMeshCheckpoint {
                after_events: consumed,
                shards,
            },
            SimCheckpointEvent {
                after_events: consumed,
                at_ns: fence_start,
                tuples,
                cost_ns: fence_end - fence_start,
            },
        )
    }

    /// Finalizes the mesh into the standard report.
    fn into_report(mut self) -> MeshSimReport<R, S> {
        if self.config.punctuate {
            for sim in &mut self.sims {
                sim.collect();
            }
        }
        let mut results = self.retired_results;
        let mut streams = self.retired_outputs;
        let mut widths = Vec::with_capacity(self.sims.len());
        let mut busy = Vec::with_capacity(self.sims.len());
        let mut last_injection_ns = 0;
        let mut makespan_ns = 0;
        for mut sim in self.sims {
            widths.push(sim.width);
            busy.push(std::mem::take(&mut sim.busy_ns));
            last_injection_ns = last_injection_ns.max(sim.last_injection_ns);
            makespan_ns = makespan_ns.max(sim.makespan_ns);
            results.append(&mut sim.results);
            streams.push(std::mem::take(&mut sim.output));
        }
        MeshSimReport {
            results,
            output: merge_punctuated_streams(streams),
            reshard_log: self.reshard_log,
            shards: widths.len(),
            widths,
            busy_ns: busy,
            last_injection_ns,
            makespan_ns,
        }
    }

    /// Routes one driver event to its target shards, batching entry
    /// frames per shard; frames flush at `at_ns` (already rebased by the
    /// caller when recovering).
    fn inject(&mut self, event: &llhj_core::driver::DriverEvent<R, S>, at_ns: SimNanos) {
        let batch = self.config.batch_size;
        let route = self.router.route(&event.event);
        for shard in route.targets(self.sims.len()) {
            match &event.event {
                StreamEvent::ArrivalR(r) => {
                    let msg = self.injectors[shard].inject_r(r.clone());
                    self.left_bufs[shard].push(msg);
                    self.left_arrivals[shard] += 1;
                    if self.left_arrivals[shard] >= batch {
                        self.flush_left(shard, at_ns);
                    }
                }
                StreamEvent::ExpireS(seq) => {
                    self.left_bufs[shard].push(LeftToRight::ExpiryS(*seq));
                }
                StreamEvent::ArrivalS(s) => {
                    let msg = self.injectors[shard].inject_s(s.clone());
                    self.right_bufs[shard].push(msg);
                    self.right_arrivals[shard] += 1;
                    if self.right_arrivals[shard] >= batch {
                        self.flush_right(shard, at_ns);
                    }
                }
                StreamEvent::ExpireR(seq) => {
                    self.right_bufs[shard].push(RightToLeft::ExpiryR(*seq));
                }
            }
        }
    }
}

/// Runs a mesh simulation: replays `schedule` through `shards` chains of
/// `config.nodes` nodes each, routing by `mode` and reshaping at the
/// plan's event indexes — the virtual-time mirror of
/// `llhj-runtime`'s `run_mesh_pipeline`.
pub fn run_mesh_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    mode: RouteMode,
    shards: usize,
    schedule: &DriverSchedule<R, S>,
    plan: &MeshPlan,
) -> MeshSimReport<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    assert!(config.nodes > 0, "pipeline needs at least one node");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(
        mode == RouteMode::FragmentReplicate || predicate.supports_index(),
        "co-partitioning requires a predicate with both equi-key extractors"
    );
    let factory = node_factory(config, predicate.clone());
    let width = config.nodes;
    let mut mesh = MeshSim {
        config: config.clone(),
        router: ShardRouter::new(predicate.clone(), mode, shards),
        sims: (0..shards)
            .map(|_| ElasticSim::new(config, width, &factory))
            .collect(),
        injectors: (0..shards)
            .map(|_| Injector::new(predicate.clone(), policy.clone(), width))
            .collect(),
        left_bufs: vec![Vec::new(); shards],
        right_bufs: vec![Vec::new(); shards],
        left_arrivals: vec![0; shards],
        right_arrivals: vec![0; shards],
        predicate,
        policy,
        retired_results: Vec::new(),
        retired_outputs: Vec::new(),
        reshard_log: Vec::new(),
        last_at: Timestamp::ZERO,
    };

    let mut steps = plan.steps.iter().peekable();
    for (idx, event) in schedule.events().iter().enumerate() {
        while let Some(step) = steps.next_if(|s| s.after_events <= idx) {
            mesh.reshape(step.shards, step.width, idx);
        }
        mesh.last_at = event.at;
        let at_ns = ts_to_ns(event.at);
        mesh.inject(event, at_ns);
    }
    mesh.fence_all();
    let trailing: Vec<_> = steps.cloned().collect();
    for step in trailing {
        mesh.reshape(step.shards, step.width, schedule.events().len());
    }
    mesh.into_report()
}

/// Runs a mesh simulation that takes a coordinated checkpoint of every
/// shard each `every_events` consumed events, mirroring the runtime's
/// `run_schedule_checkpointed` on the mesh: a global fence, then one
/// per-shard state capture at the same consumed-event cut, each charged
/// the serialisation cost of its window.  If `crash_after_events` is
/// `Some(n)`, the run stops *before* injecting event `n` — the simulated
/// crash — and returns the cleanly processed prefix plus the last
/// coordinated checkpoint, which [`recover_mesh_simulation`] resumes
/// from.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn run_checkpointed_mesh_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    mode: RouteMode,
    shards: usize,
    schedule: &DriverSchedule<R, S>,
    plan: &MeshPlan,
    every_events: usize,
    crash_after_events: Option<usize>,
) -> (
    MeshSimReport<R, S>,
    Vec<SimCheckpointEvent>,
    Option<SimMeshCheckpoint<R, S>>,
)
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    assert!(config.nodes > 0, "pipeline needs at least one node");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(every_events > 0, "checkpoint interval must be positive");
    assert!(
        mode == RouteMode::FragmentReplicate || predicate.supports_index(),
        "co-partitioning requires a predicate with both equi-key extractors"
    );
    let factory = node_factory(config, predicate.clone());
    let width = config.nodes;
    let mut mesh = MeshSim {
        config: config.clone(),
        router: ShardRouter::new(predicate.clone(), mode, shards),
        sims: (0..shards)
            .map(|_| ElasticSim::new(config, width, &factory))
            .collect(),
        injectors: (0..shards)
            .map(|_| Injector::new(predicate.clone(), policy.clone(), width))
            .collect(),
        left_bufs: vec![Vec::new(); shards],
        right_bufs: vec![Vec::new(); shards],
        left_arrivals: vec![0; shards],
        right_arrivals: vec![0; shards],
        predicate,
        policy,
        retired_results: Vec::new(),
        retired_outputs: Vec::new(),
        reshard_log: Vec::new(),
        last_at: Timestamp::ZERO,
    };

    let mut ckpt_log = Vec::new();
    let mut latest = None;
    let mut crashed = false;
    let mut steps = plan.steps.iter().peekable();
    for (idx, event) in schedule.events().iter().enumerate() {
        while let Some(step) = steps.next_if(|s| s.after_events <= idx) {
            mesh.reshape(step.shards, step.width, idx);
        }
        if crash_after_events == Some(idx) {
            crashed = true;
            break;
        }
        mesh.last_at = event.at;
        let at_ns = ts_to_ns(event.at);
        mesh.inject(event, at_ns);
        let consumed = idx + 1;
        if consumed.is_multiple_of(every_events) {
            let (ckpt, evt) = mesh.checkpoint_all(consumed);
            ckpt_log.push(evt);
            latest = Some(ckpt);
        }
    }
    mesh.fence_all();
    if !crashed {
        let trailing: Vec<_> = steps.cloned().collect();
        for step in trailing {
            mesh.reshape(step.shards, step.width, schedule.events().len());
        }
    }
    (mesh.into_report(), ckpt_log, latest)
}

/// Resumes a mesh simulation from a coordinated checkpoint (or replays
/// the whole schedule cold over `cold_shards` shards when `ckpt` is
/// `None`).  The mesh is rebuilt at the checkpoint's topology, every
/// shard pays the per-tuple decode cost while its window reinstalls, the
/// router reseeds its ownership tables from the checkpointed rows, and
/// the schedule suffix replays *rebased* to virtual zero — relative
/// stream spacing is preserved (exactness needs arrival/expiry order)
/// but the makespan measures install-plus-suffix, which is what the
/// recovery benchmark compares against a cold replay.
pub fn recover_mesh_simulation<R, S, P, H>(
    config: &SimConfig,
    predicate: P,
    policy: H,
    mode: RouteMode,
    cold_shards: usize,
    schedule: &DriverSchedule<R, S>,
    ckpt: Option<&SimMeshCheckpoint<R, S>>,
) -> MeshSimReport<R, S>
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
{
    assert!(config.nodes > 0, "pipeline needs at least one node");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert!(
        mode == RouteMode::FragmentReplicate || predicate.supports_index(),
        "co-partitioning requires a predicate with both equi-key extractors"
    );
    let factory = node_factory(config, predicate.clone());
    let (start_idx, widths): (usize, Vec<usize>) = match ckpt {
        Some(c) => (c.after_events, c.shards.iter().map(|s| s.width).collect()),
        None => (0, vec![config.nodes; cold_shards.max(1)]),
    };
    let shard_count = widths.len();
    let mut mesh = MeshSim {
        config: config.clone(),
        router: ShardRouter::new(predicate.clone(), mode, shard_count),
        sims: widths
            .iter()
            .map(|&w| ElasticSim::new(config, w, &factory))
            .collect(),
        injectors: widths
            .iter()
            .map(|&w| Injector::new(predicate.clone(), policy.clone(), w))
            .collect(),
        left_bufs: vec![Vec::new(); shard_count],
        right_bufs: vec![Vec::new(); shard_count],
        left_arrivals: vec![0; shard_count],
        right_arrivals: vec![0; shard_count],
        predicate,
        policy,
        retired_results: Vec::new(),
        retired_outputs: Vec::new(),
        reshard_log: Vec::new(),
        last_at: Timestamp::ZERO,
    };
    if let Some(c) = ckpt {
        for (shard, sc) in c.shards.iter().enumerate() {
            for seg in &sc.segments {
                for t in &seg.wr {
                    mesh.router.reseed_r(t.seq, &t.payload);
                }
                for t in &seg.ws {
                    mesh.router.reseed_s(t.seq, &t.payload);
                }
            }
            mesh.sims[shard].restore_checkpoint(sc);
        }
    }
    let len = schedule.events().len();
    let events = &schedule.events()[start_idx.min(len)..];
    let rebase = events.first().map_or(0, |e| ts_to_ns(e.at));
    let mut final_ns = mesh.sims.iter().map(|s| s.makespan_ns).max().unwrap_or(0);
    for event in events {
        mesh.last_at = event.at;
        let at_ns = ts_to_ns(event.at).saturating_sub(rebase);
        final_ns = final_ns.max(at_ns);
        mesh.inject(event, at_ns);
    }
    for shard in 0..mesh.sims.len() {
        mesh.flush_left(shard, final_ns);
        mesh.flush_right(shard, final_ns);
        mesh.sims[shard].drain(None);
    }
    mesh.into_report()
}

/// Binary-searches the maximum per-stream rate a mesh of `shards` shards
/// sustains (no node of any shard above the utilization threshold) — the
/// Figure 17 methodology applied to the second scaling axis.  This is
/// what `bench_shard` plots: aggregate capacity versus shard count at a
/// fixed per-shard width.
pub fn max_sustainable_mesh_rate<R, S, P, H, F>(
    base_config: &SimConfig,
    predicate: P,
    policy: H,
    mode: RouteMode,
    shards: usize,
    mut make_schedule: F,
    search: &ThroughputSearch,
) -> ThroughputResult
where
    R: Clone + Send + Sync + 'static,
    S: Clone + Send + Sync + 'static,
    P: JoinPredicate<R, S> + Clone + Send + Sync + 'static,
    H: HomePolicy + Clone,
    F: FnMut(f64) -> DriverSchedule<R, S>,
{
    assert!(search.min_rate > 0.0 && search.max_rate > search.min_rate);
    let mut lo = search.min_rate;
    let mut hi = search.max_rate;
    let mut best = (search.min_rate, 0.0f64);
    for _ in 0..search.steps {
        let mid = (lo + hi) / 2.0;
        let mut config = base_config.clone();
        config.expected_rate_per_sec = mid;
        let schedule = make_schedule(mid);
        let report = run_mesh_simulation(
            &config,
            predicate.clone(),
            policy.clone(),
            mode,
            shards,
            &schedule,
            &MeshPlan::none(),
        );
        if report.is_sustainable(search.utilization_threshold) {
            best = (mid, report.max_utilization());
            lo = mid;
        } else {
            hi = mid;
        }
    }
    ThroughputResult {
        rate_per_stream: best.0,
        utilization: best.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use llhj_baselines::run_kang;
    use llhj_core::homing::RoundRobin;
    use llhj_core::predicate::{EquiPredicate, FnPredicate};
    use llhj_core::punctuation::verify_punctuated_stream;
    use llhj_core::time::TimeDelta;
    use llhj_core::window::WindowSpec;

    type KeyFn = fn(&u32) -> u64;

    fn equi() -> EquiPredicate<KeyFn, KeyFn> {
        fn key(v: &u32) -> u64 {
            *v as u64
        }
        EquiPredicate::new(key as fn(&u32) -> u64, key as fn(&u32) -> u64)
    }

    fn band() -> FnPredicate<fn(&u32, &u32) -> bool> {
        fn near(r: &u32, s: &u32) -> bool {
            r.abs_diff(*s) <= 1
        }
        FnPredicate(near as fn(&u32, &u32) -> bool)
    }

    fn schedule(tuples: u64, window_ms: u64) -> DriverSchedule<u32, u32> {
        let r: Vec<_> = (0..tuples)
            .map(|i| (Timestamp::from_millis(i), (i % 13) as u32))
            .collect();
        let s: Vec<_> = (0..tuples)
            .map(|i| (Timestamp::from_millis(i), (i % 17) as u32))
            .collect();
        DriverSchedule::build(
            r,
            s,
            WindowSpec::Time(TimeDelta::from_millis(window_ms)),
            WindowSpec::Time(TimeDelta::from_millis(window_ms)),
        )
    }

    fn config(width: usize, algorithm: Algorithm) -> SimConfig {
        let mut cfg = SimConfig::new(width, algorithm);
        cfg.batch_size = 4;
        cfg.punctuate = true;
        cfg.window_r = WindowSpec::Time(TimeDelta::from_millis(150));
        cfg.window_s = cfg.window_r;
        cfg.latency_bucket = 1_000_000;
        cfg
    }

    #[test]
    fn mesh_sim_matches_the_oracle_across_shard_counts() {
        let sched = schedule(300, 150);
        let oracle = run_kang(equi(), &sched);
        for shards in [1usize, 2, 4] {
            let report = run_mesh_simulation(
                &config(2, Algorithm::LlhjIndexed),
                equi(),
                RoundRobin,
                RouteMode::CoPartition,
                shards,
                &sched,
                &MeshPlan::none(),
            );
            assert_eq!(
                report.result_keys(),
                oracle.result_keys(),
                "{shards}-shard mesh sim must be byte-identical to the oracle"
            );
            assert_eq!(report.shards, shards);
            verify_punctuated_stream(&report.output, |t| t.result.ts())
                .unwrap_or_else(|i| panic!("invalid merged stream at item {i}"));
        }
    }

    #[test]
    fn fragment_replicate_mesh_sim_matches_the_oracle() {
        let sched = schedule(300, 150);
        let oracle = run_kang(band(), &sched);
        let report = run_mesh_simulation(
            &config(2, Algorithm::Llhj),
            band(),
            RoundRobin,
            RouteMode::FragmentReplicate,
            4,
            &sched,
            &MeshPlan::none(),
        );
        assert_eq!(report.result_keys(), oracle.result_keys());
        // No duplicates: every (r, s) pair is examined only in the shard
        // that owns r.
        let keys = report.result_keys();
        let mut deduped = keys.clone();
        deduped.dedup();
        assert_eq!(keys, deduped);
    }

    #[test]
    fn mid_run_split_and_merge_preserve_the_result_set() {
        let sched = schedule(300, 150);
        let oracle = run_kang(equi(), &sched);
        let events = sched.events().len();
        let plan = MeshPlan::from_steps(&[(events / 3, 4, 2), (2 * events / 3, 2, 2)]);
        let report = run_mesh_simulation(
            &config(2, Algorithm::LlhjIndexed),
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            2,
            &sched,
            &plan,
        );
        assert_eq!(report.result_keys(), oracle.result_keys());
        assert_eq!(report.reshard_log.len(), 2);
        assert_eq!(report.reshard_log[0].to_shards, 4);
        assert_eq!(report.reshard_log[1].to_shards, 2);
        assert!(
            report.reshard_log[1].moved_tuples > 0,
            "folding four live shards into two must move window state"
        );
        verify_punctuated_stream(&report.output, |t| t.result.ts())
            .unwrap_or_else(|i| panic!("invalid merged stream at item {i}"));
    }

    /// The durability mirror on the mesh: a checkpointed run is
    /// byte-identical to the plain one (transparency), a crashed run plus
    /// the recovery from its last coordinated checkpoint reproduces the
    /// oracle set exactly, and recovering from the checkpoint is cheaper
    /// in virtual time than replaying the whole schedule cold.
    #[test]
    fn checkpointed_mesh_sim_recovers_from_a_crash() {
        let sched = schedule(300, 150);
        let oracle = run_kang(equi(), &sched);
        let events = sched.events().len();
        let plan = MeshPlan::from_steps(&[(events / 3, 4, 2)]);
        let cfg = config(2, Algorithm::LlhjIndexed);
        let (full, ckpt_log, latest) = run_checkpointed_mesh_simulation(
            &cfg,
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            2,
            &sched,
            &plan,
            100,
            None,
        );
        assert_eq!(
            full.result_keys(),
            oracle.result_keys(),
            "checkpointing must be transparent to the result set"
        );
        assert_eq!(ckpt_log.len(), events / 100);
        assert!(ckpt_log.iter().all(|e| e.cost_ns > 0));
        let latest = latest.expect("run long enough to checkpoint");
        assert_eq!(
            latest.shards.len(),
            4,
            "the last coordinated capture sees the post-split topology"
        );

        let crash_at = 2 * events / 3;
        let (crashed, _, latest) = run_checkpointed_mesh_simulation(
            &cfg,
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            2,
            &sched,
            &plan,
            100,
            Some(crash_at),
        );
        let latest = latest.expect("crash landed after the first checkpoint");
        assert_eq!(latest.after_events, (crash_at / 100) * 100);
        let recovered = recover_mesh_simulation(
            &cfg,
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            2,
            &sched,
            Some(&latest),
        );
        let cold = recover_mesh_simulation(
            &cfg,
            equi(),
            RoundRobin,
            RouteMode::CoPartition,
            2,
            &sched,
            None,
        );
        assert_eq!(cold.result_keys(), oracle.result_keys());
        let mut keys = crashed.result_keys();
        keys.extend(recovered.result_keys());
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            keys,
            oracle.result_keys(),
            "crashed prefix plus recovered suffix must cover the oracle set exactly"
        );
        assert!(
            recovered.makespan_ns < cold.makespan_ns,
            "recovery from a checkpoint must beat a cold replay: {} vs {}",
            recovered.makespan_ns,
            cold.makespan_ns
        );
    }

    /// The tentpole's scaling claim on the simulator: at a fixed per-shard
    /// width, four shards sustain at least twice the per-stream rate of
    /// one shard (the regime where scan cost dominates per-message
    /// overhead, as in the chain-scaling throughput test).
    #[test]
    fn four_shards_sustain_at_least_twice_one_shard() {
        let window = WindowSpec::Count(200);
        let search = ThroughputSearch {
            utilization_threshold: 0.9,
            min_rate: 100.0,
            max_rate: 150_000.0,
            steps: 10,
        };
        let mk = move |rate: f64| {
            let n = (rate * 0.25) as u64;
            let gap = (1e6 / rate) as u64;
            let r: Vec<_> = (0..n)
                .map(|i| (Timestamp::from_micros(i * gap), (i % 97) as u32))
                .collect();
            let s: Vec<_> = (0..n)
                .map(|i| (Timestamp::from_micros(i * gap), (i % 89) as u32))
                .collect();
            DriverSchedule::build(r, s, window, window)
        };
        // The scan-dominated regime (no index: every probe scans the
        // local R window at 400 ns per comparison) — the regime where
        // partitioning the key space pays, as in the chain-scaling test.
        let mut cfg = SimConfig::new(2, Algorithm::Llhj);
        cfg.batch_size = 16;
        cfg.cost.per_comparison_ns = 400.0;
        cfg.window_r = window;
        cfg.window_s = window;
        cfg.latency_bucket = 1_000_000;
        cfg.collect_interval = TimeDelta::from_millis(10);
        let rate_of = |shards: usize| {
            max_sustainable_mesh_rate(
                &cfg,
                equi(),
                RoundRobin,
                RouteMode::CoPartition,
                shards,
                mk,
                &search,
            )
            .rate_per_stream
        };
        let one = rate_of(1);
        let four = rate_of(4);
        assert!(
            four >= one * 2.0,
            "4 shards must sustain at least twice 1 shard: {one} vs {four}"
        );
    }
}
