//! Join predicates.
//!
//! A [`JoinPredicate`] decides whether a pair `(r, s)` belongs to the join
//! result.  Predicates may additionally expose an *equi-key* for both sides;
//! when they do, node-local windows can maintain a hash index and probing
//! degenerates from a full window scan to a hash lookup (the "index
//! acceleration" of Section 7.6 / Table 2 of the paper).

use std::sync::Arc;

/// A join predicate over payload types `R` and `S`.
pub trait JoinPredicate<R, S>: Send + Sync {
    /// Evaluates the predicate for one pair.
    fn matches(&self, r: &R, s: &S) -> bool;

    /// Equi-key of an `R` payload, if this predicate is (partly) an
    /// equi-join.  Two payloads can only match if their keys are equal.
    ///
    /// The default implementation returns `None`, which disables hash
    /// indexing and forces nested-loop scans.
    fn r_key(&self, _r: &R) -> Option<u64> {
        None
    }

    /// Equi-key of an `S` payload; see [`JoinPredicate::r_key`].
    fn s_key(&self, _s: &S) -> Option<u64> {
        None
    }

    /// True if both key extractors are available, i.e. the predicate can be
    /// accelerated with node-local hash indexes.
    fn supports_index(&self) -> bool {
        false
    }
}

/// Blanket implementation: any shared predicate is a predicate.
impl<R, S, P: JoinPredicate<R, S> + ?Sized> JoinPredicate<R, S> for Arc<P> {
    fn matches(&self, r: &R, s: &S) -> bool {
        (**self).matches(r, s)
    }
    fn r_key(&self, r: &R) -> Option<u64> {
        (**self).r_key(r)
    }
    fn s_key(&self, s: &S) -> Option<u64> {
        (**self).s_key(s)
    }
    fn supports_index(&self) -> bool {
        (**self).supports_index()
    }
}

/// Wraps a plain closure as a nested-loop-only predicate.
#[derive(Clone)]
pub struct FnPredicate<F>(pub F);

impl<R, S, F> JoinPredicate<R, S> for FnPredicate<F>
where
    F: Fn(&R, &S) -> bool + Send + Sync,
{
    #[inline]
    fn matches(&self, r: &R, s: &S) -> bool {
        (self.0)(r, s)
    }
}

/// An equi-join on integer keys extracted by two closures.
///
/// `matches` compares the keys; `r_key`/`s_key` expose them so node-local
/// windows can build hash indexes.
#[derive(Clone)]
pub struct EquiPredicate<KR, KS> {
    extract_r: KR,
    extract_s: KS,
}

impl<KR, KS> EquiPredicate<KR, KS> {
    /// Creates an equi-join predicate from two key extractors.
    pub fn new(extract_r: KR, extract_s: KS) -> Self {
        EquiPredicate {
            extract_r,
            extract_s,
        }
    }
}

impl<R, S, KR, KS> JoinPredicate<R, S> for EquiPredicate<KR, KS>
where
    KR: Fn(&R) -> u64 + Send + Sync,
    KS: Fn(&S) -> u64 + Send + Sync,
{
    #[inline]
    fn matches(&self, r: &R, s: &S) -> bool {
        (self.extract_r)(r) == (self.extract_s)(s)
    }
    #[inline]
    fn r_key(&self, r: &R) -> Option<u64> {
        Some((self.extract_r)(r))
    }
    #[inline]
    fn s_key(&self, s: &S) -> Option<u64> {
        Some((self.extract_s)(s))
    }
    fn supports_index(&self) -> bool {
        true
    }
}

/// A predicate that accepts every pair.  Useful for cross-product style
/// stress tests and for measuring pure pipeline overheads.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTrue;

impl<R, S> JoinPredicate<R, S> for AlwaysTrue {
    #[inline]
    fn matches(&self, _r: &R, _s: &S) -> bool {
        true
    }
}

/// A predicate that rejects every pair.  Useful for measuring scan cost with
/// zero result volume.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysFalse;

impl<R, S> JoinPredicate<R, S> for AlwaysFalse {
    #[inline]
    fn matches(&self, _r: &R, _s: &S) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_predicate_delegates() {
        let p = FnPredicate(|r: &i64, s: &i64| r + s == 10);
        assert!(p.matches(&4, &6));
        assert!(!p.matches(&4, &7));
        assert!(!JoinPredicate::<i64, i64>::supports_index(&p));
        assert_eq!(JoinPredicate::<i64, i64>::r_key(&p, &4), None);
    }

    #[test]
    fn equi_predicate_exposes_keys() {
        let p = EquiPredicate::new(|r: &(u64, u64)| r.0, |s: &u64| *s);
        assert!(p.matches(&(5, 99), &5));
        assert!(!p.matches(&(5, 99), &6));
        assert_eq!(p.r_key(&(5, 99)), Some(5));
        assert_eq!(p.s_key(&7), Some(7));
        assert!(JoinPredicate::<(u64, u64), u64>::supports_index(&p));
    }

    #[test]
    fn arc_predicate_forwards_everything() {
        let p: Arc<EquiPredicate<_, _>> = Arc::new(EquiPredicate::new(|r: &u64| *r, |s: &u64| *s));
        assert!(p.matches(&3, &3));
        assert_eq!(JoinPredicate::<u64, u64>::r_key(&p, &3), Some(3));
        assert!(JoinPredicate::<u64, u64>::supports_index(&p));
    }

    #[test]
    fn constant_predicates() {
        assert!(JoinPredicate::<u8, u8>::matches(&AlwaysTrue, &1, &2));
        assert!(!JoinPredicate::<u8, u8>::matches(&AlwaysFalse, &1, &2));
    }
}
