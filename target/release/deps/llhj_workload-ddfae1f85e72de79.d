/root/repo/target/release/deps/llhj_workload-ddfae1f85e72de79.d: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/rng.rs crates/workload/src/schema.rs

/root/repo/target/release/deps/llhj_workload-ddfae1f85e72de79: crates/workload/src/lib.rs crates/workload/src/generator.rs crates/workload/src/rng.rs crates/workload/src/schema.rs

crates/workload/src/lib.rs:
crates/workload/src/generator.rs:
crates/workload/src/rng.rs:
crates/workload/src/schema.rs:
