/root/repo/target/debug/examples/scalability_sweep-7208f6e0ade24e6b.d: examples/scalability_sweep.rs

/root/repo/target/debug/examples/libscalability_sweep-7208f6e0ade24e6b.rmeta: examples/scalability_sweep.rs

examples/scalability_sweep.rs:
