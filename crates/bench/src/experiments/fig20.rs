//! Figure 20: latency distribution of low-latency handshake join with the
//! driver batch size reduced to four tuples (the minimum that still allows
//! vectorised processing in the original implementation).
//!
//! The shape to reproduce: shrinking the batch from 64 to 4 removes most of
//! the remaining latency — the average drops to roughly the batch period
//! and the maxima shrink accordingly.

use super::fig05::LatencyPointRow;
use super::fig19::{render, run_llhj_config, Fig19Config};
use crate::Scale;

/// The complete Figure 20 reproduction.
#[derive(Debug)]
pub struct Fig20Report {
    /// The measured configuration (equal windows, batch 4).
    pub config: Fig19Config,
    /// The same configuration with the default batch of 64, for the
    /// side-by-side comparison the paper makes between Figures 19 and 20.
    pub batch64: Fig19Config,
    /// Rendered report.
    pub text: String,
}

impl Fig20Report {
    /// Output-weighted average latency of a series, in milliseconds.
    pub fn weighted_average(points: &[LatencyPointRow]) -> f64 {
        if points.is_empty() {
            return 0.0;
        }
        let total: f64 = points.iter().map(|p| p.avg_ms * p.outputs as f64).sum();
        let count: f64 = points.iter().map(|p| p.outputs as f64).sum();
        total / count.max(1.0)
    }
}

/// Runs the Figure 20 reproduction.
pub fn run(scale: &Scale) -> Fig20Report {
    let nodes = *scale.sim_cores.last().unwrap_or(&4);
    let batch4 = run_llhj_config(scale, scale.window_secs, scale.window_secs, 4, nodes);
    let batch64 = run_llhj_config(scale, scale.window_secs, scale.window_secs, 64, nodes);
    let text = format!(
        "{}\n(batch 64 reference: average {:.2} ms)\n",
        render(&batch4, "Figure 20", 4),
        Fig20Report::weighted_average(&batch64.points)
    );
    Fig20Report {
        config: batch4,
        batch64,
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_batches_reduce_latency() {
        let report = run(&Scale::smoke());
        let small = Fig20Report::weighted_average(&report.config.points);
        let large = Fig20Report::weighted_average(&report.batch64.points);
        assert!(
            small < large,
            "batch 4 must have lower latency than batch 64: {small} vs {large} ms"
        );
        assert!(report.text.contains("Figure 20"));
    }

    #[test]
    fn batch4_latency_is_near_the_batch_period() {
        let scale = Scale::smoke();
        let report = run(&scale);
        let avg = Fig20Report::weighted_average(&report.config.points);
        // Batch period at the smoke rate: 4 / rate seconds.  Latency should
        // be the same order of magnitude (within ~10x, to be robust to the
        // scan and hop components).
        let period_ms = 4.0 / scale.rate_per_sec * 1_000.0;
        assert!(
            avg < period_ms * 10.0,
            "average {avg} ms far exceeds the batching scale {period_ms} ms"
        );
    }
}
