/root/repo/target/debug/examples/trading_band_join-9a1f3e009a66008e.d: examples/trading_band_join.rs

/root/repo/target/debug/examples/trading_band_join-9a1f3e009a66008e: examples/trading_band_join.rs

examples/trading_band_join.rs:
