/root/repo/target/release/deps/handshake_join-ef03fdba8ac0c9f6.d: src/lib.rs

/root/repo/target/release/deps/libhandshake_join-ef03fdba8ac0c9f6.rlib: src/lib.rs

/root/repo/target/release/deps/libhandshake_join-ef03fdba8ac0c9f6.rmeta: src/lib.rs

src/lib.rs:
