/root/repo/target/debug/deps/batching-a87899f1a2b45d66.d: crates/bench/benches/batching.rs Cargo.toml

/root/repo/target/debug/deps/libbatching-a87899f1a2b45d66.rmeta: crates/bench/benches/batching.rs Cargo.toml

crates/bench/benches/batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
