/root/repo/target/debug/deps/llhj_runtime-56800c50e3abd6e8.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/options.rs crates/runtime/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libllhj_runtime-56800c50e3abd6e8.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/options.rs crates/runtime/src/pipeline.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/options.rs:
crates/runtime/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
