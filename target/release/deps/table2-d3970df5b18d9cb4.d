/root/repo/target/release/deps/table2-d3970df5b18d9cb4.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d3970df5b18d9cb4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
