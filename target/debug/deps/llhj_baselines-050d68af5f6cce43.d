/root/repo/target/debug/deps/llhj_baselines-050d68af5f6cce43.d: crates/baselines/src/lib.rs crates/baselines/src/celljoin.rs crates/baselines/src/kang.rs

/root/repo/target/debug/deps/libllhj_baselines-050d68af5f6cce43.rlib: crates/baselines/src/lib.rs crates/baselines/src/celljoin.rs crates/baselines/src/kang.rs

/root/repo/target/debug/deps/libllhj_baselines-050d68af5f6cce43.rmeta: crates/baselines/src/lib.rs crates/baselines/src/celljoin.rs crates/baselines/src/kang.rs

crates/baselines/src/lib.rs:
crates/baselines/src/celljoin.rs:
crates/baselines/src/kang.rs:
