/root/repo/target/debug/deps/punctuation_and_order-7706b13bcfe36316.d: tests/punctuation_and_order.rs Cargo.toml

/root/repo/target/debug/deps/libpunctuation_and_order-7706b13bcfe36316.rmeta: tests/punctuation_and_order.rs Cargo.toml

tests/punctuation_and_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
