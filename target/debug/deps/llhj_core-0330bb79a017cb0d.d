/root/repo/target/debug/deps/llhj_core-0330bb79a017cb0d.d: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/homing.rs crates/core/src/latency_model.rs crates/core/src/message.rs crates/core/src/node.rs crates/core/src/node_hsj.rs crates/core/src/node_llhj.rs crates/core/src/predicate.rs crates/core/src/punctuation.rs crates/core/src/result.rs crates/core/src/sorter.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/time.rs crates/core/src/tuple.rs crates/core/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libllhj_core-0330bb79a017cb0d.rmeta: crates/core/src/lib.rs crates/core/src/driver.rs crates/core/src/homing.rs crates/core/src/latency_model.rs crates/core/src/message.rs crates/core/src/node.rs crates/core/src/node_hsj.rs crates/core/src/node_llhj.rs crates/core/src/predicate.rs crates/core/src/punctuation.rs crates/core/src/result.rs crates/core/src/sorter.rs crates/core/src/stats.rs crates/core/src/store.rs crates/core/src/time.rs crates/core/src/tuple.rs crates/core/src/window.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/driver.rs:
crates/core/src/homing.rs:
crates/core/src/latency_model.rs:
crates/core/src/message.rs:
crates/core/src/node.rs:
crates/core/src/node_hsj.rs:
crates/core/src/node_llhj.rs:
crates/core/src/predicate.rs:
crates/core/src/punctuation.rs:
crates/core/src/result.rs:
crates/core/src/sorter.rs:
crates/core/src/stats.rs:
crates/core/src/store.rs:
crates/core/src/time.rs:
crates/core/src/tuple.rs:
crates/core/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
