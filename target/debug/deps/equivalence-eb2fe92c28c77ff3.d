/root/repo/target/debug/deps/equivalence-eb2fe92c28c77ff3.d: tests/equivalence.rs

/root/repo/target/debug/deps/libequivalence-eb2fe92c28c77ff3.rmeta: tests/equivalence.rs

tests/equivalence.rs:
