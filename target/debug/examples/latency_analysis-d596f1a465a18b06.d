/root/repo/target/debug/examples/latency_analysis-d596f1a465a18b06.d: examples/latency_analysis.rs

/root/repo/target/debug/examples/liblatency_analysis-d596f1a465a18b06.rmeta: examples/latency_analysis.rs

examples/latency_analysis.rs:
