/root/repo/target/debug/deps/fig21-61b81bdf2a47e92d.d: crates/bench/src/bin/fig21.rs

/root/repo/target/debug/deps/fig21-61b81bdf2a47e92d: crates/bench/src/bin/fig21.rs

crates/bench/src/bin/fig21.rs:
