//! Batching sweep: throughput and latency of the threaded runtime as a
//! function of the driver's frame granularity.
//!
//! This is the experiment the batched-transport refactor exists for.  The
//! equi-join workload keeps per-tuple matching work small (node-local hash
//! indexes), so transport — channel operations, wake-ups, per-message
//! dispatch — dominates the hot path, and the sweep isolates how much of
//! that cost frames of `batch_size` tuples amortise.  `batch_size = 1` is
//! the eager per-tuple transport of the low-latency configuration;
//! `batch_size = 64` is the paper's default driver batch (Section 7.3).
//! The simulator runs the same sweep in virtual time, which is how the
//! latency side of the trade-off (Figure 20's axis) is measured without
//! wall-clock noise.

use crate::{fmt_f, Scale, TextTable};
use llhj_core::homing::RoundRobin;
use llhj_core::time::TimeDelta;
use llhj_core::window::WindowSpec;
use llhj_runtime::{llhj_indexed_nodes, run_pipeline, PipelineOptions};
use llhj_sim::{run_simulation, Algorithm, SimConfig};
use llhj_workload::{equi_join_schedule, EquiJoinWorkload, EquiXaPredicate};

/// One measured operating point of the sweep.
#[derive(Debug, Clone)]
pub struct BatchingRow {
    /// Driver batch size in tuples per frame.
    pub batch_size: usize,
    /// Threaded-runtime throughput (tuples/s per stream, wall clock).
    pub throughput_per_stream: f64,
    /// Entry frames the threaded driver injected.
    pub frames_injected: u64,
    /// Simulator mean result latency (virtual time, milliseconds).
    pub sim_latency_ms: f64,
    /// Simulator frames delivered (injections plus forwards).
    pub sim_frames: u64,
    /// Result count (diagnostic: the unpaced stress replay may differ
    /// slightly across granularities because stream time runs far ahead of
    /// processing time — see [`llhj_runtime::Pacing::Unpaced`]; exact
    /// semantic equivalence under batching is asserted by the real-time
    /// `batching_equivalence` integration test).
    pub results: usize,
}

/// Output of the batching sweep.
#[derive(Debug)]
pub struct BatchingReport {
    /// One row per swept batch size.
    pub rows: Vec<BatchingRow>,
    /// Human-readable report.
    pub report: String,
}

impl BatchingReport {
    /// Throughput of the row with the given batch size.
    pub fn throughput_at(&self, batch_size: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.batch_size == batch_size)
            .map(|r| r.throughput_per_stream)
    }

    /// Serialises the sweep as a JSON snapshot (hand-rolled: the build
    /// environment has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"batching_sweep\",\n");
        out.push_str(&format!("  \"host\": {},\n", crate::host_meta_json()));
        out.push_str("  \"workload\": \"equi_join\",\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"batch_size\": {}, \"throughput_per_stream\": {:.1}, \
                 \"frames_injected\": {}, \"sim_latency_ms\": {:.3}, \
                 \"sim_frames\": {}, \"results\": {}}}{}\n",
                row.batch_size,
                row.throughput_per_stream,
                row.frames_injected,
                row.sim_latency_ms,
                row.sim_frames,
                row.results,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The equi-join workload the sweep replays.
pub fn sweep_workload(scale: &Scale) -> EquiJoinWorkload {
    EquiJoinWorkload {
        rate_per_sec: scale.rate_per_sec * 20.0,
        // A wide key domain keeps the match count low, so the measured
        // time is transport, not result materialisation.
        duration: TimeDelta::from_secs(scale.duration_secs.min(10)),
        domain: scale.domain * 20,
        seed: scale.seed,
    }
}

/// Runs the sweep over the given batch sizes.
pub fn run(scale: &Scale, batch_sizes: &[usize]) -> BatchingReport {
    let workload = sweep_workload(scale);
    let window = WindowSpec::Count((workload.rate_per_sec / 4.0) as usize);
    let schedule = equi_join_schedule(&workload, window, window);
    let nodes = 4;

    let mut rows = Vec::with_capacity(batch_sizes.len());
    for &batch_size in batch_sizes {
        // Wall-clock side: the threaded runtime, unpaced (stress mode).
        let opts = PipelineOptions {
            batch_size,
            ..Default::default()
        };
        let outcome = run_pipeline(
            llhj_indexed_nodes(nodes, EquiXaPredicate),
            EquiXaPredicate,
            RoundRobin,
            &schedule,
            &opts,
        );

        // Virtual-time side: the simulator at the same granularity.
        let mut cfg = SimConfig::new(nodes, Algorithm::LlhjIndexed);
        cfg.batch_size = batch_size;
        cfg.window_r = window;
        cfg.window_s = window;
        cfg.expected_rate_per_sec = workload.rate_per_sec;
        cfg.latency_bucket = u64::MAX;
        let sim = run_simulation(&cfg, EquiXaPredicate, RoundRobin, &schedule);

        rows.push(BatchingRow {
            batch_size,
            throughput_per_stream: outcome.throughput_per_stream(),
            frames_injected: outcome.frames_injected,
            sim_latency_ms: sim.latency.mean().as_millis_f64(),
            sim_frames: sim.frames_delivered,
            results: outcome.results.len(),
        });
    }

    let mut table = TextTable::new([
        "batch",
        "throughput (t/s)",
        "frames",
        "sim latency (ms)",
        "sim frames",
        "results",
    ]);
    for row in &rows {
        table.row([
            row.batch_size.to_string(),
            fmt_f(row.throughput_per_stream, 1),
            row.frames_injected.to_string(),
            fmt_f(row.sim_latency_ms, 3),
            row.sim_frames.to_string(),
            row.results.to_string(),
        ]);
    }
    let report = format!(
        "Batching sweep: frame granularity vs throughput and latency (equi join)\n{}",
        table.render()
    );
    BatchingReport { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_consistent_and_batching_helps() {
        let report = run(&Scale::smoke(), &[1, 16]);
        assert_eq!(report.rows.len(), 2);
        // Both granularities find a comparable number of matches (exact
        // equality is a property of paced replays, not the unpaced stress
        // mode; see the batching_equivalence integration test).
        assert!(report.rows[0].results > 0 && report.rows[1].results > 0);
        // Coarser frames -> fewer frames, both measured and simulated.
        assert!(report.rows[1].frames_injected < report.rows[0].frames_injected);
        assert!(report.rows[1].sim_frames < report.rows[0].sim_frames);
        // Latency grows with the batch (virtual time, so exact).
        assert!(report.rows[1].sim_latency_ms > report.rows[0].sim_latency_ms);
        let json = report.to_json();
        assert!(json.contains("\"batch_size\": 16"));
        assert!(report.report.contains("Batching sweep"));
    }
}
