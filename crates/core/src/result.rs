//! Join result tuples.

use crate::time::Timestamp;
use crate::tuple::{NodeId, SeqNo, StreamTuple};

/// A join result `<r, s>`.
///
/// The result timestamp is defined as the later of the two input timestamps
/// (Section 6.1.2 of the paper): `t_<r,s> := max(t_r, t_s)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultTuple<R, S> {
    /// The R side of the pair.
    pub r: StreamTuple<R>,
    /// The S side of the pair.
    pub s: StreamTuple<S>,
    /// The node on which the match was detected.
    pub detected_on: NodeId,
}

impl<R, S> ResultTuple<R, S> {
    /// Creates a result tuple.
    #[inline]
    pub fn new(r: StreamTuple<R>, s: StreamTuple<S>, detected_on: NodeId) -> Self {
        ResultTuple { r, s, detected_on }
    }

    /// Result timestamp: `max(t_r, t_s)`.
    #[inline]
    pub fn ts(&self) -> Timestamp {
        self.r.ts.max(self.s.ts)
    }

    /// The pair of sequence numbers identifying this result.  Used by tests
    /// to compare result *sets* across algorithms.
    #[inline]
    pub fn key(&self) -> (SeqNo, SeqNo) {
        (self.r.seq, self.s.seq)
    }
}

/// A result annotated with the (stream-)time at which the join operator
/// emitted it; `latency = detected_at - max(t_r, t_s)` is exactly the
/// latency measure used throughout the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedResult<R, S> {
    /// The result pair.
    pub result: ResultTuple<R, S>,
    /// Stream time at which the match was produced.
    pub detected_at: Timestamp,
}

impl<R, S> TimedResult<R, S> {
    /// Creates a timed result.
    pub fn new(result: ResultTuple<R, S>, detected_at: Timestamp) -> Self {
        TimedResult {
            result,
            detected_at,
        }
    }

    /// Observed latency: time from the arrival of the later input tuple to
    /// the detection of the match (Section 3.1).
    pub fn latency(&self) -> crate::time::TimeDelta {
        self.detected_at.saturating_since(self.result.ts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;

    fn mk(tr: u64, ts: u64) -> ResultTuple<u32, u32> {
        ResultTuple::new(
            StreamTuple::new(SeqNo(1), Timestamp::from_secs(tr), 0),
            StreamTuple::new(SeqNo(2), Timestamp::from_secs(ts), 0),
            3,
        )
    }

    #[test]
    fn result_timestamp_is_max_of_inputs() {
        assert_eq!(mk(5, 9).ts(), Timestamp::from_secs(9));
        assert_eq!(mk(9, 5).ts(), Timestamp::from_secs(9));
        assert_eq!(mk(7, 7).ts(), Timestamp::from_secs(7));
    }

    #[test]
    fn key_identifies_the_pair() {
        assert_eq!(mk(1, 2).key(), (SeqNo(1), SeqNo(2)));
    }

    #[test]
    fn latency_is_measured_from_later_tuple() {
        let timed = TimedResult::new(mk(5, 9), Timestamp::from_secs(12));
        assert_eq!(timed.latency(), TimeDelta::from_secs(3));
        // Detection before the (logical) result timestamp clamps to zero.
        let timed = TimedResult::new(mk(5, 9), Timestamp::from_secs(8));
        assert_eq!(timed.latency(), TimeDelta::ZERO);
    }
}
