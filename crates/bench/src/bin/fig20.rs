//! Regenerates Figure 20 of the paper's evaluation.  Run with --release.
fn main() {
    let scale = llhj_bench::Scale::default();
    let report = llhj_bench::experiments::fig20::run(&scale);
    println!("{}", report.text);
}
