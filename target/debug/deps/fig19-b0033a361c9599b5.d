/root/repo/target/debug/deps/fig19-b0033a361c9599b5.d: crates/bench/src/bin/fig19.rs

/root/repo/target/debug/deps/libfig19-b0033a361c9599b5.rmeta: crates/bench/src/bin/fig19.rs

crates/bench/src/bin/fig19.rs:
