//! Frame channels: the runtime's point-to-point FIFO transport.
//!
//! Both join algorithms restrict communication to FIFO links between
//! neighbouring cores, and the batched transport moves whole
//! [`llhj_core::message::MessageBatch`] frames over them, so the channel
//! does not need to be clever — it needs to be correct, dependency-free
//! (this environment cannot fetch crossbeam from a registry) and cheap *per
//! frame*: with `batch_size` tuples per frame, one lock acquisition is
//! amortised over the whole run of messages, which is exactly the
//! granularity trade-off the paper's Section 2 analyses.
//!
//! Two transports live behind the one `Sender`/`Receiver` API:
//!
//! * **Mutex** ([`bounded`] / [`unbounded`]): a `Mutex<VecDeque>` plus two
//!   condition variables (consumer wake-up and, for bounded channels,
//!   producer backpressure).  Senders are cloneable (multiple producers),
//!   receivers are unique.  This remains the transport for the genuinely
//!   multi-producer edges — the elastic result channel and the command
//!   mailboxes — and the reference implementation the ring is tested
//!   against.
//! * **Ring** ([`spsc_bounded`] / [`spsc_unbounded`]): the lock-free ring
//!   buffer in [`crate::ring`], used for the chain's data edges, which
//!   are single-producer/single-consumer by construction.  The consumer's
//!   [`WaitSet`] is bound at construction (the ring's notify path must
//!   not take a lock to look the waiter up), so `set_waiter` on a ring
//!   receiver only *re-asserts* the binding.
//!
//! A worker consumes *two* channels (its left and right input), so blocking
//! on a single channel's condition variable is not enough: a frame on the
//! other input must also wake it.  [`WaitSet`] solves this — it is a small
//! eventcount (epoch counter + condvar) that any number of channels can be
//! registered with via [`Receiver::set_waiter`]; every send into (and every
//! disconnect of) a registered channel bumps the epoch and wakes the
//! waiter, so the consumer can block on one primitive until *either* input
//! has work.  The runtime also uses bare wait sets as shutdown/quiescence
//! signals, making `Condvar::wait_timeout` the single blocking primitive of
//! the whole pipeline.

use std::collections::VecDeque;

use llhj_sync::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use llhj_sync::sync::{Arc, Condvar, Mutex};
use llhj_sync::time::{Duration, Instant};

/// A shared wake-up target: an eventcount (atomic epoch + waiter count,
/// with a `Mutex`/`Condvar` used only for actual parking).
///
/// The consumer snapshots the [`epoch`](WaitSet::epoch), polls its inputs,
/// and — if all were empty — parks in [`wait`](WaitSet::wait) until the
/// epoch moves past the snapshot.  Because the snapshot is taken *before*
/// polling, a producer that enqueues between the poll and the park bumps
/// the epoch first and the wait returns immediately: no lost wake-ups.
///
/// The split representation keeps the producer path cheap: under sustained
/// load the consumer is rarely parked, and [`notify`](WaitSet::notify) is
/// then one atomic increment plus one atomic load — the mutex and condvar
/// are touched only when a waiter is actually asleep.
#[derive(Clone, Default)]
pub struct WaitSet {
    inner: Arc<WaitSetInner>,
}

#[derive(Default)]
struct WaitSetInner {
    epoch: AtomicU64,
    /// Number of threads inside `wait` (incremented under `lock` before
    /// the final epoch re-check, so `notify` cannot observe 0 while a
    /// waiter is between its re-check and the condvar park).
    waiters: AtomicUsize,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl WaitSet {
    /// Creates an empty wait set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current epoch, to pass to a later [`wait`](WaitSet::wait).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(SeqCst)
    }

    /// Bumps the epoch and wakes every parked waiter.  With no waiter
    /// parked this is two uncontended atomic operations.
    pub fn notify(&self) {
        self.inner.epoch.fetch_add(1, SeqCst);
        if self.inner.waiters.load(SeqCst) > 0 {
            // Taking (and immediately releasing) the lock serialises with a
            // waiter that passed its epoch re-check but has not yet parked:
            // either it sees the new epoch, or it is inside `wait_timeout`
            // and the notification below reaches it.
            drop(self.inner.lock.lock().expect("waitset poisoned"));
            self.inner.condvar.notify_all();
        }
    }

    /// Parks until the epoch differs from `seen` or `timeout` elapses.
    /// Returns `true` if the epoch moved (a notification arrived), `false`
    /// on timeout — the caller should re-poll either way.
    pub fn wait(&self, seen: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.inner.lock.lock().expect("waitset poisoned");
        // Registration order matters: advertise the waiter *before* the
        // epoch re-check.  A notify that misses the registration therefore
        // bumped the epoch before our re-check (SeqCst total order), so we
        // return immediately; a notify that sees it will take the lock and
        // signal the condvar.
        self.inner.waiters.fetch_add(1, SeqCst);
        let moved = loop {
            if self.inner.epoch.load(SeqCst) != seen {
                break true;
            }
            let now = Instant::now();
            if now >= deadline {
                break false;
            }
            let (g, _) = self
                .inner
                .condvar
                .wait_timeout(guard, deadline - now)
                .expect("waitset poisoned");
            guard = g;
        };
        self.inner.waiters.fetch_sub(1, SeqCst);
        moved
    }

    /// True if `other` is a handle to this same wait set (ring receivers
    /// use it to re-assert their construction-time waiter binding).
    pub fn same_as(&self, other: &WaitSet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for WaitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaitSet")
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// A cooperative cancellation handle for long-running pipeline replays.
///
/// The driver's real-time pacing can sleep for arbitrarily long between
/// schedule events (a silent stream, a long simulated gap).  Instead of
/// `thread::sleep`, the driver parks on the token's [`WaitSet`] with the
/// pacing gap as the timeout, so an external [`cancel`](CancelToken::cancel)
/// interrupts the wait immediately: the run stops injecting, drains the
/// pipeline and returns the partial outcome — it does not have to sleep
/// out the gap first.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    signal: WaitSet,
}

impl CancelToken {
    /// Creates an un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation and wakes every wait parked on the token.
    /// Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, SeqCst);
        self.signal.notify();
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(SeqCst)
    }

    /// Parks until the deadline passes or the token is cancelled, whichever
    /// comes first.  Returns `true` if the token was cancelled.
    ///
    /// The epoch snapshot is taken before the cancellation re-check, so a
    /// `cancel` racing with the park is never lost (same discipline as the
    /// worker wait loop).
    pub fn wait_until(&self, deadline: Instant) -> bool {
        loop {
            let seen = self.signal.epoch();
            if self.is_cancelled() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.signal.wait(seen, deadline - now);
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// Why a receive attempt returned no frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty but senders still exist.
    Empty,
    /// The queue is empty and every sender has been dropped.
    Disconnected,
}

/// Error returned when sending into a channel whose receiver is gone.
/// Carries the rejected frame back to the caller.
#[derive(Debug)]
pub struct SendError<T>(pub T);

struct State<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receiver_alive: bool,
    /// Wait set to poke whenever a frame arrives or the channel
    /// disconnects, so a consumer blocked across several channels wakes.
    waiter: Option<WaitSet>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The transport behind a channel endpoint: the generic mutex queue or
/// the lock-free SPSC ring.
enum Flavor<T> {
    Mutex(Arc<Shared<T>>),
    Ring(Arc<crate::ring::Ring<T>>),
}

impl<T> Clone for Flavor<T> {
    fn clone(&self) -> Self {
        match self {
            Flavor::Mutex(shared) => Flavor::Mutex(Arc::clone(shared)),
            Flavor::Ring(ring) => Flavor::Ring(Arc::clone(ring)),
        }
    }
}

/// The producing half of a frame channel.
pub struct Sender<T> {
    flavor: Flavor<T>,
}

/// The consuming half of a frame channel.
pub struct Receiver<T> {
    flavor: Flavor<T>,
}

/// Creates a bounded channel: `send` blocks while `capacity` frames are
/// queued, which is how the driver experiences backpressure from the
/// pipeline.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity.max(1)))
}

/// Creates an unbounded channel: `send` never blocks.  Used for the links
/// *between* workers, where mutual blocking of two neighbours (R traffic
/// going right, acknowledgements going left) could deadlock.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded lock-free SPSC ring channel (`capacity` rounded up
/// to a power of two): the transport for the chain's *entry* edges, where
/// a full ring must block the driver (backpressure).  `waiter` is the
/// consumer's wait set, bound for the channel's lifetime.
pub fn spsc_bounded<T>(capacity: usize, waiter: Option<&WaitSet>) -> (Sender<T>, Receiver<T>) {
    ring_channel(capacity, true, waiter)
}

/// Creates an unbounded ring channel: a lock-free ring of `ring_capacity`
/// slots backed by a mutex spillway that absorbs bursts, so `send` never
/// blocks.  The transport for the links *between* workers (where mutual
/// blocking of two neighbours could deadlock) and for the flow-back
/// recycling edges.
pub fn spsc_unbounded<T>(
    ring_capacity: usize,
    waiter: Option<&WaitSet>,
) -> (Sender<T>, Receiver<T>) {
    ring_channel(ring_capacity, false, waiter)
}

fn ring_channel<T>(
    capacity: usize,
    bounded: bool,
    waiter: Option<&WaitSet>,
) -> (Sender<T>, Receiver<T>) {
    let ring = Arc::new(crate::ring::Ring::new(capacity, bounded, waiter));
    (
        Sender {
            flavor: Flavor::Ring(Arc::clone(&ring)),
        },
        Receiver {
            flavor: Flavor::Ring(ring),
        },
    )
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receiver_alive: true,
            waiter: None,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            flavor: Flavor::Mutex(Arc::clone(&shared)),
        },
        Receiver {
            flavor: Flavor::Mutex(shared),
        },
    )
}

impl<T> Sender<T> {
    /// Enqueues one frame, blocking while a bounded channel is full.
    /// Returns the frame if the receiver has been dropped.
    pub fn send(&self, frame: T) -> Result<(), SendError<T>> {
        let shared = match &self.flavor {
            Flavor::Ring(ring) => return ring.send(frame),
            Flavor::Mutex(shared) => shared,
        };
        let mut state = shared.state.lock().expect("channel poisoned");
        loop {
            if !state.receiver_alive {
                return Err(SendError(frame));
            }
            match state.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = shared.not_full.wait(state).expect("channel poisoned");
                }
                _ => break,
            }
        }
        state.queue.push_back(frame);
        // Notified under the channel lock to avoid cloning the waiter on
        // every send; with no consumer parked this is two atomic ops.
        // Lock order is channel → wait set and `wait` never touches a
        // channel, so no cycle.
        if let Some(waiter) = &state.waiter {
            waiter.notify();
        }
        drop(state);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Best-effort non-blocking send: enqueues only if it can do so
    /// without blocking or spilling, returning the frame otherwise.  The
    /// arena flow-back edges use it — dropping a recycled buffer beats
    /// waiting for room to return it.
    pub fn try_send(&self, frame: T) -> Result<(), T> {
        match &self.flavor {
            Flavor::Ring(ring) => ring.try_send(frame),
            Flavor::Mutex(shared) => {
                let mut state = shared.state.lock().expect("channel poisoned");
                if !state.receiver_alive {
                    return Err(frame);
                }
                if let Some(cap) = state.capacity {
                    if state.queue.len() >= cap {
                        return Err(frame);
                    }
                }
                state.queue.push_back(frame);
                if let Some(waiter) = &state.waiter {
                    waiter.notify();
                }
                drop(state);
                shared.not_empty.notify_one();
                Ok(())
            }
        }
    }
}

impl<T> Sender<T> {
    /// Number of frames currently queued in the channel.
    ///
    /// Exposed on the *sender* because that is the half the control plane
    /// keeps: the metrics sampler probes the driver-side entry channels
    /// for occupancy without disturbing the consuming worker.
    pub fn len(&self) -> usize {
        match &self.flavor {
            Flavor::Ring(ring) => ring.len(),
            Flavor::Mutex(shared) => shared.state.lock().expect("channel poisoned").queue.len(),
        }
    }

    /// True if no frame is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        match &self.flavor {
            Flavor::Ring(ring) => ring.add_sender(),
            Flavor::Mutex(shared) => {
                shared.state.lock().expect("channel poisoned").senders += 1;
            }
        }
        Sender {
            flavor: self.flavor.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let shared = match &self.flavor {
            Flavor::Ring(ring) => return ring.drop_sender(),
            Flavor::Mutex(shared) => shared,
        };
        let mut state = shared.state.lock().expect("channel poisoned");
        state.senders -= 1;
        let last = state.senders == 0;
        if last {
            // Wake a receiver blocked in recv_timeout (or in a multi-channel
            // WaitSet) so it observes the disconnect promptly.
            if let Some(waiter) = &state.waiter {
                waiter.notify();
            }
            drop(state);
            shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Registers a [`WaitSet`] with this channel: every subsequent send
    /// (and the final sender's disconnect) notifies it.  A consumer that
    /// reads several channels registers the same wait set with each, then
    /// blocks on the set instead of on any single channel.
    ///
    /// Ring channels bind their waiter at construction (the lock-free
    /// notify path cannot look a late-bound waiter up); calling this on
    /// one asserts the argument *is* that bound wait set, catching a
    /// miswired topology at the registration site instead of as a hang.
    pub fn set_waiter(&self, waiter: &WaitSet) {
        match &self.flavor {
            Flavor::Ring(ring) => {
                assert!(
                    ring.wake().same_as(waiter),
                    "ring channels bind their WaitSet at construction; \
                     pass the consumer's wait set to spsc_bounded/spsc_unbounded"
                );
            }
            Flavor::Mutex(shared) => {
                shared.state.lock().expect("channel poisoned").waiter = Some(waiter.clone());
            }
        }
    }

    /// Dequeues the next frame without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = match &self.flavor {
            Flavor::Ring(ring) => return ring.try_recv(),
            Flavor::Mutex(shared) => shared,
        };
        let mut state = shared.state.lock().expect("channel poisoned");
        match state.queue.pop_front() {
            Some(frame) => {
                drop(state);
                shared.not_full.notify_one();
                Ok(frame)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeues the next frame, waiting up to `timeout` for one to arrive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, TryRecvError> {
        let shared = match &self.flavor {
            Flavor::Ring(ring) => return ring.recv_timeout(timeout),
            Flavor::Mutex(shared) => shared,
        };
        let deadline = Instant::now() + timeout;
        let mut state = shared.state.lock().expect("channel poisoned");
        loop {
            if let Some(frame) = state.queue.pop_front() {
                drop(state);
                shared.not_full.notify_one();
                return Ok(frame);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TryRecvError::Empty);
            }
            let (guard, _timeout_result) = shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("channel poisoned");
            state = guard;
        }
    }

    /// True if no frame is currently queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queued frames.
    pub fn len(&self) -> usize {
        match &self.flavor {
            Flavor::Ring(ring) => ring.len(),
            Flavor::Mutex(shared) => shared.state.lock().expect("channel poisoned").queue.len(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let shared = match &self.flavor {
            Flavor::Ring(ring) => return ring.drop_receiver(),
            Flavor::Mutex(shared) => shared,
        };
        let mut state = shared.state.lock().expect("channel poisoned");
        state.receiver_alive = false;
        state.queue.clear();
        drop(state);
        // Unblock producers stuck on a full bounded channel.
        shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llhj_sync::thread;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // The third send must block until the consumer drains a slot.
        let handle = thread::spawn(move || {
            let start = Instant::now();
            tx.send(3).unwrap();
            start.elapsed()
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.try_recv(), Ok(1));
        let blocked_for = handle.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(10),
            "send returned after {blocked_for:?}, should have blocked"
        );
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty), "tx2 still alive");
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(TryRecvError::Disconnected)
        );
    }

    #[test]
    fn dropping_the_receiver_fails_sends_and_unblocks_producers() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let handle = thread::spawn(move || tx.send(2).is_err());
        thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert!(handle.join().unwrap(), "send must fail after receiver drop");
    }

    #[test]
    fn recv_timeout_delivers_cross_thread() {
        let (tx, rx) = unbounded();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(5));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(42));
    }

    /// Runs `f` on a helper thread, panicking if it does not finish within
    /// `timeout` — guards the blocking-wait tests against a missed wake-up
    /// turning into a hung test suite.
    fn with_deadline<F: FnOnce() + Send + 'static>(timeout: Duration, f: F) {
        let (done_tx, done_rx) = unbounded();
        let handle = thread::spawn(move || {
            f();
            let _ = done_tx.send(());
        });
        assert_eq!(
            done_rx.recv_timeout(timeout),
            Ok(()),
            "blocked thread did not finish within {timeout:?}"
        );
        handle.join().unwrap();
    }

    #[test]
    fn waitset_wakes_on_send_to_either_registered_channel() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();
        let waitset = WaitSet::new();
        rx_a.set_waiter(&waitset);
        rx_b.set_waiter(&waitset);

        for (which, tx) in [(0u8, tx_a), (1u8, tx_b)] {
            assert!(rx_a.try_recv().is_err() && rx_b.try_recv().is_err());
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(5));
                tx.send(u32::from(which)).unwrap();
            });
            // The two-input wait must observe the send on either channel;
            // the deadline guards against a missed wake-up hanging forever.
            let deadline = Instant::now() + Duration::from_secs(5);
            let got = loop {
                let seen = waitset.epoch();
                match rx_a.try_recv().or_else(|_| rx_b.try_recv()) {
                    Ok(v) => break v,
                    Err(_) => {
                        assert!(
                            Instant::now() < deadline,
                            "send to channel {which} never woke the wait"
                        );
                        waitset.wait(seen, Duration::from_millis(100));
                    }
                }
            };
            assert_eq!(got, u32::from(which));
        }
    }

    #[test]
    fn waitset_snapshot_before_poll_prevents_lost_wakeups() {
        // Send *between* the epoch snapshot and the wait: the wait must
        // return immediately instead of sleeping out its full timeout.
        let (tx, rx) = unbounded::<u32>();
        let waitset = WaitSet::new();
        rx.set_waiter(&waitset);
        let seen = waitset.epoch();
        tx.send(1).unwrap();
        let start = Instant::now();
        assert!(waitset.wait(seen, Duration::from_secs(5)));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "wait must return promptly when the epoch already moved"
        );
    }

    #[test]
    fn blocked_two_input_wait_exits_when_both_senders_drop() {
        // The shutdown path of a pipeline worker: parked on its WaitSet
        // with both inputs empty, it must wake and exit once both senders
        // disconnect — without any polling fallback.
        let (tx_left, rx_left) = unbounded::<u32>();
        let (tx_right, rx_right) = unbounded::<u32>();
        let waitset = WaitSet::new();
        rx_left.set_waiter(&waitset);
        rx_right.set_waiter(&waitset);

        with_deadline(Duration::from_secs(5), move || {
            let dropper = thread::spawn(move || {
                thread::sleep(Duration::from_millis(10));
                drop(tx_left);
                thread::sleep(Duration::from_millis(10));
                drop(tx_right);
            });
            // Worker loop: block until both inputs report Disconnected.
            loop {
                let seen = waitset.epoch();
                let left = rx_left.try_recv();
                let right = rx_right.try_recv();
                if left == Err(TryRecvError::Disconnected)
                    && right == Err(TryRecvError::Disconnected)
                {
                    break;
                }
                assert!(left.is_err() && right.is_err(), "no data was sent");
                // A generous timeout: the test only passes promptly if the
                // disconnect notification actually wakes the wait.
                waitset.wait(seen, Duration::from_secs(60));
            }
            dropper.join().unwrap();
        });
    }
}
