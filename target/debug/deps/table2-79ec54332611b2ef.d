/root/repo/target/debug/deps/table2-79ec54332611b2ef.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-79ec54332611b2ef.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
